"""Section 4.4.4: misprediction analysis.

The paper dissects the ~10% of workloads with >5% error into three
classes, each with a cause the model structurally cannot see:

1. **tail-latency noise** (underestimation) - irregular workloads hit
   the device's latency tail; CAMP only sees DRAM averages.  Most
   pronounced on CXL-A/CXL-B (the high-tail devices).
2. **hyper-parallelism** (overestimation) - at extreme MLP the core
   overlaps latency super-linearly (pr-kron).
3. **burstiness** (overestimation) - instantaneous MLP exceeds the
   average during memory bursts (Llama).

This bench classifies our mispredictions by the workloads' ground-truth
characteristics and checks each class errs in the paper's direction.
"""

import numpy as np

from repro.analysis import ascii_table, collect_records
from repro.workloads import get_workload


def _spec_by_name(lab, name):
    for workload in lab.suite():
        if workload.name == name:
            return workload
    raise KeyError(name)


def test_misprediction_analysis(benchmark, run_once, prediction_lab,
                                record):
    tier = "cxl-b"  # the high-tail device: richest error structure
    records = run_once(
        benchmark, lambda: collect_records(tier, prediction_lab))

    rows = []
    class_errors = {"tail": [], "hyper-mlp": [], "bursty": [],
                    "other": []}
    for item in records:
        spec = _spec_by_name(prediction_lab, item.name)
        signed_error = item.predicted_slowdown - item.actual_slowdown
        if spec.tail_sensitivity >= 0.3:
            bucket = "tail"
        elif spec.mlp >= 9.0 and spec.pf_friend < 0.5:
            bucket = "hyper-mlp"
        elif spec.burstiness >= 0.4:
            bucket = "bursty"
        else:
            bucket = "other"
        class_errors[bucket].append(signed_error)

    for bucket, errors in class_errors.items():
        errors = np.asarray(errors)
        rows.append((bucket, len(errors), float(errors.mean()),
                     float(np.abs(errors).mean())))
    record("misprediction_analysis",
           ascii_table(["class", "n", "mean signed err",
                        "mean |err|"], rows) +
           "\n\n(negative signed error = underestimation)")

    by_class = {row[0]: row for row in rows}
    # Tail-sensitive workloads: underestimated (paper: 'tail latency
    # noise (underestimation)').
    assert by_class["tail"][2] < -0.02
    # Hyper-MLP workloads: overestimated.
    assert by_class["hyper-mlp"][2] > 0
    # Bursty workloads: *not* underestimated (their burst hiding makes
    # them lean over, unlike the rest of the corpus).
    assert by_class["bursty"][2] > by_class["other"][2]
    # The named outliers behave as in the paper.
    named = {r.name: r for r in records}
    assert named["pr-twitter"].predicted_slowdown < \
        named["pr-twitter"].actual_slowdown       # tail underestimate
    assert named["pr-kron"].predicted_slowdown > \
        named["pr-kron"].actual_slowdown          # hyper-MLP over
    assert named["llama-7b"].predicted_slowdown > \
        named["llama-7b"].actual_slowdown         # burst over
    # The tail class carries the worst errors.
    assert by_class["tail"][3] >= by_class["other"][3]
    assert by_class["tail"][3] >= by_class["bursty"][3]
