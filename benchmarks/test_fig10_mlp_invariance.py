"""Figure 10: MLP invariance across interleaving ratios (603.bwaves).

Paper: per-core MLP fluctuates <=5% across the full ratio sweep,
whether the workload is bandwidth-bound (8 threads) or not (2 threads)
- the invariant the synthesis model is built on.
"""

from repro.analysis import ascii_table, fig10_mlp_invariance


def test_fig10_mlp_invariance(benchmark, run_once, bw_lab, record):
    results = run_once(
        benchmark, lambda: fig10_mlp_invariance(lab=bw_lab))

    blocks = []
    for result in results:
        rows = [(f"{x:.2f}", mlp)
                for x, mlp in result.mlp_by_ratio[::4]]
        blocks.append(
            f"{result.workload} ({result.threads} threads): max "
            f"relative MLP variation "
            f"{result.max_relative_variation:.1%} (paper: <=5%)\n" +
            ascii_table(["x", "MLP"], rows))
    record("fig10_mlp_invariance", "\n\n".join(blocks))

    for result in results:
        assert result.max_relative_variation <= 0.05
