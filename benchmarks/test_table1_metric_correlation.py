"""Table 1 / Figure 1: metric correlation with actual slowdown.

Paper: across 265 workloads on NUMA, prior metrics correlate 0.37-0.88
with measured slowdown; CAMP's predictor reaches 0.97.
"""

from repro.analysis import ascii_table, table1_metric_correlations



def test_table1_metric_correlation(benchmark, run_once, prediction_lab, record):
    result = run_once(
        benchmark,
        lambda: table1_metric_correlations("numa", prediction_lab))

    rows = [(c.metric, c.system, c.paper_pearson, c.measured_pearson,
             c.measured_pearson - c.paper_pearson)
            for c in result.correlations]
    text = ascii_table(
        ["metric", "system", "paper |r|", "measured |r|", "delta"],
        rows)
    record("table1_metric_correlation", text)

    by_metric = result.by_metric()
    camp = by_metric.pop("camp").measured_pearson
    # The paper's ordering claim: CAMP dominates every baseline metric.
    assert camp > 0.95
    assert all(camp > c.measured_pearson for c in by_metric.values())


def test_fig1_scatter_series(benchmark, run_once, prediction_lab, record):
    """Fig. 1: the scatter behind Table 1 - summarized as the spread of
    slowdown within metric quartiles (weak metrics mix slow and fast
    workloads in every quartile; CAMP's quartiles separate cleanly)."""
    import numpy as np

    result = run_once(
        benchmark,
        lambda: table1_metric_correlations("numa", prediction_lab))

    lines = []
    for correlation in result.correlations:
        values = np.array([v for v, _ in correlation.series])
        actual = np.array([s for _, s in correlation.series])
        order = np.argsort(values)
        quartiles = np.array_split(actual[order], 4)
        means = "  ".join(f"{q.mean():6.3f}" for q in quartiles)
        lines.append(f"{correlation.metric:>10s}: "
                     f"mean slowdown by metric quartile: {means}")
    record("fig1_scatter_quartiles", "\n".join(lines))
