"""Figure 9: per-component slowdown vs interleaving ratio.

Paper: bandwidth-bound workloads (649.fotonik3d, 654.roms) exhibit a
convex bathtub - some ratio beats DRAM-only - while latency-bound ones
(wmt20, rangeQuery2d) respond linearly and never benefit.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table, fig9_interleaving_shapes, sparkline


def test_fig9_interleaving_shapes(benchmark, run_once, bw_lab, record):
    sweeps = run_once(
        benchmark, lambda: fig9_interleaving_shapes(lab=bw_lab))

    blocks = []
    for sweep in sweeps:
        optimal = sweep.optimal()
        totals = [p.total for p in sweep.points]
        rows = [(p.dram_fraction, p.total, p.drd, p.cache, p.store)
                for p in sweep.points[::4]]
        blocks.append(
            f"{sweep.workload}  "
            f"({'convex/bathtub' if sweep.convex else 'linear'}; "
            f"optimum x={optimal.dram_fraction:.2f}, "
            f"S={optimal.total:+.3f})\n" +
            f"S(x): {sparkline(totals)}\n" +
            ascii_table(["x", "S_total", "S_DRd", "S_Cache", "S_Store"],
                        rows))
    record("fig9_interleaving_shapes", "\n\n".join(blocks))

    by_name = {sweep.workload: sweep for sweep in sweeps}
    assert by_name["649.fotonik3d"].convex
    assert by_name["654.roms"].convex
    assert not by_name["wmt20"].convex
    assert not by_name["rangeQuery2d"].convex
    # Linear response: midpoint slowdown ~ half the endpoint.
    linear = by_name["rangeQuery2d"]
    mid = min(linear.points, key=lambda p: abs(p.dram_fraction - 0.5))
    end = linear.points[-1]
    assert mid.total == pytest.approx(end.total / 2.0, rel=0.15)
