"""Figure 14: interleaving-model accuracy over 20 BW-bound workloads.

Paper: (a) 90% of predictions within 5% absolute slowdown error;
(b) predicted optimal ratios near (slightly conservative of) the
actual optima, many below 80% fast-tier; (c) performance at the
predicted ratio practically identical to the oracle optimum.
"""

import numpy as np

from repro.analysis import (ascii_table, cdf_summary,
                            fig14_interleaving_model_accuracy)


def test_fig14_bestshot_optimum(benchmark, run_once, bw_lab, record):
    result = run_once(
        benchmark,
        lambda: fig14_interleaving_model_accuracy(lab=bw_lab))

    rows = [(o.workload, o.predicted_ratio, o.actual_ratio,
             o.slowdown_at_predicted, o.slowdown_at_actual,
             o.performance_gap) for o in result.optima]
    text = (f"(a) pooled |error| over workloads x ratios: "
            f"{cdf_summary(result.errors)}\n"
            f"    within 5%: {result.within_5pct:.1%} "
            f"(paper: ~90%)\n\n" +
            ascii_table(["workload", "x_pred", "x_oracle", "S@pred",
                         "S@oracle", "perf gap"], rows))
    record("fig14_bestshot_optimum", text)

    # (b) predicted optima close to the oracle's.
    ratio_errors = [abs(o.predicted_ratio - o.actual_ratio)
                    for o in result.optima]
    assert float(np.median(ratio_errors)) <= 0.10
    # Many optima sit below 80% fast-tier usage (the Caption critique).
    below_80 = sum(1 for o in result.optima if o.actual_ratio < 0.8)
    assert below_80 >= len(result.optima) / 2
    # (c) realized performance within a few percent of the oracle.
    gaps = [o.performance_gap for o in result.optima]
    assert float(np.median(gaps)) <= 0.03
    assert max(gaps) <= 0.12
