"""Ablation: the microarchitectural pressure points themselves.

The paper's causal story says slowdown comes from specific hardware
structures (section 2.3).  This bench varies them in the substrate and
checks the predicted consequences:

- **Store Buffer size**: halving the SB raises store slowdown for a
  store-heavy workload; doubling it lowers it (the SB-backpressure
  mechanism of section 4.3);
- **LFB size**: a larger LFB raises the streamers' sustainable MLP and
  lowers demand-read slowdown (the MLP bound of section 3.1);
- **prefetch lookahead**: longer runway shrinks cache slowdown on CXL
  (the timeliness mechanism of section 4.2).
"""

from dataclasses import replace

from repro.analysis import ascii_table
from repro.uarch import Machine, Placement, SKX2S, component_slowdowns
from repro.workloads import WorkloadSpec, get_workload


def _store_component(platform, workload):
    machine = Machine(platform, noise=0.0)
    dram = machine.run(workload)
    cxl = machine.run(workload, Placement.slow_only("cxl-a"))
    return component_slowdowns(dram, cxl)


def test_ablation_hardware_buffers(benchmark, run_once, record):
    store_workload = WorkloadSpec(
        "ablate-store", mlp=2.0, loads_per_ki=30.0, stores_per_ki=330.0,
        store_miss_ratio=0.125, store_burst=0.5, l1_hit=0.95,
        l2_hit=0.5, l3_hit_small_llc=0.1, pf_friend=0.2, base_cpi=0.4)
    stream_workload = get_workload("603.bwaves").with_threads(2)

    def run():
        rows = {}
        for label, sb in (("sb/2", 28), ("sb (default)", 56),
                          ("sb*2", 112)):
            platform = replace(SKX2S, sb_entries=sb)
            rows[label] = _store_component(platform,
                                           store_workload)["store"]
        for label, lfb in (("lfb-8", 8), ("lfb-12 (default)", 12),
                           ("lfb-20", 20)):
            platform = replace(SKX2S, lfb_entries=lfb)
            rows[label] = _store_component(platform,
                                           stream_workload)["drd"]
        for label, lookahead in (("runway/2", 65.0),
                                 ("runway (default)", 130.0),
                                 ("runway*2", 260.0)):
            workload = stream_workload.evolved(
                pf_lookahead_ns=lookahead)
            rows[label] = _store_component(SKX2S, workload)["cache"]
        return rows

    rows = run_once(benchmark, run)
    record("ablation_hardware_buffers",
           ascii_table(["configuration", "component slowdown"],
                       list(rows.items())))

    # Bigger SB -> less store backpressure.
    assert rows["sb/2"] > rows["sb (default)"] > rows["sb*2"]
    # Bigger LFB -> more MLP -> less demand-read slowdown.
    assert rows["lfb-8"] > rows["lfb-20"]
    # Longer prefetch runway -> less cache slowdown on CXL.
    assert rows["runway/2"] > rows["runway (default)"] > rows["runway*2"]
