"""Ablation: calibration-suite composition and cross-platform fit.

- **suite size**: the hyperbola fit needs the pointer-chase sweep's
  AOL coverage; calibrating on a 3-point subset degrades accuracy.
- **cross-platform constants**: constants fitted on one platform don't
  transfer to another (the paper calibrates per platform); constants
  fitted per platform do generalize across the three testbeds.
"""

from repro.analysis import ascii_table
from repro.analysis.stats import accuracy_summary
from repro.core.calibration import calibrate
from repro.core.slowdown import SlowdownPredictor
from repro.uarch import Machine, Placement, SKX2S, SPR2S, EMR2S, slowdown
from repro.workloads import (calibration_suite, evaluation_suite,
                             memset, pointer_chase, strided_access)


def _accuracy(machine, calibration, workloads):
    predictor = SlowdownPredictor(calibration)
    predicted, actual = [], []
    for workload in workloads:
        dram = machine.run(workload)
        slow = machine.run(workload,
                           Placement.slow_only(calibration.device))
        predicted.append(predictor.predict(dram.profiled()).total)
        actual.append(slowdown(dram, slow))
    return accuracy_summary(predicted, actual)


def test_ablation_calibration_suite_size(benchmark, run_once, record):
    machine = Machine(SKX2S)
    workloads = evaluation_suite()[:120]

    def run():
        full = calibrate(machine, "cxl-a")
        minimal = calibrate(machine, "cxl-a", benchmarks=[
            pointer_chase(1), pointer_chase(4), pointer_chase(12),
            strided_access(1), memset()])
        return (_accuracy(machine, full, workloads),
                _accuracy(machine, minimal, workloads))

    full, minimal = run_once(benchmark, run)
    record("ablation_calibration_suite", ascii_table(
        ["suite", "benchmarks", "pearson", "<=10%"],
        [("full", len(calibration_suite()), full.pearson,
          full.within_10pct),
         ("minimal", 5, minimal.pearson, minimal.within_10pct)]))

    assert full.within_10pct >= minimal.within_10pct
    assert full.pearson > 0.9


def test_ablation_cross_platform(benchmark, run_once, record):
    """Per-platform calibration generalizes; borrowed constants don't
    necessarily."""
    workloads = evaluation_suite()[:120]

    def run():
        rows = []
        for platform in (SKX2S, SPR2S, EMR2S):
            machine = Machine(platform)
            own = calibrate(machine, "cxl-a")
            rows.append((platform.name, "own",
                         _accuracy(machine, own, workloads)))
        # Borrow SKX's constants on SPR (counter mapping differs too,
        # so rebuild with SKX's numbers but SPR's family mapping).
        skx_cal = calibrate(Machine(SKX2S), "cxl-a")
        from repro.core.calibration import Calibration
        borrowed = Calibration(
            platform_family="spr", device="cxl-a", drd=skx_cal.drd,
            cache=skx_cal.cache, store=skx_cal.store,
            idle_latency_dram_ns=114.0, idle_latency_slow_ns=214.0)
        rows.append(("SPR2S", "borrowed-from-SKX",
                     _accuracy(Machine(SPR2S), borrowed, workloads)))
        return rows

    rows = run_once(benchmark, run)
    record("ablation_cross_platform", ascii_table(
        ["platform", "constants", "pearson", "<=10%"],
        [(name, kind, s.pearson, s.within_10pct)
         for name, kind, s in rows]))

    by_key = {(name, kind): s for name, kind, s in rows}
    # Every platform's own calibration reaches paper-grade accuracy.
    for platform in ("SKX2S", "SPR2S", "EMR2S"):
        assert by_key[(platform, "own")].pearson > 0.9
        assert by_key[(platform, "own")].within_10pct > 0.85
    # Borrowed constants underperform the platform's own fit.
    assert by_key[("SPR2S", "own")].within_10pct >= \
        by_key[("SPR2S", "borrowed-from-SKX")].within_10pct
