"""Figure 6: per-component prediction-error CDFs.

Paper: S_DRd predicted within 5% for 78.7-94% of workloads (CXL-B
lowest), S_Cache for 93-97%, S_Store for 93-97%, across NUMA and the
three CXL devices.
"""

import collections

from repro.analysis import (REPORT_TIERS, ascii_table, cdf_summary,
                            fig6_component_error_cdfs)



def test_fig6_component_error_cdfs(benchmark, run_once, prediction_lab, record):
    results = run_once(
        benchmark,
        lambda: fig6_component_error_cdfs(lab=prediction_lab))

    rows = []
    lines = []
    within = collections.defaultdict(dict)
    for item in results:
        rows.append((item.tier, item.component, item.within_5pct))
        within[item.component][item.tier] = item.within_5pct
        lines.append(f"{item.tier:6s} {item.component:6s} "
                     f"{cdf_summary(item.errors)}")
    text = (ascii_table(["tier", "component", "<=5% err"], rows) +
            "\n\n" + "\n".join(lines))
    record("fig6_component_cdfs", text)

    # Paper-shape claims: cache and store components are the easiest
    # (>=90% within 5% on every tier); the demand-read component's
    # hardest device is CXL-B.
    for tier in REPORT_TIERS:
        assert within["cache"][tier] >= 0.90
        assert within["store"][tier] >= 0.90
    assert within["drd"]["cxl-b"] == min(within["drd"].values())
