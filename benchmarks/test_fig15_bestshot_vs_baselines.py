"""Figure 15: Best-shot vs seven baseline policies.

Paper: across eight bandwidth-bound workloads (normalized to DRAM-only,
baselines provisioned 4:1 fast:slow), Best-shot consistently wins - up
to 21% over first-touch/reactive tiering, 17% over NBT, 5% over
Caption - while static 1:1 interleaving often falls below DRAM-only.
"""

from repro.analysis import ascii_table, fig15_bestshot_vs_baselines


def test_fig15_bestshot_vs_baselines(benchmark, run_once, bw_lab,
                                     record):
    result = run_once(
        benchmark, lambda: fig15_bestshot_vs_baselines(lab=bw_lab))

    headers = ["workload"] + list(result.policy_order)
    rows = [[name] + [row[policy] for policy in result.policy_order]
            for name, row in result.table.items()]
    geomeans = result.geomeans()
    rows.append(["GEOMEAN"] + [geomeans[p] for p in result.policy_order])
    text = ascii_table(headers, rows)
    gains = "\n".join(
        f"best-shot max gain over {baseline}: "
        f"{result.best_shot_gain_over(baseline):+.1%}"
        for baseline in result.policy_order if baseline != "best-shot")
    record("fig15_bestshot_vs_baselines", text + "\n\n" + gains)

    best = geomeans.pop("best-shot")
    # Best-shot beats every baseline on geomean and DRAM-only overall.
    assert best > 1.0
    assert all(best > other for other in geomeans.values())
    # Paper-scale margins over reactive tiering.
    assert result.best_shot_gain_over("nbt") > 0.12
    assert result.best_shot_gain_over("colloid") > 0.08
    assert result.best_shot_gain_over("first-touch") > 0.10
    # Caption is the closest baseline (coarse search of the same space).
    closest = max(geomeans, key=lambda p: geomeans[p])
    assert closest == "caption"
    # Static 1:1 interleaving lands below DRAM-only on geomean.
    assert geomeans["interleave-1:1"] < 1.0
