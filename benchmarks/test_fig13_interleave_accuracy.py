"""Figure 13: interleaving prediction accuracy, 10-thread 603.bwaves.

Paper: the synthesized per-component curves track the measured
slowdowns across the 99:1..1:99 ratio sweep, reconstructing the convex
total-performance curve.
"""

import numpy as np

from repro.analysis import (ascii_table, cdf_summary,
                            fig13_interleave_accuracy, pearson, sparkline)


def test_fig13_interleave_accuracy(benchmark, run_once, bw_lab, record):
    result = run_once(
        benchmark, lambda: fig13_interleave_accuracy(lab=bw_lab))

    predicted = [p.predicted_total for p in result.points]
    actual = [p.actual_total for p in result.points]
    rows = [(p.dram_fraction, p.predicted_total, p.actual_total,
             abs(p.predicted_total - p.actual_total))
            for p in result.points[::10]]
    text = (ascii_table(["x", "predicted", "actual", "error"], rows) +
            f"\n\npredicted S(x): {sparkline(predicted)}" +
            f"\nactual    S(x): {sparkline(actual)}" +
            f"\ncurve pearson: {pearson(predicted, actual):.3f}" +
            f"\nerrors: {cdf_summary(result.errors())}")
    record("fig13_interleave_accuracy", text)

    # The model reconstructs the curve's shape.
    assert pearson(predicted, actual) > 0.97
    # Both curves are convex with interior minima at similar ratios.
    x_pred = result.points[int(np.argmin(predicted))].dram_fraction
    x_act = result.points[int(np.argmin(actual))].dram_fraction
    assert abs(x_pred - x_act) <= 0.15
    # Endpoint anchored (x -> 0 is the measured second run).
    assert result.points[-1].predicted_total == \
        result.points[-1].actual_total or \
        abs(result.points[-1].predicted_total -
            result.points[-1].actual_total) < 0.08
