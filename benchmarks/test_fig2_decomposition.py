"""Figure 2: slowdown decomposes into S_DRd + S_Cache + S_Store.

Paper (via Melody): overall slowdown under CXL/NUMA is the sum of three
orthogonal components; different workloads are dominated by different
components.
"""

from repro.analysis import ascii_table, fig2_decomposition



def test_fig2_decomposition(benchmark, run_once, prediction_lab, record):
    rows = run_once(benchmark,
                    lambda: fig2_decomposition("cxl-a",
                                               lab=prediction_lab))

    text = ascii_table(
        ["workload", "S_total", "S_DRd", "S_Cache", "S_Store",
         "residual"],
        [(r.name, r.total, r.drd, r.cache, r.store, r.residual)
         for r in rows])
    record("fig2_decomposition", text)

    for row in rows:
        # Additivity (Eq. 1) holds to counter-noise precision.
        assert abs(row.residual) <= 0.02 * max(1.0, abs(row.total))
    # Different dominant components across the chosen workloads.
    dominant = {max(("drd", "cache", "store"),
                    key=lambda c: getattr(r, c)) for r in rows}
    assert len(dominant) >= 2
