"""Shared benchmark fixtures and result recording.

Each benchmark module regenerates one of the paper's tables or figures
(see DESIGN.md's experiment index).  Conventions:

- ``prediction_lab`` hosts the section 2/4 experiments (NUMA on SKX,
  CXL devices on SPR - the paper's testbeds);
- ``bw_lab`` hosts the section 5/6 bandwidth experiments (all tiers on
  SKX, whose DRAM a ten-thread streamer can contend for);
- every bench renders the paper-style rows/series with
  :func:`record`, which prints them *and* snapshots them under
  ``benchmarks/results/`` for EXPERIMENTS.md.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import Lab
from repro.analysis.lab import BANDWIDTH_TIER_PLATFORMS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def prediction_lab() -> Lab:
    """Shared lab for the prediction study (paper testbed mapping)."""
    return Lab()


@pytest.fixture(scope="session")
def bw_lab() -> Lab:
    """Shared lab for the bandwidth study (all tiers on SKX2S)."""
    return Lab(tier_platforms=BANDWIDTH_TIER_PLATFORMS)


@pytest.fixture(scope="session")
def record():
    """Print a rendered experiment block and snapshot it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        block = f"\n=== {name} ===\n{text}\n"
        print(block)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


@pytest.fixture(scope="session")
def run_once():
    """Benchmark a driver exactly once and return its result.

    The drivers are deterministic and internally cached; multiple
    timing rounds would only time the cache.
    """

    def _run_once(benchmark, fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run_once
