"""Ablation: robustness to PMU measurement noise.

Counter reads on real machines jitter run to run; a deployable
predictor must not be brittle to it.  This bench sweeps the simulated
PMU's noise level (multiplicative sigma per counter) and re-runs the
overall-accuracy study: calibration and prediction both consume the
noisy counters.

Expectation: accuracy degrades gracefully - still >90% within 10%
error at 2% per-counter noise (far above real perf jitter).
"""

from repro.analysis import ascii_table
from repro.analysis.stats import accuracy_summary
from repro.core.calibration import calibrate
from repro.core.slowdown import SlowdownPredictor
from repro.uarch import Machine, Placement, SKX2S, slowdown
from repro.workloads import evaluation_suite

NOISE_LEVELS = (0.0, 0.004, 0.01, 0.02, 0.05)


def test_ablation_noise(benchmark, run_once, record):
    workloads = evaluation_suite()[:150]

    def run():
        rows = []
        for noise in NOISE_LEVELS:
            machine = Machine(SKX2S, noise=noise, seed=7)
            calibration = calibrate(machine, "cxl-a")
            predictor = SlowdownPredictor(calibration)
            predicted, actual = [], []
            for workload in workloads:
                dram = machine.run(workload)
                slow = machine.run(workload,
                                   Placement.slow_only("cxl-a"))
                predicted.append(
                    predictor.predict(dram.profiled()).total)
                actual.append(slowdown(dram, slow))
            rows.append((noise, accuracy_summary(predicted, actual)))
        return rows

    rows = run_once(benchmark, run)
    record("ablation_noise", ascii_table(
        ["counter noise", "pearson", "<=5%", "<=10%"],
        [(f"{noise:.1%}", s.pearson, s.within_5pct, s.within_10pct)
         for noise, s in rows]))

    by_noise = dict(rows)
    # Graceful degradation: the defaults (0.4%) cost almost nothing,
    # and even 2% per-counter noise costs only a few points (this
    # 150-workload subset is front-loaded with the hand-tuned outlier
    # workloads, so its absolute bar sits below the full corpus).
    assert by_noise[0.004].within_10pct >= \
        by_noise[0.0].within_10pct - 0.03
    assert by_noise[0.02].within_10pct >= \
        by_noise[0.0].within_10pct - 0.05
    assert by_noise[0.02].pearson > 0.95
    assert by_noise[0.05].pearson > 0.93
