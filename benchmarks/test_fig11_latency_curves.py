"""Figure 11: per-tier latency curves and the slowdown bathtub.

Paper (603.bwaves): with 8 threads the workload is bandwidth-bound -
per-tier latency follows a parabola-like curve over its load share and
interleaving yields negative slowdown near a ~37:63 ratio region; with
2 threads latency is flat across ratios and interleaving never helps.
"""

from repro.analysis import ascii_table, fig11_latency_curves, sparkline


def test_fig11_latency_curves(benchmark, run_once, bw_lab, record):
    results = run_once(
        benchmark, lambda: fig11_latency_curves(lab=bw_lab))

    blocks = []
    for result in results:
        points = result.sweep.points
        rows = [(p.dram_fraction, p.dram_latency_ns, p.slow_latency_ns,
                 p.total) for p in points[::10]]
        blocks.append(
            f"{result.workload} ({result.threads} threads): "
            f"{'bandwidth-bound' if result.bandwidth_bound else 'flat'}"
            f", Eq.8 quadratic R^2 on DRAM latency = "
            f"{result.dram_quadratic_r2:.3f}\n"
            f"S(x): {sparkline([p.total for p in points])}\n" +
            ascii_table(["x", "L_dram ns", "L_cxl ns", "S(x)"], rows))
    record("fig11_latency_curves", "\n\n".join(blocks))

    by_threads = {r.threads: r for r in results}
    # 2 threads: not bandwidth-bound, flat per-tier latency.
    two = by_threads[2]
    assert not two.bandwidth_bound
    dram_lats = [p.dram_latency_ns for p in two.sweep.points]
    assert max(dram_lats) / min(dram_lats) < 1.15
    # 8 threads: bathtub with an interior optimum.
    eight = by_threads[8]
    assert eight.bandwidth_bound
    optimal = eight.sweep.optimal()
    assert 0.3 < optimal.dram_fraction < 0.95
    assert optimal.total < -0.05
