"""Ablation/extension: bandwidth-saturation-aware prediction.

The paper's section 4.4.6 limitation: the DRAM-only model applies while
the slow device is not bandwidth-saturated.  This bench evaluates the
repository's future-work extension
(:class:`repro.core.contention.ContentionAwarePredictor`), which
projects the DRAM-measured traffic onto the target device's queueing
curve and throughput ceiling:

- on the *contended* subset (slow-tier utilization > 50%), the base
  model underestimates badly; the extension recovers most of it;
- on the rest of the corpus the two predictors agree (the correction
  self-disables below the contention knee).
"""

import numpy as np

from repro.analysis import ascii_table
from repro.analysis.stats import accuracy_summary
from repro.core.contention import ContentionAwarePredictor
from repro.core.slowdown import SlowdownPredictor
from repro.uarch.machine import slowdown
from repro.workloads import bandwidth_bound_twenty, evaluation_suite


def test_ablation_contention_aware(benchmark, run_once, bw_lab, record):
    tier = "cxl-a"
    calibration = bw_lab.calibration(tier)
    base = SlowdownPredictor(calibration)
    aware = ContentionAwarePredictor(calibration)
    workloads = evaluation_suite() + bandwidth_bound_twenty()

    def run():
        rows = []
        for workload in workloads:
            dram = bw_lab.dram_run(tier, workload)
            slow = bw_lab.slow_run(tier, workload)
            profile = dram.profiled()
            rows.append((
                base.predict(profile).total,
                aware.predict(profile).total,
                slowdown(dram, slow),
                slow.slow_utilization > 0.5,
            ))
        return rows

    rows = run_once(benchmark, run)
    base_pred = np.array([r[0] for r in rows])
    aware_pred = np.array([r[1] for r in rows])
    actual = np.array([r[2] for r in rows])
    contended = np.array([r[3] for r in rows])

    out = []
    summaries = {}
    for name, pred in (("base", base_pred), ("saturation-aware",
                                             aware_pred)):
        for subset, mask in (("all", np.ones_like(contended, bool)),
                             ("contended", contended),
                             ("uncontended", ~contended)):
            summary = accuracy_summary(list(pred[mask]),
                                       list(actual[mask]))
            summaries[(name, subset)] = summary
            out.append((name, subset, summary.count, summary.pearson,
                        summary.within_10pct,
                        float(np.mean(np.abs(pred[mask] -
                                             actual[mask])))))
    record("ablation_contention_aware",
           ascii_table(["predictor", "subset", "n", "pearson",
                        "<=10%", "mean |err|"], out))

    # The extension recovers the contended tail...
    assert summaries[("saturation-aware", "contended")].within_10pct \
        >= summaries[("base", "contended")].within_10pct + 0.25
    # ...without regressing the rest of the corpus.
    assert summaries[("saturation-aware", "uncontended")].within_10pct \
        >= summaries[("base", "uncontended")].within_10pct - 0.01
