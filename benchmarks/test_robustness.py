"""Robustness: do the headline claims depend on the population seed?

The 265-workload population is seeded; a reproduction whose claims only
hold for seed 2026 would be curve-fitting.  This bench re-draws the
generated 226 family samples with different seeds (the 39 named
workloads stay fixed) and re-checks the two headline numbers on NUMA:

- CAMP's predictor tops every baseline metric (Table 1's claim);
- overall accuracy stays paper-grade (Table 6's claim).

It also breaks accuracy down by suite label, exposing *which* workload
classes carry the error tail (graph/irregular, as in section 4.4.4).
"""

import collections

import numpy as np

from repro.analysis import Lab, ascii_table, collect_records
from repro.analysis.stats import accuracy_summary, pearson
from repro.core.metrics import BASELINE_METRICS

SEEDS = (2026, 7, 424242)


def test_seed_robustness(benchmark, run_once, record):
    def run():
        rows = []
        for seed in SEEDS:
            lab = Lab(seed=seed)
            records = collect_records("numa", lab)
            actual = [r.actual_slowdown for r in records]
            predicted = [r.predicted_slowdown for r in records]
            summary = accuracy_summary(predicted, actual)
            best_baseline = max(
                abs(pearson([spec.compute(r.dram_profile)
                             for r in records], actual))
                for spec in BASELINE_METRICS)
            rows.append((seed, summary, best_baseline))
        return rows

    rows = run_once(benchmark, run)
    record("robustness_seeds", ascii_table(
        ["seed", "CAMP pearson", "<=5%", "<=10%", "best baseline |r|"],
        [(seed, s.pearson, s.within_5pct, s.within_10pct, baseline)
         for seed, s, baseline in rows]))

    for seed, summary, best_baseline in rows:
        assert summary.pearson > 0.95, seed
        assert summary.within_10pct > 0.95, seed
        assert summary.pearson > best_baseline + 0.1, seed


def test_per_suite_accuracy(benchmark, run_once, prediction_lab,
                            record):
    """Which workload classes carry the error (CXL-B, the hard tier)."""
    records = run_once(
        benchmark, lambda: collect_records("cxl-b", prediction_lab))

    by_suite = collections.defaultdict(list)
    for item in records:
        by_suite[item.suite].append(
            abs(item.predicted_slowdown - item.actual_slowdown))
    rows = [(suite, len(errors), float(np.mean(errors)),
             float(np.mean(np.asarray(errors) <= 0.10)))
            for suite, errors in sorted(by_suite.items())]
    record("per_suite_accuracy", ascii_table(
        ["suite", "n", "mean |err|", "<=10%"], rows))

    by_name = {row[0]: row for row in rows}
    # The irregular/tail-heavy graph suite is the hardest class;
    # compute-heavy spec2017 is among the easiest.
    assert by_name["gapbs"][2] >= by_name["spec2017"][2]
    # No suite collapses entirely.
    for suite, _, _, within in rows:
        assert within >= 0.5, suite
