"""Table 6 / Figure 7: overall slowdown-prediction accuracy per tier.

Paper: Pearson 0.919-0.965; 77.8-92.4% of workloads within 5% absolute
error and 90.7-97.3% within 10%, CXL-B being the hardest device.
"""

from repro.analysis import (ascii_table, paper_vs_measured,
                            table6_overall_accuracy)


#: Paper's Table 6, for side-by-side reporting.
PAPER_TABLE6 = {
    "numa": (0.965, 0.884, 0.973),
    "cxl-a": (0.919, 0.887, 0.943),
    "cxl-b": (0.963, 0.778, 0.907),
    "cxl-c": (0.940, 0.924, 0.962),
}


def test_table6_overall_accuracy(benchmark, run_once, prediction_lab, record):
    rows = run_once(
        benchmark, lambda: table6_overall_accuracy(lab=prediction_lab))

    table = ascii_table(
        ["tier", "pearson", "<=5% err", "<=10% err",
         "paper pearson", "paper <=5%", "paper <=10%"],
        [(r.tier, r.summary.pearson, r.summary.within_5pct,
          r.summary.within_10pct, *PAPER_TABLE6[r.tier]) for r in rows])
    record("table6_overall_accuracy", table)

    by_tier = {r.tier: r.summary for r in rows}
    # Shape claims: high correlation everywhere; >=90% within 10% on
    # NUMA/CXL-A/CXL-C; CXL-B is the hardest device (as in the paper).
    for tier, summary in by_tier.items():
        assert summary.pearson > 0.9, tier
    for tier in ("numa", "cxl-a", "cxl-c"):
        assert by_tier[tier].within_10pct >= 0.90
    assert by_tier["cxl-b"].within_5pct == min(
        s.within_5pct for s in by_tier.values())


def test_fig7_scatter_shape(benchmark, run_once, prediction_lab, record):
    """Fig. 7: predicted-vs-actual scatter hugs the diagonal."""
    import numpy as np

    from repro.analysis import ascii_scatter

    rows = run_once(
        benchmark, lambda: table6_overall_accuracy(lab=prediction_lab))
    lines = []
    for row in rows:
        predicted = np.array([p for p, _ in row.scatter])
        actual = np.array([a for _, a in row.scatter])
        slope = float(np.polyfit(actual, predicted, 1)[0])
        lines.append(f"{row.tier:6s} regression slope "
                     f"(predicted ~ actual): {slope:.3f}")
        assert 0.8 <= slope <= 1.2
        lines.append(ascii_scatter(actual, predicted, width=50,
                                   height=14, x_label="actual S",
                                   y_label=f"predicted S ({row.tier})",
                                   diagonal=True))
    record("fig7_scatter_shape", "\n".join(lines))
