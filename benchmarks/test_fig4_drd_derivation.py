"""Figure 4: the demand-read model derivation measurements.

Paper: (a) memory-active-cycle proxies with both scaling ratios track
S_DRd best; (b) s_LLC/C is 50-70% for most workloads; (c) R_N clusters
at 1.0 (>95% of workloads); (d) baseline DRAM latency correlates
positively with R_Lat; (f) the latency-tolerance factor follows a
hyperbola in baseline L/MLP.
"""

from repro.analysis import ascii_table, fig4_drd_derivation



def test_fig4_drd_derivation(benchmark, run_once, prediction_lab, record):
    result = run_once(
        benchmark, lambda: fig4_drd_derivation("numa", prediction_lab))

    lines = [
        "(a) S_DRd proxy mean |error| (lower is better):",
    ]
    for name, error in result.proxy_errors.items():
        lines.append(f"      {name:28s} {error:.4f}")
    lines.append("")
    lines.append("(b) s_LLC / C percentiles: " + "  ".join(
        f"{k}={v:.2f}" for k, v in result.sllc_over_c.items()))
    lines.append("(c) R_N percentiles:      " + "  ".join(
        f"{k}={v:.3f}" for k, v in result.r_n.items()))
    lines.append(f"    R_N within 5% of 1.0: "
                 f"{result.r_n_stable_fraction:.1%} (paper: >95%)")
    lines.append("(c) R_Lat percentiles:    " + "  ".join(
        f"{k}={v:.2f}" for k, v in result.r_lat.items()))
    lines.append("(c) R_MLP percentiles:    " + "  ".join(
        f"{k}={v:.2f}" for k, v in result.r_mlp.items()))
    lines.append(f"(d) corr(L_DRAM, R_Lat)  = "
                 f"{result.latency_vs_rlat_pearson:+.3f} "
                 f"(paper: positive)")
    lines.append(f"(e) corr(MLP, R_MLP)     = "
                 f"{result.mlp_vs_rmlp_pearson:+.3f}")
    lines.append(f"(f) hyperbola fit vs measured tolerance: r = "
                 f"{result.tolerance_fit_pearson:+.3f}")
    record("fig4_drd_derivation", "\n".join(lines))

    # The paper's structural claims.
    assert result.r_n_stable_fraction > 0.95
    assert result.latency_vs_rlat_pearson > 0.5
    assert result.proxy_errors["C with R_Lat and R_MLP"] < \
        result.proxy_errors["C with R_MLP only"]
