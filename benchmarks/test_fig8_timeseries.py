"""Figure 8: time-series prediction on phased tc-kron.

Paper: per-window predictions track the measured slowdown over time -
the causal models hold instantaneously, not just in aggregate.
"""

import numpy as np

from repro.analysis import ascii_table, fig8_timeseries, pearson, sparkline



def test_fig8_timeseries(benchmark, run_once, prediction_lab, record):
    points = run_once(
        benchmark, lambda: fig8_timeseries("cxl-a", lab=prediction_lab))

    table = ascii_table(
        ["window", "phase", "predicted", "actual", "error"],
        [(p.window, p.phase, p.predicted, p.actual,
          abs(p.predicted - p.actual)) for p in points])
    predicted = [p.predicted for p in points]
    actual = [p.actual for p in points]
    text = (table +
            f"\n\npredicted: {sparkline(predicted)}" +
            f"\nactual:    {sparkline(actual)}" +
            f"\ntime-series pearson: {pearson(predicted, actual):.3f}")
    record("fig8_timeseries", text)

    assert pearson(predicted, actual) > 0.95
    errors = np.abs(np.array(predicted) - np.array(actual))
    assert float(errors.max()) < 0.12
    # The trace actually oscillates (phases differ).
    assert max(actual) > 2 * min(actual)
