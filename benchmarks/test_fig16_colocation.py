"""Figure 16: CAMP-guided colocated workload scheduling.

Paper: (a) CAMP's forecasts track colocated slowdown while MPKI ranks
the partners wrongly; (b) MPKI-guided placement is 10-12.2% worse than
CAMP-guided across three adversarial pairs; (c) in a mixed BW-bound +
latency-bound pair, Best-shot placement beats first-touch/NBT/Colloid
across fast-tier provisioning ratios.
"""

from repro.analysis import (ascii_table, fig16a_colocation_prediction,
                            fig16b_colocation_placement,
                            fig16c_mixed_colocation)


def test_fig16a_colocation_prediction(benchmark, run_once, bw_lab,
                                      record):
    rows = run_once(
        benchmark, lambda: fig16a_colocation_prediction(lab=bw_lab))

    text = ascii_table(
        ["workload", "CAMP pred", "actual (coloc)", "MPKI",
         "CAMP rank", "MPKI rank"],
        [(r.workload, r.camp_predicted, r.actual_colocated,
          r.mpki_value, r.camp_rank, r.mpki_rank) for r in rows])
    record("fig16a_colocation_prediction", text)

    # CAMP predictions track actual colocated slowdowns.
    for row in rows:
        assert row.camp_predicted == \
            __import__("pytest").approx(row.actual_colocated, abs=0.12)
    # In every pair, CAMP and MPKI rank the partners oppositely.
    by_pair = [rows[i:i + 2] for i in range(0, len(rows), 2)]
    for pair_rows in by_pair:
        assert pair_rows[0].camp_rank != pair_rows[0].mpki_rank


def test_fig16b_colocation_placement(benchmark, run_once, bw_lab,
                                     record):
    comparisons = run_once(
        benchmark, lambda: fig16b_colocation_placement(lab=bw_lab))

    text = ascii_table(
        ["pair", "CAMP fast pick", "MPKI fast pick", "CAMP ws",
         "MPKI ws", "CAMP advantage"],
        [("+".join(c.pair), c.camp.fast_workload,
          c.mpki.fast_workload, c.camp.weighted_speedup,
          c.mpki.weighted_speedup, c.camp_advantage)
         for c in comparisons])
    record("fig16b_colocation_placement", text)

    advantages = [c.camp_advantage for c in comparisons]
    # Paper: 10-12.2% better; our shape claim: CAMP never loses,
    # with clear margins on most pairs.
    assert all(a >= 0 for a in advantages)
    assert max(advantages) > 0.05
    assert sum(1 for a in advantages if a > 0.01) >= 2


def test_fig16c_mixed_colocation(benchmark, run_once, bw_lab, record):
    rows = run_once(
        benchmark, lambda: fig16c_mixed_colocation(lab=bw_lab))

    policies = list(rows[0].speedups)
    text = ascii_table(
        ["fast share"] + policies,
        [[row.fast_share] + [row.speedups[p] for p in policies]
         for row in rows])
    record("fig16c_mixed_colocation", text)

    # Best-shot placement is competitive everywhere (within ~7% of the
    # best baseline even at scarce provisioning, where the section 5
    # model's slightly-conservative optima - the paper's own Fig. 14b
    # caveat - cost the most), beats the reactive policies at scarce
    # provisioning, and is strictly best at generous provisioning.
    for row in rows:
        others = {k: v for k, v in row.speedups.items()
                  if k != "best-shot"}
        assert row.speedups["best-shot"] >= max(others.values()) - 0.13
    scarce = rows[0]
    assert scarce.speedups["best-shot"] > scarce.speedups["nbt"]
    assert scarce.speedups["best-shot"] > scarce.speedups["colloid"]
    rich = rows[-1]
    others = {k: v for k, v in rich.speedups.items() if k != "best-shot"}
    assert rich.speedups["best-shot"] > max(others.values())
