"""Reactive-tiering dynamics: warm-up and migration costs.

Supplements Fig. 15: instead of charging parametric overheads, this
bench *simulates the migration loops* epoch by epoch
(:mod:`repro.policies.dynamics`) and shows where reactive tiering's
costs come from:

- Best-shot starts at its predicted ratio (epoch 0) and never migrates;
- NBT spends its first epochs promoting pages (warm-up) and pays the
  copies;
- Colloid oscillates around the latency-equalization point - which for
  a bandwidth-bound workload sits on the DRAM saturation cliff - and
  keeps paying migration bandwidth (the paper: reactive policies
  "incur nontrivial migration overheads").
"""

from repro.analysis import ascii_table, sparkline
from repro.policies import (BestShotDynamics, ColloidDynamics,
                            FirstTouchDynamics, NBTDynamics,
                            simulate_tiering)
from repro.workloads import get_workload


def test_dynamics_warmup(benchmark, run_once, bw_lab, record):
    tier = "cxl-a"
    machine = bw_lab.machine_for_tier(tier)
    calibration = bw_lab.calibration(tier)
    workload = get_workload("603.bwaves").with_threads(10)
    capacity = 0.8 * workload.footprint_gib

    def run():
        traces = {}
        for policy, bias in ((BestShotDynamics(calibration), 0.0),
                             (FirstTouchDynamics(), 0.10),
                             (NBTDynamics(), 0.30),
                             (ColloidDynamics(), 0.25)):
            traces[policy.name] = simulate_tiering(
                machine, workload, tier, capacity, policy, epochs=20,
                hotness_bias=bias)
        return traces

    traces = run_once(benchmark, run)

    rows = []
    lines = []
    for name, trace in traces.items():
        rows.append((name, trace.normalized_performance,
                     trace.migration_cycles / trace.total_cycles,
                     trace.convergence_epoch(), trace.final_x))
        lines.append(f"{name:12s} x(t): " + sparkline(
            [r.placement_x for r in trace.records], width=20))
    record("dynamics_warmup",
           ascii_table(["policy", "normalized perf", "migration share",
                        "converged@", "final x"], rows) +
           "\n\n" + "\n".join(lines))

    best = traces["best-shot"]
    # Proactive: no migration, immediate convergence, best performance.
    assert best.migration_cycles == 0.0
    assert best.convergence_epoch() == 0
    for name, trace in traces.items():
        if name != "best-shot":
            assert best.normalized_performance > \
                trace.normalized_performance
    # Reactive loops pay real migration bandwidth.
    assert traces["nbt"].migration_cycles > 0
    assert traces["colloid"].migration_cycles > 0
    # NBT's warm-up: it takes epochs to fill the fast tier.
    assert traces["nbt"].convergence_epoch() >= 4
    # Warm-up costs show up as early epochs slower than late ones.
    nbt = traces["nbt"].records
    assert nbt[0].cycles > nbt[-1].cycles
