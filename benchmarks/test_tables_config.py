"""Tables 3-5: the testbed, device, and counter inventories.

Configuration tables: the bench renders them and checks the published
figures are reproduced verbatim.
"""

from repro.core.counters import COUNTER_TABLE, counters_for_platform
from repro.uarch import DEVICES, PLATFORMS
from repro.analysis import ascii_table



def test_table3_platforms(benchmark, run_once, record):
    platforms = run_once(benchmark, lambda: dict(PLATFORMS))
    text = ascii_table(
        ["platform", "family", "cores", "GHz", "LLC MiB",
         "DRAM lat ns", "DRAM GB/s"],
        [(p.name, p.family, p.cores, p.frequency_ghz, p.llc_mib,
          p.dram.idle_latency_ns, p.dram.peak_bandwidth_gbps)
         for p in platforms.values()])
    record("table3_platforms", text)
    assert platforms["skx2s"].dram.idle_latency_ns == 90.0
    assert platforms["spr2s"].dram.peak_bandwidth_gbps == 191.0


def test_table4_devices(benchmark, run_once, record):
    devices = run_once(benchmark, lambda: dict(DEVICES))
    text = ascii_table(
        ["device", "latency ns", "GB/s", "tail alpha", "RFO factor"],
        [(d.name, d.idle_latency_ns, d.peak_bandwidth_gbps,
          d.tail_alpha, d.rfo_latency_factor)
         for d in devices.values()])
    record("table4_devices", text)
    assert devices["cxl-b"].idle_latency_ns == 271.0


def test_table5_counters(benchmark, run_once, record):
    table = run_once(benchmark, lambda: COUNTER_TABLE)
    text = ascii_table(
        ["id", "event", "used by", "description"],
        [(spec.counter.value, spec.intel_event,
          "/".join(spec.used_by) or "(derivation)", spec.description)
         for spec in table])
    record("table5_counters", text)
    # Paper: 11 counters on SKX, 12 on SPR/EMR (cycles included).
    skx = [c for c in counters_for_platform("skx")
           if c.value != "instructions"]
    spr = [c for c in counters_for_platform("spr")
           if c.value != "instructions"]
    assert len(skx) == 11 and len(spr) == 12
