"""Ablation: what each CAMP model term buys.

DESIGN.md calls out the model's load-bearing design choices; this bench
removes them one at a time and measures the accuracy cost over the 265
workloads (NUMA on SKX):

- **no hyperbola** - replace f(AOL) with a constant (the mean tolerance
  factor): demand-read slowdown becomes pure stall-intensity scaling,
  losing the latency-tolerance modeling of section 4.1;
- **no R_Mem** - drop the memory-prefetch-reliance factor from Eq. 6;
- **no R_LFB-hit** - drop the LFB-reliance factor from Eq. 6;
- **stall-only** - predict total slowdown as k * (P1/c) (the X-Mem-
  style single-counter approach, calibrated the same way).
"""

import numpy as np

from repro.analysis import ascii_table, collect_records
from repro.analysis.stats import accuracy_summary
from repro.core.drd import hyperbolic_tolerance


def _variant_predictions(records, calibration, variant):
    """Per-workload total predictions for one ablated model."""
    cal = calibration
    aols = np.array([r.dram_signature.aol for r in records])
    mean_tolerance = float(np.mean(
        [hyperbolic_tolerance(a, cal.drd.p, cal.drd.q) for a in aols]))

    out = []
    for record in records:
        sig = record.dram_signature
        if variant == "full":
            drd = cal.drd.predict(sig)
        elif variant == "no-hyperbola":
            drd = cal.drd.k * mean_tolerance * sig.llc_stall_fraction
        else:
            drd = cal.drd.predict(sig)

        cache = (cal.cache.k * sig.lfb_hit_ratio *
                 sig.mem_prefetch_reliance * sig.cache_stall_fraction)
        if variant == "no-rmem":
            cache = (cal.cache.k * sig.lfb_hit_ratio *
                     sig.cache_stall_fraction)
        elif variant == "no-rlfb":
            cache = (cal.cache.k * sig.mem_prefetch_reliance *
                     sig.cache_stall_fraction)

        store = cal.store.predict(sig)
        out.append(drd + cache + store)
    return out


def test_ablation_model_terms(benchmark, run_once, prediction_lab,
                              record):
    tier = "numa"
    records = run_once(
        benchmark, lambda: collect_records(tier, prediction_lab))
    calibration = prediction_lab.calibration(tier)
    actual = [r.actual_slowdown for r in records]

    rows = []
    summaries = {}
    for variant in ("full", "no-hyperbola", "no-rmem", "no-rlfb"):
        predicted = _variant_predictions(records, calibration, variant)
        summary = accuracy_summary(predicted, actual)
        summaries[variant] = summary
        rows.append((variant, summary.pearson, summary.within_5pct,
                     summary.within_10pct))

    # Stall-only baseline: single-counter scaling, least-squares k.
    stalls = np.array([r.dram_signature.s_llc / r.dram_signature.cycles
                       for r in records])
    k = float(np.dot(stalls, actual) / np.dot(stalls, stalls))
    summary = accuracy_summary(list(k * stalls), actual)
    summaries["stall-only"] = summary
    rows.append(("stall-only (X-Mem style)", summary.pearson,
                 summary.within_5pct, summary.within_10pct))

    record("ablation_model_terms",
           ascii_table(["variant", "pearson", "<=5%", "<=10%"], rows))

    full = summaries["full"]
    # Every ablation costs accuracy; the hyperbola is the big one.
    assert full.within_10pct >= summaries["no-hyperbola"].within_10pct
    assert full.within_10pct >= summaries["no-rmem"].within_10pct
    assert full.within_10pct >= summaries["no-rlfb"].within_10pct
    assert full.within_5pct > summaries["stall-only"].within_5pct
    assert summaries["no-hyperbola"].within_5pct < full.within_5pct
