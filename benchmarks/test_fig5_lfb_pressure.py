"""Figure 5: LFB pressure explains cache-induced slowdown.

Paper: (a) growth in L1-prefetch L3 misses correlates with growth in
LFB hits on the slow tier; (b) LFB-hit growth comes at the expense of
L1 hits; (c) workloads with larger cache slowdown have higher LFB-hit
ratios.
"""

from repro.analysis import fig5_lfb_pressure



def test_fig5_lfb_pressure(benchmark, run_once, prediction_lab, record):
    result = run_once(
        benchmark, lambda: fig5_lfb_pressure("cxl-a", prediction_lab))

    text = "\n".join([
        f"(a) corr(d L1PF-L3-miss, d LFB-hits) = "
        f"{result.pf_miss_vs_lfb_hit_pearson:+.3f}  (paper: positive)",
        f"(b) corr(d LFB-hits, d L1-hit-rate)  = "
        f"{result.lfb_vs_l1_hit_pearson:+.3f}  (paper: negative)",
        f"(c) corr(R_LFB-hit, S_Cache)         = "
        f"{result.cache_slowdown_vs_lfb_pearson:+.3f}  "
        f"(paper: positive)",
    ])
    record("fig5_lfb_pressure", text)

    assert result.pf_miss_vs_lfb_hit_pearson > 0.5
    assert result.lfb_vs_l1_hit_pearson < -0.3
    assert result.cache_slowdown_vs_lfb_pearson > 0.3
