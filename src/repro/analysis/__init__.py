"""Experiment drivers, statistics, and reporting.

One driver per paper table/figure (see ``DESIGN.md``'s experiment
index), all sharing the memoizing :class:`~repro.analysis.lab.Lab`.
"""

from .interleaving_experiments import (Fig13Result, Fig14Result,
                                       LatencyCurveResult,
                                       MlpInvarianceResult,
                                       OptimumComparison, WorkloadSweep,
                                       build_model,
                                       fig9_interleaving_shapes,
                                       fig10_mlp_invariance,
                                       fig11_latency_curves,
                                       fig13_interleave_accuracy,
                                       fig14_interleaving_model_accuracy,
                                       sweep_workload)
from .lab import DEFAULT_TIER_PLATFORMS, Lab, REPORT_TIERS, default_lab
from .policy_experiments import (Fig15Result, MixedRow,
                                 PlacementComparison,
                                 fig15_bestshot_vs_baselines,
                                 fig16a_colocation_prediction,
                                 fig16b_colocation_placement,
                                 fig16c_mixed_colocation)
from .prediction_experiments import (Table1Result, Table6Row,
                                     WorkloadRecord, collect_records,
                                     fig2_decomposition,
                                     fig4_drd_derivation,
                                     fig5_lfb_pressure,
                                     fig6_component_error_cdfs,
                                     fig8_timeseries,
                                     table1_metric_correlations,
                                     table6_overall_accuracy)
from .reporting import (ascii_scatter, ascii_table, cdf_summary,
                        heading, paper_vs_measured, sparkline)
from .stats import (AccuracySummary, absolute_errors, accuracy_summary,
                    cdf_points, fraction_within, geometric_mean,
                    pearson, percentile_row)

__all__ = [
    "Fig13Result", "Fig14Result", "LatencyCurveResult",
    "MlpInvarianceResult", "OptimumComparison", "WorkloadSweep",
    "build_model", "fig9_interleaving_shapes", "fig10_mlp_invariance",
    "fig11_latency_curves", "fig13_interleave_accuracy",
    "fig14_interleaving_model_accuracy", "sweep_workload",
    "DEFAULT_TIER_PLATFORMS", "Lab", "REPORT_TIERS", "default_lab",
    "Fig15Result", "MixedRow", "PlacementComparison",
    "fig15_bestshot_vs_baselines", "fig16a_colocation_prediction",
    "fig16b_colocation_placement", "fig16c_mixed_colocation",
    "Table1Result", "Table6Row", "WorkloadRecord", "collect_records",
    "fig2_decomposition", "fig4_drd_derivation", "fig5_lfb_pressure",
    "fig6_component_error_cdfs", "fig8_timeseries",
    "table1_metric_correlations", "table6_overall_accuracy",
    "ascii_scatter", "ascii_table", "cdf_summary", "heading",
    "paper_vs_measured",
    "sparkline", "AccuracySummary", "absolute_errors",
    "accuracy_summary", "cdf_points", "fraction_within",
    "geometric_mean", "pearson", "percentile_row",
]
