"""Experiment drivers for the use-case study (section 6).

========  ========================================================
Fig. 15   :func:`fig15_bestshot_vs_baselines`
Fig. 16a  :func:`fig16a_colocation_prediction`
Fig. 16b  :func:`fig16b_colocation_placement`
Fig. 16c  :func:`fig16c_mixed_colocation`
========  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.metrics import mpki
from ..core.signature import signature
from ..policies import (TieringContext, compare_policies, fig15_policies,
                        mixed_colocation, predicted_pair_slowdowns,
                        schedule_by_camp, schedule_by_mpki)
from ..policies.colocation import ColocationOutcome, MixedColocationOutcome
from ..uarch.interleave import Placement
from ..uarch.machine import slowdown
from ..workloads.spec import WorkloadSpec
from ..workloads.suites import (bandwidth_bound_eight, colocation_pairs,
                                get_workload)
from .lab import Lab, bandwidth_lab
from .stats import geometric_mean

#: Baselines are provisioned with a 4:1 fast:slow capacity ratio (80%
#: of the footprint fits in fast memory) - paper section 6.2.1.
BASELINE_FAST_SHARE = 0.8


# ---------------------------------------------------------------------------
# Figure 15: Best-shot vs the seven baselines.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig15Result:
    tier: str
    #: workload -> {policy name -> normalized performance}.
    table: Dict[str, Dict[str, float]]
    policy_order: Tuple[str, ...]

    def geomeans(self) -> Dict[str, float]:
        means: Dict[str, float] = {}
        for policy in self.policy_order:
            means[policy] = geometric_mean(
                [row[policy] for row in self.table.values()])
        return means

    def best_shot_gain_over(self, baseline: str) -> float:
        """Best-shot's largest per-workload gain over a baseline."""
        gains = [row["best-shot"] / row[baseline] - 1.0
                 for row in self.table.values()]
        return max(gains)


def fig15_bestshot_vs_baselines(
        tier: str = "cxl-a",
        workloads: Optional[Sequence[WorkloadSpec]] = None,
        fast_share: float = BASELINE_FAST_SHARE,
        lab: Optional[Lab] = None) -> Fig15Result:
    """Normalized performance of all policies on the BW-bound eight."""
    lab = lab or bandwidth_lab()
    machine = lab.machine_for_tier(tier)
    calibration = lab.calibration(tier)
    policies = fig15_policies(calibration)
    if workloads is None:
        workloads = bandwidth_bound_eight()

    table: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        context = TieringContext(
            machine=machine, workload=workload, device=tier,
            fast_capacity_gib=fast_share * workload.footprint_gib)
        outcomes = compare_policies(policies, context)
        table[workload.name] = {
            outcome.policy: outcome.normalized_performance
            for outcome in outcomes}
    return Fig15Result(
        tier=tier,
        table=table,
        policy_order=tuple(policy.name for policy in policies),
    )


# ---------------------------------------------------------------------------
# Figure 16a: CAMP vs MPKI as colocation predictors.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ColocationPredictionRow:
    workload: str
    camp_predicted: float
    actual_colocated: float
    mpki_value: float
    #: Rank by each signal among the pair (0 = "suffers most on slow").
    camp_rank: int
    mpki_rank: int


def fig16a_colocation_prediction(tier: str = "cxl-a",
                                 lab: Optional[Lab] = None
                                 ) -> List[ColocationPredictionRow]:
    """Per-workload slow-tier slowdown: CAMP forecast vs measurement
    under colocation, with the MPKI signal alongside.

    The chosen pairs are ones where CAMP and MPKI *rank the partners
    oppositely* - the cases where hotness-guided placement goes wrong.
    """
    lab = lab or bandwidth_lab()
    machine = lab.machine_for_tier(tier)
    calibration = lab.calibration(tier)

    rows: List[ColocationPredictionRow] = []
    for pair in colocation_pairs():
        forecasts = predicted_pair_slowdowns(machine, pair, tier,
                                             calibration)
        mpki_values = {}
        actuals = {}
        for workload in pair:
            profile = machine.profile(workload, Placement.dram_only())
            mpki_values[workload.name] = mpki(signature(profile))
        # Actual colocated slowdown of each partner when *it* is the
        # one on the slow tier (the other holds DRAM).
        for victim, partner in (pair, tuple(reversed(pair))):
            jobs = [(partner, Placement.dram_only()),
                    (victim, Placement.slow_only(tier))]
            results = machine.run_colocated(jobs)
            solo = machine.run(victim, Placement.dram_only())
            actuals[victim.name] = results[1].cycles / solo.cycles - 1.0

        camp_order = sorted(pair, key=lambda w: -forecasts[w.name])
        mpki_order = sorted(pair, key=lambda w: -mpki_values[w.name])
        for workload in pair:
            rows.append(ColocationPredictionRow(
                workload=workload.name,
                camp_predicted=forecasts[workload.name],
                actual_colocated=actuals[workload.name],
                mpki_value=mpki_values[workload.name],
                camp_rank=[w.name for w in camp_order].index(
                    workload.name),
                mpki_rank=[w.name for w in mpki_order].index(
                    workload.name),
            ))
    return rows


# ---------------------------------------------------------------------------
# Figure 16b: placement quality, CAMP-guided vs MPKI-guided.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlacementComparison:
    pair: Tuple[str, str]
    camp: ColocationOutcome
    mpki: ColocationOutcome

    @property
    def camp_advantage(self) -> float:
        """Relative improvement of CAMP placement over MPKI placement
        in pair throughput (weighted speedup)."""
        return (self.camp.weighted_speedup /
                self.mpki.weighted_speedup - 1.0)


def fig16b_colocation_placement(tier: str = "cxl-a",
                                lab: Optional[Lab] = None
                                ) -> List[PlacementComparison]:
    lab = lab or bandwidth_lab()
    machine = lab.machine_for_tier(tier)
    calibration = lab.calibration(tier)
    comparisons: List[PlacementComparison] = []
    for pair in colocation_pairs():
        camp = schedule_by_camp(machine, pair, tier, calibration)
        mpki_outcome = schedule_by_mpki(machine, pair, tier)
        comparisons.append(PlacementComparison(
            pair=(pair[0].name, pair[1].name),
            camp=camp,
            mpki=mpki_outcome,
        ))
    return comparisons


# ---------------------------------------------------------------------------
# Figure 16c: mixed BW-bound + latency-bound colocation across ratios.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MixedRow:
    fast_share: float
    #: policy -> weighted speedup of the pair.
    speedups: Dict[str, float]


def fig16c_mixed_colocation(tier: str = "cxl-a",
                            fast_shares: Sequence[float] = (
                                0.4, 0.5, 0.6, 0.7, 0.8),
                            policies: Sequence[str] = (
                                "best-shot", "first-touch", "nbt",
                                "colloid"),
                            lab: Optional[Lab] = None) -> List[MixedRow]:
    """654.roms (10 threads, BW-bound) + 557.xz (latency-bound) under
    varying fast-tier provisioning."""
    lab = lab or bandwidth_lab()
    machine = lab.machine_for_tier(tier)
    calibration = lab.calibration(tier)
    bw = get_workload("654.roms").with_threads(10)
    lat = get_workload("557.xz")
    total_fp = bw.footprint_gib + lat.footprint_gib

    rows: List[MixedRow] = []
    for share in fast_shares:
        capacity = share * total_fp
        speedups: Dict[str, float] = {}
        for policy in policies:
            outcome = mixed_colocation(machine, bw, lat, tier, capacity,
                                       calibration, policy=policy)
            speedups[policy] = outcome.weighted_speedup
        rows.append(MixedRow(fast_share=share, speedups=speedups))
    return rows
