"""Statistics helpers shared by the experiment drivers and benches.

Small, numpy-backed, and defensive about degenerate inputs (constant
series, empty arrays) so experiment code never trips over edge cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation; 0.0 for degenerate (constant/short) input."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError("series must have matching shapes")
    if x.size < 2 or np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def absolute_errors(predicted: Sequence[float],
                    actual: Sequence[float]) -> np.ndarray:
    """Element-wise absolute prediction errors."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError("series must have matching shapes")
    return np.abs(predicted - actual)


def fraction_within(errors: Sequence[float], bound: float) -> float:
    """Share of absolute errors at or below ``bound`` (0..1)."""
    errors = np.asarray(errors, dtype=float)
    if errors.size == 0:
        return 1.0
    return float(np.mean(errors <= bound))


@dataclass(frozen=True)
class AccuracySummary:
    """The paper's standard accuracy triple (Table 6 row format)."""

    pearson: float
    within_5pct: float
    within_10pct: float
    count: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "pearson": self.pearson,
            "within_5pct": self.within_5pct,
            "within_10pct": self.within_10pct,
            "count": float(self.count),
        }


def accuracy_summary(predicted: Sequence[float],
                     actual: Sequence[float]) -> AccuracySummary:
    """Pearson + error-bound shares for a prediction series."""
    errors = absolute_errors(predicted, actual)
    return AccuracySummary(
        pearson=pearson(predicted, actual),
        within_5pct=fraction_within(errors, 0.05),
        within_10pct=fraction_within(errors, 0.10),
        count=len(errors),
    )


def cdf_points(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative fractions) for CDF plots/tables."""
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        return values, values
    fractions = np.arange(1, values.size + 1) / values.size
    return values, fractions


def percentile_row(values: Sequence[float],
                   percentiles: Iterable[float] = (10, 25, 50, 75, 90)
                   ) -> Dict[str, float]:
    """Named percentile summary used in the distribution tables."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return {f"p{int(p)}": float("nan") for p in percentiles}
    return {f"p{int(p)}": float(np.percentile(values, p))
            for p in percentiles}


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (values must be positive)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return float("nan")
    if np.any(values <= 0):
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(values))))
