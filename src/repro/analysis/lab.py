"""The experiment laboratory: machines, calibrations, and cached runs.

Every table/figure driver needs the same ingredients - the evaluation
suite, a machine per platform, a calibration per device, and a pile of
(workload, placement) executions.  :class:`Lab` owns and memoizes them
so the benchmark harness never repeats a simulated run: drivers share
DRAM baselines, calibrations are fitted once per device, and the whole
EXPERIMENTS.md regeneration stays minutes-scale.

Platform assignment follows the paper's testbeds: the NUMA tier is
evaluated on SKX (the paper emulates NUMA there), the three CXL 2.0
expanders on SPR (their PCIe 5 hosts).  Both can be overridden.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.calibration import Calibration, calibrate
from ..core.slowdown import SlowdownPredictor
from ..runtime import serde, warmstore
from ..runtime.executor import Executor
from ..runtime.spec import RunSpec
from ..runtime.store import ResultStore
from ..uarch.config import PlatformConfig, get_platform
from ..uarch.interleave import Placement
from ..uarch.machine import Machine, RunResult, WarmStartCache
from ..workloads.spec import WorkloadSpec
from ..workloads.suites import evaluation_suite

#: Which platform hosts which slow tier in the paper's evaluation.
DEFAULT_TIER_PLATFORMS: Dict[str, str] = {
    "numa": "skx2s",
    "cxl-a": "spr2s",
    "cxl-b": "spr2s",
    "cxl-c": "spr2s",
}

#: The evaluation tiers, in the paper's reporting order.
REPORT_TIERS: Tuple[str, ...] = ("numa", "cxl-a", "cxl-b", "cxl-c")


class Lab:
    """Memoizing facade over machines, calibrations, and runs.

    With the defaults the memo lives purely in-process, as it always
    has.  Handing the lab a :class:`~repro.runtime.store.ResultStore`
    (or a pre-built :class:`~repro.runtime.executor.Executor`) makes
    every run and calibration persistent across invocations, and
    ``jobs > 1`` lets the batch entry points (:meth:`warm`,
    :func:`calibrate`) fan out over worker processes.
    """

    def __init__(self, seed: int = 2026,
                 tier_platforms: Optional[Dict[str, str]] = None,
                 noise: Optional[float] = None,
                 store: Optional[ResultStore] = None,
                 jobs: int = 1,
                 executor: Optional[Executor] = None):
        self.seed = seed
        self.tier_platforms = dict(tier_platforms or
                                   DEFAULT_TIER_PLATFORMS)
        self._noise = noise
        self.executor = executor if executor is not None else \
            Executor(jobs=jobs, store=store)
        self._machines: Dict[str, Machine] = {}
        self._calibrations: Dict[Tuple[str, str], Calibration] = {}
        self._runs: Dict[Tuple[str, int, WorkloadSpec, Placement],
                         RunResult] = {}
        self._suite: Optional[List[WorkloadSpec]] = None
        # Converged fixed points shared across :meth:`sweep_runs`
        # calls: neighbouring ratios (and repeat sweeps at other
        # resolutions) seed from each other.  Built lazily by
        # :meth:`warm_cache` so the persisted snapshot (if any) is
        # loaded exactly once, on first use.
        self._warm_cache: Optional[WarmStartCache] = None

    # -- ingredients ---------------------------------------------------------
    def suite(self) -> List[WorkloadSpec]:
        """The 265-workload evaluation population (cached)."""
        if self._suite is None:
            self._suite = evaluation_suite(seed=self.seed)
        return self._suite

    def machine(self, platform_name: str) -> Machine:
        """The (cached) machine for a platform preset name."""
        key = platform_name.lower()
        if key not in self._machines:
            platform = get_platform(key)
            if self._noise is None:
                self._machines[key] = Machine(platform)
            else:
                self._machines[key] = Machine(platform,
                                              noise=self._noise)
        return self._machines[key]

    def machine_for_tier(self, tier: str) -> Machine:
        """The machine hosting a slow tier, per the paper's testbeds."""
        platform_name = self.tier_platforms.get(tier.lower())
        if platform_name is None:
            raise KeyError(f"no platform assigned for tier {tier!r}")
        return self.machine(platform_name)

    def calibration(self, tier: str) -> Calibration:
        """One-time CAMP calibration for (hosting platform, tier)."""
        machine = self.machine_for_tier(tier)
        key = (machine.platform.name, tier.lower())
        if key not in self._calibrations:
            with self.executor.telemetry.stage(
                    "lab.calibration", tier=tier.lower(),
                    platform=machine.platform.name):
                self._calibrations[key] = calibrate(
                    machine, tier, store=self.executor.store,
                    executor=self.executor)
        return self._calibrations[key]

    def predictor(self, tier: str) -> SlowdownPredictor:
        return SlowdownPredictor(self.calibration(tier))

    # -- cached execution ----------------------------------------------------
    def run(self, machine: Machine, workload: WorkloadSpec,
            placement: Placement) -> RunResult:
        """Execute (memoized on machine+workload+placement)."""
        key = (machine.platform.name, machine.seed, workload, placement)
        if key not in self._runs:
            self._runs[key] = self.executor.run_one(
                RunSpec.from_machine(machine, workload, placement))
        return self._runs[key]

    def warm(self, machine: Machine,
             work: Sequence[Tuple[WorkloadSpec, Placement]],
             label: str = "warm") -> List[RunResult]:
        """Batch-execute (workload, placement) pairs into the memo.

        The batch entry point for drivers: one call fans the whole
        work list out over the executor's worker pool (and through the
        persistent store), after which the per-run accessors below are
        pure memo hits.  Returns the results in input order.
        """
        keys = [(machine.platform.name, machine.seed, workload, placement)
                for workload, placement in work]
        missing = [(key, workload, placement)
                   for key, (workload, placement) in zip(keys, work)
                   if key not in self._runs]
        if missing:
            specs = [RunSpec.from_machine(machine, workload, placement)
                     for _, workload, placement in missing]
            with self.executor.telemetry.stage(
                    "lab.warm", label=label, batch=len(work),
                    missing=len(missing)):
                for (key, _, _), result in zip(
                        missing, self.executor.run(specs, label=label)):
                    self._runs[key] = result
        return [self._runs[key] for key in keys]

    def warm_cache(self) -> WarmStartCache:
        """The sweep solver's warm-start cache, loaded lazily.

        First use rebuilds the cache from the store's persisted
        snapshot (``repro.runtime.warmstore``) so a cold process
        inherits every fixed point earlier processes converged.
        Fault-injection runs skip the load - a fault-shaped store must
        not leak warmth into (or out of) a chaos experiment.  Loaded
        points are counted as ``warm_points_loaded``.
        """
        if self._warm_cache is None:
            self._warm_cache = WarmStartCache()
            if self.executor.fault_plan is None:
                _, loaded = warmstore.load_warm_cache(
                    self.executor.store, self._warm_cache)
                if loaded:
                    self.executor.telemetry.count(
                        "warm_points_loaded", loaded)
        return self._warm_cache

    def _persist_warm_cache(self) -> None:
        """Best-effort snapshot of the warm cache into the store."""
        if self._warm_cache is None or \
                self.executor.fault_plan is not None:
            return
        saved = warmstore.save_warm_cache(self.executor.store,
                                          self._warm_cache)
        if saved:
            self.executor.telemetry.count("warm_points_saved", saved)

    def _ratio_placement(self, tier: str, x: float) -> Placement:
        if x >= 1.0:
            return Placement.dram_only()
        if x <= 0.0:
            return Placement.slow_only(tier)
        return Placement.interleaved(x, tier)

    def sweep_runs(self, tier: str, workload: WorkloadSpec,
                   ratios: Sequence[float],
                   label: str = "sweep") -> List[RunResult]:
        """Ratio sweep through the vectorized, warm-started solver.

        The sweep shape is the substrate's hottest loop (Fig. 11/13/14
        profile 101 ratios per workload), so it goes straight to
        :meth:`Machine.run_batch_multi` with Anderson acceleration and
        this lab's warm-start cache instead of N scalar fixed points
        through the executor.  Results are memoized into the same
        per-run memo the scalar accessors use; points already memoized
        (for example the DRAM baseline) are reused, not re-solved.
        New fixed points the solve records are snapshotted back into
        the persistent store (``warm_points_saved``) so the next
        process's sweeps start warm.

        Accelerated results match the scalar path within
        :data:`~repro.uarch.machine.ACCELERATED_RELATIVE_TOLERANCE`
        rather than bit-for-bit, and are therefore never *written* to
        the persistent store - the documented trade (docs/SOLVER.md)
        for the sweep speedup.  The store is still *read*: missing
        points whose exact (scalar/replay) result a previous executor
        run persisted are seeded from one batched
        :meth:`~repro.runtime.store.ResultStore.get_many` before the
        accelerated solve, so warm sweeps re-solve only genuinely new
        ratios.
        """
        machine = self.machine_for_tier(tier)
        placements = [self._ratio_placement(tier, float(x))
                      for x in ratios]
        keys = [(machine.platform.name, machine.seed, workload,
                 placement) for placement in placements]
        missing = [index for index, key in enumerate(keys)
                   if key not in self._runs]
        missing = self._seed_from_store(machine, workload, placements,
                                        keys, missing)
        if missing:
            stats: Dict[str, object] = {}
            cache = self.warm_cache()
            recorded = cache.points_recorded + cache.evictions
            with self.executor.telemetry.stage(
                    "lab.sweep", tier=tier.lower(), label=label,
                    workload=workload.name, batch=len(keys),
                    missing=len(missing)):
                results = Machine.run_batch_multi(
                    [RunSpec.from_machine(machine, workload,
                                          placements[index])
                     for index in missing],
                    accelerate=True, warm_cache=cache, stats=stats)
            for index, result in zip(missing, results):
                self._runs[keys[index]] = result
            if stats.get("nonconverged"):
                self.executor.telemetry.count(
                    "nonconverged_results", int(stats["nonconverged"]))
            if cache.points_recorded + cache.evictions != recorded:
                self._persist_warm_cache()
        return [self._runs[key] for key in keys]

    def _seed_from_store(self, machine: Machine,
                         workload: WorkloadSpec,
                         placements: Sequence[Placement],
                         keys: Sequence[Tuple],
                         missing: List[int]) -> List[int]:
        """Fill sweep points the persistent store already has exactly.

        One batched ``get_many`` over the missing points' fingerprints;
        hits decode straight into the run memo (they are exact scalar
        results, strictly better than re-solving them approximately)
        and drop out of the accelerated batch.  Returns the indices
        still missing.  Counted as ``sweep_seed_hits``, apart from the
        executor's ``store_hits``, because no executor batch ran.
        """
        store = self.executor.store
        if not missing or store is None or \
                self.executor.fault_plan is not None:
            return missing
        fingerprints = {
            index: RunSpec.from_machine(machine, workload,
                                        placements[index]).fingerprint()
            for index in missing}
        found = store.get_many(sorted(set(fingerprints.values())))
        if not found:
            return missing
        still: List[int] = []
        for index in missing:
            payload = found.get(fingerprints[index])
            if payload is None:
                still.append(index)
            else:
                self._runs[keys[index]] = \
                    serde.run_result_from_dict(payload)
        self.executor.telemetry.count("sweep_seed_hits",
                                      len(missing) - len(still))
        return still

    def dram_run(self, tier: str, workload: WorkloadSpec) -> RunResult:
        """The DRAM baseline on the tier's hosting platform."""
        return self.run(self.machine_for_tier(tier), workload,
                        Placement.dram_only())

    def slow_run(self, tier: str, workload: WorkloadSpec) -> RunResult:
        """The all-on-slow-tier run."""
        return self.run(self.machine_for_tier(tier), workload,
                        Placement.slow_only(tier))

    def interleaved_run(self, tier: str, workload: WorkloadSpec,
                        dram_fraction: float) -> RunResult:
        if dram_fraction >= 1.0:
            return self.dram_run(tier, workload)
        if dram_fraction <= 0.0:
            return self.slow_run(tier, workload)
        return self.run(self.machine_for_tier(tier), workload,
                        Placement.interleaved(dram_fraction, tier))

    def cache_size(self) -> int:
        """Number of memoized runs (diagnostics)."""
        return len(self._runs)


#: A process-wide default lab so benches and examples share the cache.
_DEFAULT_LAB: Optional[Lab] = None


def default_lab() -> Lab:
    """The shared module-level :class:`Lab` instance."""
    global _DEFAULT_LAB
    if _DEFAULT_LAB is None:
        _DEFAULT_LAB = Lab()
    return _DEFAULT_LAB


#: Platform assignment for the *bandwidth* studies (sections 5-6).
#: The interleaving and policy experiments need a host whose DRAM a
#: ten-thread streamer can actually contend for; we follow the paper's
#: Fig. 13 setup (10-thread 603.bwaves - the SKX core count) and host
#: every tier on SKX2S there.  The slowdown-prediction study keeps the
#: PCIe5-platform assignment of :data:`DEFAULT_TIER_PLATFORMS`.
BANDWIDTH_TIER_PLATFORMS: Dict[str, str] = {
    tier: "skx2s" for tier in REPORT_TIERS
}

_BANDWIDTH_LAB: Optional[Lab] = None


def bandwidth_lab() -> Lab:
    """The shared lab for the section 5-6 bandwidth experiments."""
    global _BANDWIDTH_LAB
    if _BANDWIDTH_LAB is None:
        _BANDWIDTH_LAB = Lab(tier_platforms=BANDWIDTH_TIER_PLATFORMS)
    return _BANDWIDTH_LAB
