"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and readable: fixed-width
ASCII tables, CDF summaries, and paper-vs-measured comparison rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence],
                float_format: str = "{:.3f}") -> str:
    """Render a fixed-width table; floats use ``float_format``."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    separator = "  ".join("-" * width for width in widths)
    out = [line(headers), separator]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def cdf_summary(values: Sequence[float],
                bounds: Sequence[float] = (0.01, 0.02, 0.05, 0.10)
                ) -> str:
    """One-line CDF summary: share of values within each bound."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return "(no data)"
    parts = [f"<={bound:.0%}: {np.mean(values <= bound):6.1%}"
             for bound in bounds]
    parts.append(f"max: {values.max():.3f}")
    return "  ".join(parts)


def paper_vs_measured(rows: Sequence[Tuple[str, float, float]],
                      label: str = "quantity") -> str:
    """Table comparing paper-reported values with measured ones."""
    table_rows = [(name, paper, measured, measured - paper)
                  for name, paper, measured in rows]
    return ascii_table(
        [label, "paper", "measured", "delta"], table_rows)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A coarse text sparkline for curve sanity-checks in bench logs."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    if values.size > width:
        # Downsample by averaging buckets.
        buckets = np.array_split(values, width)
        values = np.array([bucket.mean() for bucket in buckets])
    glyphs = " .:-=+*#%@"
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-12:
        # A constant series renders as a visible flat line.
        return glyphs[4] * values.size
    scaled = (values - lo) / (hi - lo) * (len(glyphs) - 1)
    return "".join(glyphs[int(round(v))] for v in scaled)


def heading(title: str, char: str = "=") -> str:
    return f"\n{title}\n{char * len(title)}"


def ascii_scatter(xs: Sequence[float], ys: Sequence[float],
                  width: int = 56, height: int = 18,
                  x_label: str = "x", y_label: str = "y",
                  diagonal: bool = False) -> str:
    """A text scatter plot (the closest a terminal gets to Fig. 1/7).

    ``diagonal`` overlays the y = x line - useful for
    predicted-vs-actual panels where hugging the diagonal is the claim.
    Glyphs encode point density per cell (`.` one point, `:` two,
    `*` a few, `@` many).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError("xs and ys must have matching shapes")
    if xs.size == 0:
        return "(no data)"
    lo_x, hi_x = float(xs.min()), float(xs.max())
    lo_y, hi_y = float(ys.min()), float(ys.max())
    if diagonal:
        lo_x = lo_y = min(lo_x, lo_y)
        hi_x = hi_y = max(hi_x, hi_y)
    span_x = max(hi_x - lo_x, 1e-12)
    span_y = max(hi_y - lo_y, 1e-12)

    counts = np.zeros((height, width), dtype=int)
    for x, y in zip(xs, ys):
        col = min(width - 1, int((x - lo_x) / span_x * (width - 1)))
        row = min(height - 1, int((y - lo_y) / span_y * (height - 1)))
        counts[height - 1 - row, col] += 1

    def glyph(count: int, on_diagonal: bool) -> str:
        if count == 0:
            return "\\" if on_diagonal else " "
        if count == 1:
            return "."
        if count == 2:
            return ":"
        if count <= 5:
            return "*"
        return "@"

    lines = []
    for r in range(height):
        row_cells = []
        for c in range(width):
            on_diag = False
            if diagonal:
                # The cell through which y = x passes in plot coords.
                x_val = lo_x + c / max(width - 1, 1) * span_x
                y_val = lo_y + (height - 1 - r) / \
                    max(height - 1, 1) * span_y
                on_diag = abs(x_val - y_val) <= span_y / height
            row_cells.append(glyph(counts[r, c], on_diag))
        lines.append("|" + "".join(row_cells) + "|")
    top = f"{hi_y:10.3g} +" + "-" * width + "+"
    bottom = f"{lo_y:10.3g} +" + "-" * width + "+"
    footer = (" " * 12 + f"{lo_x:<10.3g}"
              + x_label.center(max(width - 20, 0))
              + f"{hi_x:>10.3g}")
    body = "\n".join(" " * 11 + line for line in lines)
    return f"{y_label}\n{top}\n{body}\n{bottom}\n{footer}"
