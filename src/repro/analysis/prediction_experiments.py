"""Experiment drivers for the prediction study (sections 2 and 4).

One driver per table/figure; each returns a plain-data result object
that the benchmarks print and EXPERIMENTS.md records:

========  ========================================================
Table 1   :func:`table1_metric_correlations`
Fig. 1    same data as Table 1 (per-workload scatter included)
Fig. 2    :func:`fig2_decomposition`
Fig. 4    :func:`fig4_drd_derivation`
Fig. 5    :func:`fig5_lfb_pressure`
Fig. 6    :func:`fig6_component_error_cdfs`
Fig. 7    :func:`table6_overall_accuracy` (scatter series)
Fig. 8    :func:`fig8_timeseries`
Table 6   :func:`table6_overall_accuracy`
========  ========================================================

All drivers work purely through :class:`~repro.analysis.lab.Lab` so
repeated invocations share simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cache import measured_cache_slowdown
from ..core.counters import ProfiledRun
from ..core.drd import measured_drd_slowdown, measured_tolerance
from ..core.metrics import BASELINE_METRICS
from ..core.signature import Signature, signature
from ..core.store import measured_store_slowdown
from ..uarch.interleave import Placement
from ..uarch.machine import component_slowdowns, slowdown
from ..workloads.phases import tc_kron_phased
from ..workloads.spec import WorkloadSpec
from .lab import Lab, REPORT_TIERS, default_lab
from .stats import (AccuracySummary, accuracy_summary, cdf_points,
                    pearson, percentile_row)


# ---------------------------------------------------------------------------
# Shared: per-workload records on one tier.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadRecord:
    """Everything the prediction study needs about one workload."""

    name: str
    suite: str
    dram_signature: Signature
    slow_signature: Signature
    dram_profile: ProfiledRun
    actual_slowdown: float
    actual_components: Dict[str, float]
    predicted_components: Dict[str, float]

    @property
    def predicted_slowdown(self) -> float:
        return sum(self.predicted_components.values())


def collect_records(tier: str, lab: Optional[Lab] = None,
                    workloads: Optional[Sequence[WorkloadSpec]] = None
                    ) -> List[WorkloadRecord]:
    """Run the suite on DRAM and ``tier``; predict from DRAM only."""
    lab = lab or default_lab()
    predictor = lab.predictor(tier)
    chosen = list(workloads if workloads is not None else lab.suite())
    # One batched fan-out through the lab's executor (parallel workers
    # and the persistent store, when configured) before the per-run
    # accessors below, which then hit the memo.
    lab.warm(lab.machine_for_tier(tier),
             [(w, Placement.dram_only()) for w in chosen] +
             [(w, Placement.slow_only(tier)) for w in chosen],
             label=f"suite:{tier}")
    records: List[WorkloadRecord] = []
    for workload in chosen:
        dram = lab.dram_run(tier, workload)
        slow = lab.slow_run(tier, workload)
        dram_profile = dram.profiled()
        prediction = predictor.predict(dram_profile)
        records.append(WorkloadRecord(
            name=workload.name,
            suite=workload.suite,
            dram_signature=signature(dram_profile),
            slow_signature=signature(slow.profiled()),
            dram_profile=dram_profile,
            actual_slowdown=slowdown(dram, slow),
            actual_components=component_slowdowns(dram, slow),
            predicted_components={"drd": prediction.drd,
                                  "cache": prediction.cache,
                                  "store": prediction.store},
        ))
    return records


# ---------------------------------------------------------------------------
# Table 1 / Figure 1: metric correlation study.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MetricCorrelation:
    metric: str
    system: str
    paper_pearson: float
    measured_pearson: float
    #: Scatter series for Fig. 1 (metric value, actual slowdown).
    series: Tuple[Tuple[float, float], ...] = field(repr=False)


@dataclass(frozen=True)
class Table1Result:
    tier: str
    correlations: Tuple[MetricCorrelation, ...]

    def by_metric(self) -> Dict[str, MetricCorrelation]:
        return {c.metric: c for c in self.correlations}


def table1_metric_correlations(tier: str = "numa",
                               lab: Optional[Lab] = None) -> Table1Result:
    """Correlate each baseline metric (and CAMP) with actual slowdown.

    The paper reports *absolute* Pearson values; IPC correlates
    negatively by construction, so we report ``|r|`` as the paper does.
    """
    lab = lab or default_lab()
    records = collect_records(tier, lab)
    actual = [r.actual_slowdown for r in records]

    correlations: List[MetricCorrelation] = []
    for spec in BASELINE_METRICS:
        values = [spec.compute(r.dram_profile) for r in records]
        correlations.append(MetricCorrelation(
            metric=spec.name,
            system=spec.system,
            paper_pearson=spec.paper_pearson,
            measured_pearson=abs(pearson(values, actual)),
            series=tuple(zip(values, actual)),
        ))
    camp_values = [r.predicted_slowdown for r in records]
    correlations.append(MetricCorrelation(
        metric="camp",
        system="CAMP (ours)",
        paper_pearson=0.97,
        measured_pearson=abs(pearson(camp_values, actual)),
        series=tuple(zip(camp_values, actual)),
    ))
    return Table1Result(tier=tier, correlations=tuple(correlations))


# ---------------------------------------------------------------------------
# Figure 2: slowdown decomposition.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DecompositionRow:
    name: str
    total: float
    drd: float
    cache: float
    store: float
    residual: float


def fig2_decomposition(tier: str = "cxl-a",
                       workload_names: Sequence[str] = (
                           "605.mcf", "649.fotonik3d", "619.lbm",
                           "557.xz", "llama-7b", "rangeQuery2d"),
                       lab: Optional[Lab] = None
                       ) -> List[DecompositionRow]:
    """S = S_DRd + S_Cache + S_Store on representative workloads.

    ``residual`` is the part of total slowdown the three components do
    not explain - near zero by the Melody decomposition (Eq. 1).
    """
    lab = lab or default_lab()
    names = set(workload_names)
    chosen = [w for w in lab.suite() if w.name in names]
    rows: List[DecompositionRow] = []
    for record in collect_records(tier, lab, chosen):
        comp = record.actual_components
        explained = comp["drd"] + comp["cache"] + comp["store"]
        rows.append(DecompositionRow(
            name=record.name,
            total=record.actual_slowdown,
            drd=comp["drd"],
            cache=comp["cache"],
            store=comp["store"],
            residual=record.actual_slowdown - explained,
        ))
    return rows


# ---------------------------------------------------------------------------
# Figure 4: the S_DRd derivation study.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig4Result:
    tier: str
    #: (b) distribution of s_LLC / C on DRAM.
    sllc_over_c: Dict[str, float]
    #: (c) distributions of the three scaling ratios.
    r_n: Dict[str, float]
    r_lat: Dict[str, float]
    r_mlp: Dict[str, float]
    #: Fraction of workloads with R_N within 5% of 1.0 (paper: >95%).
    r_n_stable_fraction: float
    #: (d) correlation of baseline DRAM latency with R_Lat.
    latency_vs_rlat_pearson: float
    #: (e) correlation of baseline MLP with R_MLP.
    mlp_vs_rmlp_pearson: float
    #: (f) hyperbola fit: correlation of f(AOL) with the measured
    #: latency-tolerance factor across the corpus.
    tolerance_fit_pearson: float
    #: (a) proxy error comparison: mean |error| of S_DRd estimators.
    proxy_errors: Dict[str, float]


def fig4_drd_derivation(tier: str = "numa",
                        lab: Optional[Lab] = None) -> Fig4Result:
    """Reproduce the Fig. 4 measurements over the corpus."""
    lab = lab or default_lab()
    records = collect_records(tier, lab)
    calibration = lab.calibration(tier)

    sllc_c, r_n, r_lat, r_mlp = [], [], [], []
    tolerance_measured, tolerance_fitted = [], []
    err_full, err_no_mlp, err_no_lat, err_c_only = [], [], [], []
    for record in records:
        dram, slow = record.dram_signature, record.slow_signature
        if dram.memory_active_cycles > 0:
            sllc_c.append(dram.s_llc / dram.memory_active_cycles)
        if dram.demand_reads > 0 and slow.demand_reads > 0:
            r_n.append(slow.demand_reads / dram.demand_reads)
        if dram.latency_cycles > 0:
            r_lat.append(slow.latency_cycles / dram.latency_cycles)
        r_mlp.append(slow.mlp / dram.mlp)

        measured = measured_tolerance(dram, slow)
        fitted = calibration.drd.tolerance(dram.aol)
        tolerance_measured.append(measured)
        tolerance_fitted.append(fitted)

        # (a) S_DRd proxy comparison.  "Full" uses the measured scaling
        # ratios (attribution-grade); the ablations drop R_Lat or R_MLP;
        # "C-only" assumes stalls scale with the raw latency ratio.
        actual = record.actual_components["drd"]
        c_frac = dram.memory_active_cycles / dram.cycles
        ratio_lat = (slow.latency_cycles / dram.latency_cycles
                     if dram.latency_cycles > 0 else 1.0)
        ratio_mlp = slow.mlp / dram.mlp
        scale = dram.s_llc / max(dram.memory_active_cycles, 1.0)
        err_full.append(abs(
            (ratio_lat / ratio_mlp - 1.0) * c_frac * scale - actual))
        err_no_mlp.append(abs(
            (ratio_lat - 1.0) * c_frac * scale - actual))
        err_no_lat.append(abs(
            (1.0 / ratio_mlp - 1.0) * c_frac * scale - actual))
        err_c_only.append(abs(
            (ratio_lat / ratio_mlp - 1.0) * c_frac - actual))

    r_n = np.asarray(r_n)
    return Fig4Result(
        tier=tier,
        sllc_over_c=percentile_row(sllc_c),
        r_n=percentile_row(r_n),
        r_lat=percentile_row(r_lat),
        r_mlp=percentile_row(r_mlp),
        r_n_stable_fraction=float(np.mean(np.abs(r_n - 1.0) <= 0.05)),
        latency_vs_rlat_pearson=pearson(
            [r.dram_signature.latency_cycles for r in records
             if r.dram_signature.latency_cycles > 0],
            r_lat),
        mlp_vs_rmlp_pearson=pearson(
            [r.dram_signature.mlp for r in records], r_mlp),
        tolerance_fit_pearson=pearson(tolerance_fitted,
                                      tolerance_measured),
        proxy_errors={
            "C with R_Lat and R_MLP": float(np.mean(err_full)),
            "C with R_Lat only": float(np.mean(err_no_mlp)),
            "C with R_MLP only": float(np.mean(err_no_lat)),
            "C without s_LLC proxy": float(np.mean(err_c_only)),
        },
    )


# ---------------------------------------------------------------------------
# Figure 5: LFB pressure correlations.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig5Result:
    tier: str
    #: (a) Delta(L1PF L3 misses) vs Delta(LFB hits) across tiers.
    pf_miss_vs_lfb_hit_pearson: float
    #: (b) Delta(LFB hits) vs Delta(L1 hit rate): LFB growth comes at
    #: the expense of L1 hits (expected strongly negative).
    lfb_vs_l1_hit_pearson: float
    #: (c) cache slowdown vs DRAM LFB-hit ratio.
    cache_slowdown_vs_lfb_pearson: float


def fig5_lfb_pressure(tier: str = "cxl-a",
                      lab: Optional[Lab] = None) -> Fig5Result:
    lab = lab or default_lab()
    records = collect_records(tier, lab)

    from ..core.counters import Counter
    delta_pf_miss, delta_lfb_hit, delta_l1_hit = [], [], []
    lfb_ratio, cache_slow = [], []
    for record in records:
        dram_sample = record.dram_profile.sample
        slow_run = lab.slow_run(tier, _spec_by_name(lab, record.name))
        slow_sample = slow_run.counters
        instructions = max(record.dram_signature.instructions, 1.0)

        # (c): the DRAM-visible LFB reliance against the eventual
        # cache slowdown.
        lfb_ratio.append(record.dram_signature.lfb_hit_ratio)
        cache_slow.append(record.actual_components["cache"])

        # (a): growth of L1-prefetch L3 misses vs growth of LFB hits
        # when moving from DRAM to the slow tier (per instruction).
        pf_miss_dram = (dram_sample[Counter.PF_L1D_ANY_RESPONSE] -
                        dram_sample[Counter.PF_L1D_L3_HIT])
        pf_miss_slow = (slow_sample[Counter.PF_L1D_ANY_RESPONSE] -
                        slow_sample[Counter.PF_L1D_L3_HIT])
        delta_pf_miss.append((pf_miss_slow - pf_miss_dram) /
                             instructions)
        lfb_growth = (slow_sample[Counter.LFB_HIT] -
                      dram_sample[Counter.LFB_HIT]) / instructions
        delta_lfb_hit.append(lfb_growth)

        # (b): L1 hit-rate change across tiers; loads that used to hit
        # L1 (timely prefetches) now hit the LFB instead.
        misses_dram = (dram_sample[Counter.L1_MISS] +
                       dram_sample[Counter.LFB_HIT])
        misses_slow = (slow_sample[Counter.L1_MISS] +
                       slow_sample[Counter.LFB_HIT])
        delta_l1_hit.append((misses_dram - misses_slow) / instructions)

    return Fig5Result(
        tier=tier,
        pf_miss_vs_lfb_hit_pearson=pearson(delta_pf_miss, delta_lfb_hit),
        lfb_vs_l1_hit_pearson=pearson(delta_lfb_hit, delta_l1_hit),
        cache_slowdown_vs_lfb_pearson=pearson(lfb_ratio, cache_slow),
    )


def _spec_by_name(lab: Lab, name: str) -> WorkloadSpec:
    for workload in lab.suite():
        if workload.name == name:
            return workload
    raise KeyError(name)


# ---------------------------------------------------------------------------
# Figure 6: per-component error CDFs.  Table 6 / Figure 7: overall.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ComponentAccuracy:
    tier: str
    component: str
    errors: np.ndarray
    within_5pct: float


def fig6_component_error_cdfs(tiers: Sequence[str] = REPORT_TIERS,
                              lab: Optional[Lab] = None
                              ) -> List[ComponentAccuracy]:
    """Absolute prediction error per component per tier (CDF data)."""
    lab = lab or default_lab()
    out: List[ComponentAccuracy] = []
    for tier in tiers:
        records = collect_records(tier, lab)
        for component in ("drd", "cache", "store"):
            errors = np.array([
                abs(r.predicted_components[component] -
                    r.actual_components[component]) for r in records])
            out.append(ComponentAccuracy(
                tier=tier, component=component, errors=errors,
                within_5pct=float(np.mean(errors <= 0.05))))
    return out


@dataclass(frozen=True)
class Table6Row:
    tier: str
    summary: AccuracySummary
    #: Fig. 7 scatter: (predicted, actual) per workload.
    scatter: Tuple[Tuple[float, float], ...] = field(repr=False)


def table6_overall_accuracy(tiers: Sequence[str] = REPORT_TIERS,
                            lab: Optional[Lab] = None) -> List[Table6Row]:
    """Overall prediction accuracy per tier (Table 6, Fig. 7)."""
    lab = lab or default_lab()
    rows: List[Table6Row] = []
    for tier in tiers:
        records = collect_records(tier, lab)
        predicted = [r.predicted_slowdown for r in records]
        actual = [r.actual_slowdown for r in records]
        rows.append(Table6Row(
            tier=tier,
            summary=accuracy_summary(predicted, actual),
            scatter=tuple(zip(predicted, actual)),
        ))
    return rows


# ---------------------------------------------------------------------------
# Figure 8: time-series (phased) prediction.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TimeseriesPoint:
    window: int
    phase: str
    predicted: float
    actual: float


def fig8_timeseries(tier: str = "cxl-a", cycles: int = 3,
                    lab: Optional[Lab] = None) -> List[TimeseriesPoint]:
    """Per-window predicted vs actual slowdown for phased tc-kron."""
    lab = lab or default_lab()
    predictor = lab.predictor(tier)
    phased = tc_kron_phased(cycles=cycles)

    points: List[TimeseriesPoint] = []
    for index, window in enumerate(phased.windows()):
        dram = lab.dram_run(tier, window)
        slow = lab.slow_run(tier, window)
        predicted = predictor.predict(dram.profiled()).total
        points.append(TimeseriesPoint(
            window=index,
            phase=window.name,
            predicted=predicted,
            actual=slowdown(dram, slow),
        ))
    return points
