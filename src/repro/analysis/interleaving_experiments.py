"""Experiment drivers for the interleaving study (section 5).

========  ========================================================
Fig. 9    :func:`fig9_interleaving_shapes`
Fig. 10   :func:`fig10_mlp_invariance`
Fig. 11   :func:`fig11_latency_curves`
Fig. 13   :func:`fig13_interleave_accuracy`
Fig. 14   :func:`fig14_interleaving_model_accuracy`
========  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.interleaving import InterleavingModel, synthesize
from ..uarch.machine import component_slowdowns, slowdown
from ..workloads.spec import WorkloadSpec
from ..workloads.suites import bandwidth_bound_twenty, get_workload
from .lab import Lab, bandwidth_lab
from .stats import fraction_within, pearson

#: Default ratio sweep: the paper profiles 101 ratios (100:0 .. 0:100).
DEFAULT_RATIOS: Tuple[float, ...] = tuple(np.linspace(1.0, 0.0, 101))

#: Coarser sweep for drivers that run many workloads.
COARSE_RATIOS: Tuple[float, ...] = tuple(np.linspace(1.0, 0.0, 21))


# ---------------------------------------------------------------------------
# Figure 9: the two response regimes, per component.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    dram_fraction: float
    total: float
    drd: float
    cache: float
    store: float
    dram_latency_ns: float
    slow_latency_ns: float
    mlp: float


@dataclass(frozen=True)
class WorkloadSweep:
    workload: str
    tier: str
    points: Tuple[SweepPoint, ...]

    @property
    def convex(self) -> bool:
        """Does the measured curve dip below DRAM-only (bathtub)?"""
        return any(point.total < -1e-3 for point in self.points)

    def optimal(self) -> SweepPoint:
        return min(self.points, key=lambda point: point.total)


def sweep_workload(workload: WorkloadSpec, tier: str = "cxl-a",
                   ratios: Sequence[float] = COARSE_RATIOS,
                   lab: Optional[Lab] = None) -> WorkloadSweep:
    """Measure slowdown components across interleaving ratios."""
    lab = lab or bandwidth_lab()
    # One vectorized, warm-started solve for the whole ratio grid; the
    # per-point accessors below are then pure memo hits.
    lab.sweep_runs(tier, workload, (1.0, *map(float, ratios)))
    dram = lab.dram_run(tier, workload)
    points: List[SweepPoint] = []
    for x in ratios:
        run = lab.interleaved_run(tier, workload, float(x))
        comp = component_slowdowns(dram, run)
        points.append(SweepPoint(
            dram_fraction=float(x),
            total=slowdown(dram, run),
            drd=comp["drd"],
            cache=comp["cache"],
            store=comp["store"],
            dram_latency_ns=run.dram_latency_ns,
            slow_latency_ns=(run.slow_latency_ns
                             if run.slow_latency_ns is not None
                             else run.dram_latency_ns),
            mlp=run.breakdown.mlp_effective,
        ))
    return WorkloadSweep(workload=workload.name, tier=tier,
                         points=tuple(points))


def fig9_interleaving_shapes(tier: str = "cxl-a",
                             lab: Optional[Lab] = None
                             ) -> List[WorkloadSweep]:
    """The paper's four Fig. 9 workloads: two convex (bandwidth-bound,
    649.fotonik3d and 654.roms at full thread count), two linear
    (wmt20, rangeQuery2d)."""
    lab = lab or bandwidth_lab()
    workloads = [
        get_workload("649.fotonik3d").with_threads(10),
        get_workload("654.roms").with_threads(10),
        get_workload("wmt20"),
        get_workload("rangeQuery2d"),
    ]
    return [sweep_workload(w, tier, lab=lab) for w in workloads]


# ---------------------------------------------------------------------------
# Figure 10: MLP invariance across ratios.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MlpInvarianceResult:
    workload: str
    threads: int
    tier: str
    mlp_by_ratio: Tuple[Tuple[float, float], ...]

    @property
    def max_relative_variation(self) -> float:
        values = np.array([mlp for _, mlp in self.mlp_by_ratio])
        return float((values.max() - values.min()) / values.mean())


def fig10_mlp_invariance(tier: str = "cxl-a",
                         thread_counts: Sequence[int] = (2, 8),
                         lab: Optional[Lab] = None
                         ) -> List[MlpInvarianceResult]:
    """603.bwaves: measured MLP across the ratio sweep, 2 vs 8 threads.

    The paper reports <=5% variation whether or not the workload is
    bandwidth-bound - the invariant enabling the synthesis model.
    """
    lab = lab or bandwidth_lab()
    results: List[MlpInvarianceResult] = []
    for threads in thread_counts:
        workload = get_workload("603.bwaves").with_threads(threads)
        sweep = sweep_workload(workload, tier, lab=lab)
        results.append(MlpInvarianceResult(
            workload=workload.name,
            threads=threads,
            tier=tier,
            mlp_by_ratio=tuple((p.dram_fraction, p.mlp)
                               for p in sweep.points),
        ))
    return results


# ---------------------------------------------------------------------------
# Figure 11: per-tier latency curves and the slowdown bathtub.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LatencyCurveResult:
    workload: str
    threads: int
    tier: str
    sweep: WorkloadSweep
    #: Quadratic-fit R^2 of the DRAM-tier latency over its load share
    #: (how well Eq. 8 approximates the substrate's behaviour).
    dram_quadratic_r2: float

    @property
    def bandwidth_bound(self) -> bool:
        return self.sweep.convex


def _quadratic_r2(shares: np.ndarray, latencies: np.ndarray) -> float:
    """R^2 of the Eq. 8 form anchored at the endpoints."""
    if latencies.size < 3:
        return 1.0
    idle = latencies[shares.argmin()]
    full = latencies[shares.argmax()]
    fitted = idle + (full - idle) * shares ** 2
    residual = float(np.sum((latencies - fitted) ** 2))
    total = float(np.sum((latencies - latencies.mean()) ** 2))
    if total <= 0:
        return 1.0
    return 1.0 - residual / total


def fig11_latency_curves(tier: str = "cxl-a",
                         thread_counts: Sequence[int] = (2, 8),
                         lab: Optional[Lab] = None
                         ) -> List[LatencyCurveResult]:
    """603.bwaves latency/slowdown vs ratio, 2 vs 8 threads."""
    lab = lab or bandwidth_lab()
    results: List[LatencyCurveResult] = []
    for threads in thread_counts:
        workload = get_workload("603.bwaves").with_threads(threads)
        sweep = sweep_workload(workload, tier, ratios=DEFAULT_RATIOS,
                               lab=lab)
        shares = np.array([p.dram_fraction for p in sweep.points])
        dram_lat = np.array([p.dram_latency_ns for p in sweep.points])
        results.append(LatencyCurveResult(
            workload=workload.name,
            threads=threads,
            tier=tier,
            sweep=sweep,
            dram_quadratic_r2=_quadratic_r2(shares, dram_lat),
        ))
    return results


# ---------------------------------------------------------------------------
# Figure 13: per-component prediction across the ratio sweep.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig13Point:
    dram_fraction: float
    predicted: Dict[str, float]
    actual: Dict[str, float]

    @property
    def predicted_total(self) -> float:
        return sum(self.predicted.values())

    @property
    def actual_total(self) -> float:
        return sum(self.actual.values())


@dataclass(frozen=True)
class Fig13Result:
    workload: str
    tier: str
    points: Tuple[Fig13Point, ...]

    def errors(self) -> np.ndarray:
        return np.array([abs(p.predicted_total - p.actual_total)
                         for p in self.points])


def build_model(workload: WorkloadSpec, tier: str,
                lab: Optional[Lab] = None) -> InterleavingModel:
    """Synthesize the section 5 model for a workload (Fig. 12 path)."""
    lab = lab or bandwidth_lab()
    calibration = lab.calibration(tier)
    dram_profile = lab.dram_run(tier, workload).profiled()
    from ..core.classify import classify
    if classify(dram_profile,
                calibration.idle_latency_dram_ns).is_bandwidth_bound:
        slow_profile = lab.slow_run(tier, workload).profiled()
        return synthesize(dram_profile, calibration, slow_profile)
    return synthesize(dram_profile, calibration)


def fig13_interleave_accuracy(tier: str = "cxl-a", threads: int = 10,
                              ratios: Sequence[float] = None,
                              lab: Optional[Lab] = None) -> Fig13Result:
    """10-thread 603.bwaves: predicted vs actual, per component, over
    the 99:1..1:99 sweep."""
    lab = lab or bandwidth_lab()
    if ratios is None:
        ratios = tuple(np.linspace(0.99, 0.01, 99))
    workload = get_workload("603.bwaves").with_threads(threads)
    model = build_model(workload, tier, lab)
    dram = lab.dram_run(tier, workload)

    lab.sweep_runs(tier, workload, tuple(map(float, ratios)))
    points: List[Fig13Point] = []
    for x in ratios:
        run = lab.interleaved_run(tier, workload, float(x))
        prediction = model.predict(float(x))
        points.append(Fig13Point(
            dram_fraction=float(x),
            predicted=dict(prediction.components),
            actual=component_slowdowns(dram, run),
        ))
    return Fig13Result(workload=workload.name, tier=tier,
                       points=tuple(points))


# ---------------------------------------------------------------------------
# Figure 14: model accuracy over the 20 bandwidth-bound workloads.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OptimumComparison:
    workload: str
    predicted_ratio: float
    actual_ratio: float
    #: Actual slowdown when running at each ratio.
    slowdown_at_predicted: float
    slowdown_at_actual: float

    @property
    def performance_gap(self) -> float:
        """How much worse the predicted ratio's real performance is
        than the oracle's (0 = identical, Fig. 14c's claim)."""
        oracle = 1.0 + self.slowdown_at_actual
        chosen = 1.0 + self.slowdown_at_predicted
        return chosen / oracle - 1.0


@dataclass(frozen=True)
class Fig14Result:
    tier: str
    #: Absolute slowdown errors pooled over workloads x ratios (a).
    errors: np.ndarray
    within_5pct: float
    #: Predicted vs actual optimal ratio per workload (b), and the
    #: realized performance comparison (c).
    optima: Tuple[OptimumComparison, ...]


def fig14_interleaving_model_accuracy(
        tier: str = "cxl-a",
        workloads: Optional[Sequence[WorkloadSpec]] = None,
        ratios: Sequence[float] = COARSE_RATIOS,
        lab: Optional[Lab] = None) -> Fig14Result:
    """Pooled interleaving-prediction errors and optimum comparison."""
    lab = lab or bandwidth_lab()
    if workloads is None:
        workloads = bandwidth_bound_twenty()

    pooled_errors: List[float] = []
    optima: List[OptimumComparison] = []
    for workload in workloads:
        model = build_model(workload, tier, lab)
        dram = lab.dram_run(tier, workload)
        lab.sweep_runs(tier, workload, tuple(map(float, ratios)))
        actual_by_ratio: Dict[float, float] = {}
        for x in ratios:
            run = lab.interleaved_run(tier, workload, float(x))
            actual = slowdown(dram, run)
            actual_by_ratio[float(x)] = actual
            pooled_errors.append(
                abs(model.predict(float(x)).total - actual))
        predicted_ratio, _ = model.optimal_ratio(ratios)
        actual_ratio = min(actual_by_ratio,
                           key=lambda x: actual_by_ratio[x])
        optima.append(OptimumComparison(
            workload=workload.name,
            predicted_ratio=predicted_ratio,
            actual_ratio=actual_ratio,
            slowdown_at_predicted=actual_by_ratio[
                min(actual_by_ratio,
                    key=lambda x: abs(x - predicted_ratio))],
            slowdown_at_actual=actual_by_ratio[actual_ratio],
        ))

    errors = np.asarray(pooled_errors)
    return Fig14Result(
        tier=tier,
        errors=errors,
        within_5pct=fraction_within(errors, 0.05),
        optima=tuple(optima),
    )
