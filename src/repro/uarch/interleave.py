"""Placement descriptions: which tiers back a workload's footprint.

A :class:`Placement` captures the OS-level decision the paper studies:
the fraction ``x`` of a workload's pages on local DRAM under weighted
interleaving (`MPOL_WEIGHTED_INTERLEAVE`), with the remainder on one slow
tier.  ``x = 1`` is DRAM-only, ``x = 0`` is entirely on the slow tier.

Under weighted interleaving the steady-state *request* split tracks the
footprint split very closely (paper 5.2 reports <2% absolute difference
for 99% of data points); :func:`request_share` reproduces that small
deviation deterministically so the substrate is not artificially exact.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .config import MemoryDeviceConfig, get_device

#: Maximum absolute deviation between footprint share and request share.
REQUEST_SHARE_JITTER = 0.015


@dataclass(frozen=True)
class Placement:
    """A memory placement for one workload.

    ``dram_fraction`` is the paper's ``x``.  ``device`` names the slow
    tier ("numa", "cxl-a", "cxl-b", "cxl-c") and may be ``None`` only
    for DRAM-only placements (``x == 1``).
    """

    dram_fraction: float = 1.0
    device: Optional[str] = None
    #: Hotness skew: 0 for uniform striping (weighted interleaving);
    #: positive when hot pages are concentrated on DRAM (hotness-based
    #: tiering), shifting the *request* share above the footprint share
    #: by ``bias * (1 - x)``.
    hotness_bias: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.dram_fraction <= 1.0:
            raise ValueError("dram_fraction must be within [0, 1]")
        if not 0.0 <= self.hotness_bias <= 1.0:
            raise ValueError("hotness_bias must be within [0, 1]")
        if self.device is None and self.dram_fraction < 1.0:
            raise ValueError(
                "placements with x < 1 must name a slow-tier device")
        if self.device is not None:
            get_device(self.device)  # validate eagerly

    @classmethod
    def dram_only(cls) -> "Placement":
        return cls(dram_fraction=1.0, device=None)

    @classmethod
    def slow_only(cls, device: str) -> "Placement":
        return cls(dram_fraction=0.0, device=device)

    @classmethod
    def interleaved(cls, dram_fraction: float, device: str) -> "Placement":
        return cls(dram_fraction=dram_fraction, device=device)

    @property
    def is_dram_only(self) -> bool:
        return self.dram_fraction >= 1.0

    @property
    def is_slow_only(self) -> bool:
        return self.dram_fraction <= 0.0

    def slow_device(self) -> Optional[MemoryDeviceConfig]:
        if self.device is None:
            return None
        return get_device(self.device)

    def describe(self) -> str:
        if self.is_dram_only:
            return "dram"
        pct = round(self.dram_fraction * 100)
        if not self.is_slow_only:
            # A mixed placement must never render as an endpoint:
            # x=0.996 rounding to "100:0" reads as DRAM-only and
            # x=0.004 to "0:100" as slow-only, both lies.
            pct = min(99, max(1, pct))
        return f"{pct}:{100 - pct} dram:{self.device}"


def request_share(placement: Placement, workload_name: str,
                  hotness_skew: float = 1.0) -> float:
    """Steady-state fraction of memory requests served by DRAM.

    Footprint share plus a deterministic sub-2% deviation derived from
    the workload name - reproducing the paper's observation that tier
    request share aligns with footprint share only approximately (hot
    pages are not perfectly uniformly striped).

    ``hotness_skew`` scales the placement's hotness bias: a
    hotness-guided policy only shifts request share above footprint
    share to the extent the workload's page popularity is skewed.
    """
    x = placement.dram_fraction
    if x <= 0.0 or x >= 1.0:
        return x
    digest = hashlib.sha256(
        f"req-share:{workload_name}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    deviation = (unit - 0.5) * 2.0 * REQUEST_SHARE_JITTER
    # Deviation shrinks toward the endpoints: a 99:1 split cannot be off
    # by more than the 1% minority share.
    deviation *= math.sin(math.pi * x)
    skew = placement.hotness_bias * hotness_skew * (1.0 - x)
    return min(1.0, max(0.0, x + skew + deviation))


def request_share_batch(placements: Sequence[Placement],
                        workload_names: Sequence[str],
                        hotness_skews: Sequence[float]) -> np.ndarray:
    """Per-element :func:`request_share` as a float64 lane array.

    The share is a per-problem constant (solved once, outside the
    fixed-point loop), so this delegates to the scalar function per
    element - trivially bit-identical to the looped path, hash and
    all - and only packages the result for the batched solver.
    """
    return np.asarray(
        [request_share(placement, name, skew)
         for placement, name, skew in zip(placements, workload_names,
                                          hotness_skews)],
        dtype=np.float64)
