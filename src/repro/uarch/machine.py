"""The simulated machine: platform + memory tiers + PMU, with a
closed-loop performance solver.

:class:`Machine` is the substrate's public facade and plays the role the
physical testbeds play in the paper: you hand it a workload and a
placement, it "executes" the workload and returns a :class:`RunResult`
with the cycle breakdown, achieved bandwidths/latencies, and the Table 5
PMU counter sample a perf wrapper would have collected.

The performance solve is a closed loop between the core and the memory
system: stall cycles depend on memory latency, memory latency depends on
per-tier utilization, and utilization depends on runtime (hence on stall
cycles).  ``Machine.run`` iterates this loop - damped - to a fixed
point, which is exactly the steady state a real machine settles into.
This is what produces the paper's two interleaving regimes without any
special-casing: low-traffic workloads keep idle latency at every ratio
(linear slowdown in ``1-x``), while bandwidth-bound workloads trade DRAM
queueing against CXL latency and develop the convex "bathtub" curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.counters import CounterSample, ProfiledRun
from ..obs.tracer import maybe_span
from ..workloads.spec import WorkloadSpec
from .caches import DemandProfile, demand_profile
from .config import (DEVICES, MemoryDeviceConfig, PlatformConfig,
                     get_device)
from .core import CycleBreakdown, LatencyContext, account_cycles
from .interleave import Placement, request_share
from .memory import (TierLoad, loaded_latency_ns, measure_idle_latency_ns,
                     rfo_latency_ns, updated_escalation,
                     utilization_for_bandwidth)
from .pmu import DEFAULT_NOISE, emit_counters
from .prefetcher import PrefetchProfile, prefetch_profile

#: Latency of near (uncore / memory-controller buffer) hits, tier
#: independent - the absorption mechanism behind the paper's Fig. 4d.
NEAR_BUFFER_LATENCY_NS = 45.0

#: Dirty demand lines written back per demand memory read.
DEMAND_WRITEBACK_RATIO = 0.10

_MAX_OUTER_ITERATIONS = 600
_OUTER_TOLERANCE = 1e-9
_OUTER_DAMPING = 0.35


@dataclass(frozen=True)
class RunResult:
    """Everything one simulated execution produced.

    ``counters`` is what a profiler sees; the remaining fields are
    ground truth that only the simulator (or the paper's authors with
    both DRAM and CXL runs) can observe.
    """

    workload: WorkloadSpec
    placement: Placement
    platform: PlatformConfig
    breakdown: CycleBreakdown
    demand: DemandProfile
    prefetch: PrefetchProfile
    counters: CounterSample
    #: Mean latencies the run experienced (ns).
    observed_read_ns: float
    tier_read_ns: float
    rfo_ns: float
    #: Loaded per-tier read latencies (ns); slow is None for DRAM-only.
    dram_latency_ns: float
    slow_latency_ns: Optional[float]
    #: Per-tier achieved traffic (GB/s) and utilization for this
    #: workload alone (excluding colocated external traffic).
    dram_gbps: float
    slow_gbps: float
    dram_utilization: float
    slow_utilization: float
    #: Wall-clock runtime (s).
    runtime_s: float
    #: Whether the outer closed loop converged.
    converged: bool

    @property
    def cycles(self) -> float:
        """Per-core execution cycles (the models' ``c``)."""
        return self.breakdown.cycles

    @property
    def ipc(self) -> float:
        per_core_instructions = self.workload.instructions / \
            self.workload.threads
        return per_core_instructions / self.cycles

    @property
    def total_gbps(self) -> float:
        return self.dram_gbps + self.slow_gbps

    def profiled(self, windows: Tuple[CounterSample, ...] = ()
                 ) -> ProfiledRun:
        """Repackage as the profiling record CAMP's models consume."""
        if self.placement.is_dram_only:
            tier = "dram"
        elif self.placement.is_slow_only:
            tier = self.placement.device or "slow"
        else:
            tier = self.placement.describe()
        return ProfiledRun(
            sample=self.counters,
            platform_family=self.platform.family,
            tier=tier,
            frequency_ghz=self.platform.frequency_ghz,
            duration_s=self.runtime_s,
            label=self.workload.name,
            windows=windows,
        )


def slowdown(baseline: RunResult, target: RunResult) -> float:
    """Ground-truth slowdown of ``target`` relative to ``baseline``.

    ``(c_target - c_baseline) / c_baseline``: 0 means identical runtime,
    0.5 means 50% more cycles, negative means the target configuration
    is *faster* (bandwidth-bound workloads under good interleaving).
    """
    return (target.cycles - baseline.cycles) / baseline.cycles


def component_slowdowns(baseline: RunResult,
                        target: RunResult) -> Dict[str, float]:
    """Melody-style attribution: per-component slowdown contributions.

    Requires both runs (this is the attribution CAMP replaces with
    prediction).  Components sum to the total slowdown up to measurement
    noise, since base cycles are latency-invariant.
    """
    c = baseline.cycles
    return {
        "drd": (target.breakdown.s_llc - baseline.breakdown.s_llc) / c,
        "cache": (target.breakdown.s_cache -
                  baseline.breakdown.s_cache) / c,
        "store": (target.breakdown.s_sb - baseline.breakdown.s_sb) / c,
    }


@dataclass
class _SolverState:
    """Mutable latency state threaded through the outer fixed point."""

    dram_latency_ns: float
    slow_latency_ns: float
    dram_rfo_ns: float
    slow_rfo_ns: float
    dram_escalation: float = 1.0
    slow_escalation: float = 1.0


class Machine:
    """A simulated server: one platform, its DRAM, and the slow tiers.

    Parameters
    ----------
    platform:
        A :class:`~repro.uarch.config.PlatformConfig` (e.g. ``SKX2S``).
    devices:
        Slow-tier devices reachable from this machine, keyed by name.
        Defaults to the paper's four evaluation tiers.
    noise:
        Relative PMU measurement noise (sigma); 0 disables it.
    seed:
        Varies the deterministic noise stream (distinct "runs").
    """

    def __init__(self, platform: PlatformConfig,
                 devices: Optional[Mapping[str, MemoryDeviceConfig]] = None,
                 noise: float = DEFAULT_NOISE, seed: int = 0):
        self.platform = platform
        self.devices: Dict[str, MemoryDeviceConfig] = dict(
            devices if devices is not None else DEVICES)
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.noise = noise
        self.seed = seed

    # -- probes -------------------------------------------------------------
    def device(self, name: str) -> MemoryDeviceConfig:
        """Resolve a tier name ("dram" or a slow-device name)."""
        if name == "dram":
            return self.platform.dram
        if name in self.devices:
            return self.devices[name]
        return get_device(name)

    def idle_latency_ns(self, tier: str) -> float:
        """Intel-MLC-style unloaded latency probe for a tier."""
        return measure_idle_latency_ns(self.device(tier))

    # -- execution -----------------------------------------------------------
    def run(self, workload: WorkloadSpec,
            placement: Optional[Placement] = None,
            external_traffic: Optional[Mapping[str, float]] = None
            ) -> RunResult:
        """Execute ``workload`` under ``placement`` and return the result.

        ``external_traffic`` maps tier names to GB/s of traffic from
        colocated workloads; it raises tier utilization (and therefore
        latency) without contributing to this workload's counters.
        """
        placement = placement or Placement.dram_only()
        # Trace-session instrumentation only: maybe_span reads no
        # clock (and costs nothing) unless `repro trace` is active, so
        # this module stays DET01-pure and results are identical
        # traced or untraced.
        with maybe_span("machine.run", workload=workload.name,
                        placement=placement.describe(),
                        platform=self.platform.name) as span:
            result = self._run(workload, placement, external_traffic)
            if span is not None:
                span.annotate(converged=result.converged)
            return result

    def _run(self, workload: WorkloadSpec,
             placement: Placement,
             external_traffic: Optional[Mapping[str, float]] = None
             ) -> RunResult:
        external = dict(external_traffic or {})

        dram_dev = self.platform.dram
        slow_dev = placement.slow_device()
        x_req = request_share(placement, workload.name,
                              workload.hotness_skew)

        demand = demand_profile(workload, self.platform)
        idle_dram = dram_dev.idle_latency_ns

        state = _SolverState(
            dram_latency_ns=idle_dram,
            slow_latency_ns=(slow_dev.idle_latency_ns if slow_dev else
                             idle_dram),
            dram_rfo_ns=idle_dram * dram_dev.rfo_latency_factor,
            slow_rfo_ns=((slow_dev.idle_latency_ns *
                          slow_dev.rfo_latency_factor) if slow_dev else
                         idle_dram),
        )

        breakdown: Optional[CycleBreakdown] = None
        prefetch: Optional[PrefetchProfile] = None
        dram_gbps = slow_gbps = 0.0
        converged = False

        for _ in range(_MAX_OUTER_ITERATIONS):
            tier_read = (x_req * state.dram_latency_ns +
                         (1.0 - x_req) * state.slow_latency_ns)
            observed = (workload.near_buffer_hit * NEAR_BUFFER_LATENCY_NS +
                        (1.0 - workload.near_buffer_hit) * tier_read)
            rfo = (x_req * state.dram_rfo_ns +
                   (1.0 - x_req) * state.slow_rfo_ns)

            prefetch = prefetch_profile(workload, demand, tier_read)
            latency_ctx = LatencyContext(
                observed_read_ns=observed,
                tier_read_ns=tier_read,
                rfo_ns=rfo,
                reference_idle_ns=idle_dram,
            )
            breakdown = account_cycles(workload, self.platform, demand,
                                       prefetch, latency_ctx)

            runtime_s = breakdown.cycles / (
                self.platform.frequency_ghz * 1e9)
            lines = (prefetch.demand_mem_reads + prefetch.pf_mem_reads +
                     demand.store_mem_rfos +
                     demand.store_mem_rfos +  # RFO read + writeback
                     DEMAND_WRITEBACK_RATIO * prefetch.demand_mem_reads)
            total_gbps = lines * 64.0 / runtime_s / 1e9

            dram_gbps = total_gbps * x_req
            slow_gbps = total_gbps * (1.0 - x_req)

            dram_offered = dram_gbps + external.get("dram", 0.0)
            dram_util = utilization_for_bandwidth(dram_dev, dram_offered)
            state.dram_escalation = updated_escalation(
                state.dram_escalation, dram_dev, dram_offered)
            new_dram = loaded_latency_ns(
                dram_dev, dram_util, 0.0) * state.dram_escalation
            new_dram_rfo = rfo_latency_ns(
                dram_dev, dram_util, 0.0) * state.dram_escalation
            if slow_dev is not None:
                slow_offered = slow_gbps + external.get(slow_dev.name, 0.0)
                slow_util = utilization_for_bandwidth(slow_dev,
                                                      slow_offered)
                state.slow_escalation = updated_escalation(
                    state.slow_escalation, slow_dev, slow_offered)
                new_slow = loaded_latency_ns(
                    slow_dev, slow_util,
                    workload.tail_sensitivity) * state.slow_escalation
                new_slow_rfo = rfo_latency_ns(
                    slow_dev, slow_util,
                    workload.tail_sensitivity) * state.slow_escalation
            else:
                new_slow, new_slow_rfo = state.slow_latency_ns, \
                    state.slow_rfo_ns

            delta = (abs(new_dram - state.dram_latency_ns) +
                     abs(new_slow - state.slow_latency_ns))
            scale = state.dram_latency_ns + state.slow_latency_ns
            state.dram_latency_ns += _OUTER_DAMPING * (
                new_dram - state.dram_latency_ns)
            state.slow_latency_ns += _OUTER_DAMPING * (
                new_slow - state.slow_latency_ns)
            state.dram_rfo_ns += _OUTER_DAMPING * (
                new_dram_rfo - state.dram_rfo_ns)
            state.slow_rfo_ns += _OUTER_DAMPING * (
                new_slow_rfo - state.slow_rfo_ns)
            if delta <= _OUTER_TOLERANCE * scale:
                converged = True
                break

        assert breakdown is not None and prefetch is not None

        tier_read = (x_req * state.dram_latency_ns +
                     (1.0 - x_req) * state.slow_latency_ns)
        observed = (workload.near_buffer_hit * NEAR_BUFFER_LATENCY_NS +
                    (1.0 - workload.near_buffer_hit) * tier_read)
        rfo = (x_req * state.dram_rfo_ns +
               (1.0 - x_req) * state.slow_rfo_ns)
        runtime_s = breakdown.cycles / (self.platform.frequency_ghz * 1e9)

        tier_label = placement.describe()
        counters = emit_counters(workload, self.platform, demand, prefetch,
                                 breakdown, tier_label, noise=self.noise,
                                 seed=self.seed)

        dram_util = utilization_for_bandwidth(
            dram_dev, dram_gbps + external.get("dram", 0.0))
        slow_util = 0.0
        slow_latency_ns: Optional[float] = None
        if slow_dev is not None:
            slow_util = utilization_for_bandwidth(
                slow_dev, slow_gbps + external.get(slow_dev.name, 0.0))
            slow_latency_ns = state.slow_latency_ns

        return RunResult(
            workload=workload,
            placement=placement,
            platform=self.platform,
            breakdown=breakdown,
            demand=demand,
            prefetch=prefetch,
            counters=counters,
            observed_read_ns=observed,
            tier_read_ns=tier_read,
            rfo_ns=rfo,
            dram_latency_ns=state.dram_latency_ns,
            slow_latency_ns=slow_latency_ns,
            dram_gbps=dram_gbps,
            slow_gbps=slow_gbps,
            dram_utilization=dram_util,
            slow_utilization=slow_util,
            runtime_s=runtime_s,
            converged=converged and breakdown.converged,
        )

    def profile(self, workload: WorkloadSpec,
                placement: Optional[Placement] = None) -> ProfiledRun:
        """Run and return only what a perf wrapper would capture."""
        return self.run(workload, placement).profiled()

    def profile_phased(self, phased, placement: Optional[Placement] = None
                       ) -> ProfiledRun:
        """Profile a phased workload window by window (Fig. 8 style).

        ``phased`` is a :class:`~repro.workloads.phases.PhasedWorkload`.
        Each phase executes under the same placement and contributes
        one per-window :class:`~repro.core.counters.CounterSample`; the
        aggregate sample is their counter-wise sum, exactly what a
        whole-run perf session would have recorded over the sampling
        windows.
        """
        windows = []
        results = []
        for window in phased.windows():
            result = self.run(window, placement)
            results.append(result)
            windows.append(result.counters)
        merged = windows[0]
        for sample in windows[1:]:
            merged = merged.merged(sample)
        reference = results[0].profiled()
        return ProfiledRun(
            sample=merged,
            platform_family=reference.platform_family,
            tier=reference.tier,
            frequency_ghz=reference.frequency_ghz,
            duration_s=sum(result.runtime_s for result in results),
            label=phased.name,
            windows=tuple(windows),
        )

    # -- colocation -----------------------------------------------------------
    def run_colocated(self, jobs: Sequence[Tuple[WorkloadSpec, Placement]],
                      max_iterations: int = 120,
                      tolerance: float = 1e-6) -> List[RunResult]:
        """Execute several workloads sharing this machine's memory.

        Solves the joint steady state: each workload's traffic raises
        tier utilization for everyone, which feeds back into everyone's
        latency and runtime.  Returns one :class:`RunResult` per job, in
        order; each result's counters reflect the interference.
        """
        if not jobs:
            return []
        traffic: List[Dict[str, float]] = [dict() for _ in jobs]
        results: List[RunResult] = []
        for _ in range(max_iterations):
            results = []
            new_traffic: List[Dict[str, float]] = []
            for index, (workload, placement) in enumerate(jobs):
                external: Dict[str, float] = {}
                for other_index, other in enumerate(traffic):
                    if other_index == index:
                        continue
                    for tier, gbps in other.items():
                        external[tier] = external.get(tier, 0.0) + gbps
                result = self.run(workload, placement,
                                  external_traffic=external)
                results.append(result)
                contribution: Dict[str, float] = {
                    "dram": result.dram_gbps}
                if placement.device is not None:
                    contribution[placement.device] = result.slow_gbps
                new_traffic.append(contribution)

            worst = 0.0
            for old, new in zip(traffic, new_traffic):
                tiers = set(old) | set(new)
                for tier in tiers:
                    prev = old.get(tier, 0.0)
                    curr = new.get(tier, 0.0)
                    worst = max(worst,
                                abs(curr - prev) / max(1.0, curr, prev))
            damped: List[Dict[str, float]] = []
            for old, new in zip(traffic, new_traffic):
                tiers = set(old) | set(new)
                damped.append({
                    tier: old.get(tier, 0.0) + _OUTER_DAMPING * (
                        new.get(tier, 0.0) - old.get(tier, 0.0))
                    for tier in tiers
                })
            traffic = damped
            if worst <= tolerance:
                break
        return results
