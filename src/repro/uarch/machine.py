"""The simulated machine: platform + memory tiers + PMU, with a
closed-loop performance solver.

:class:`Machine` is the substrate's public facade and plays the role the
physical testbeds play in the paper: you hand it a workload and a
placement, it "executes" the workload and returns a :class:`RunResult`
with the cycle breakdown, achieved bandwidths/latencies, and the Table 5
PMU counter sample a perf wrapper would have collected.

The performance solve is a closed loop between the core and the memory
system: stall cycles depend on memory latency, memory latency depends on
per-tier utilization, and utilization depends on runtime (hence on stall
cycles).  ``Machine.run`` iterates this loop - damped - to a fixed
point, which is exactly the steady state a real machine settles into.
This is what produces the paper's two interleaving regimes without any
special-casing: low-traffic workloads keep idle latency at every ratio
(linear slowdown in ``1-x``), while bandwidth-bound workloads trade DRAM
queueing against CXL latency and develop the convex "bathtub" curve.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.counters import CounterSample, ProfiledRun
from ..obs.tracer import maybe_span
from ..workloads.spec import WorkloadSpec
from . import fastpath
from . import memory as memory_mod
from .caches import DemandProfile, demand_profile
from .config import (DEVICES, MemoryDeviceConfig, PlatformConfig,
                     get_device)
from .core import (BatchCoreParams, BatchCycleBreakdown, BatchLatencyContext,
                   CycleBreakdown, LatencyContext,
                   _RELATIVE_TOLERANCE as _INNER_TOLERANCE, account_cycles,
                   account_cycles_batch)
from .interleave import Placement, request_share, request_share_batch
from .memory import (MAX_ESCALATION, DeviceLanes, TierLoad,
                     loaded_latency_ns, loaded_latency_ns_batch,
                     measure_idle_latency_ns, rfo_latency_ns,
                     rfo_latency_ns_batch, updated_escalation,
                     updated_escalation_batch, utilization_for_bandwidth,
                     utilization_for_bandwidth_batch)
from .pmu import DEFAULT_NOISE, emit_counters
from .prefetcher import (BatchPrefetchFlow, PrefetchProfile,
                         prefetch_profile, prefetch_profile_batch)

#: Latency of near (uncore / memory-controller buffer) hits, tier
#: independent - the absorption mechanism behind the paper's Fig. 4d.
NEAR_BUFFER_LATENCY_NS = 45.0

#: Dirty demand lines written back per demand memory read.
DEMAND_WRITEBACK_RATIO = 0.10

_MAX_OUTER_ITERATIONS = 600
_OUTER_TOLERANCE = 1e-9
_OUTER_DAMPING = 0.35

#: Documented relative tolerance of *accelerated* (Anderson/warm-started)
#: solves against the plain damped fixed point (docs/SOLVER.md).  The
#: damped loop stops when its step is below `_OUTER_TOLERANCE`
#: relatively, which leaves the iterate a bounded multiple of that step
#: away from the true fixed point; an accelerated solve lands on the
#: same fixed point along a different trajectory, so the two agree to
#: this tolerance, not bit-for-bit.  Replay mode (the default) *is*
#: bit-for-bit.
ACCELERATED_RELATIVE_TOLERANCE = 1e-7


@dataclass(frozen=True)
class RunResult:
    """Everything one simulated execution produced.

    ``counters`` is what a profiler sees; the remaining fields are
    ground truth that only the simulator (or the paper's authors with
    both DRAM and CXL runs) can observe.
    """

    workload: WorkloadSpec
    placement: Placement
    platform: PlatformConfig
    breakdown: CycleBreakdown
    demand: DemandProfile
    prefetch: PrefetchProfile
    counters: CounterSample
    #: Mean latencies the run experienced (ns).
    observed_read_ns: float
    tier_read_ns: float
    rfo_ns: float
    #: Loaded per-tier read latencies (ns); slow is None for DRAM-only.
    dram_latency_ns: float
    slow_latency_ns: Optional[float]
    #: Per-tier achieved traffic (GB/s) and utilization for this
    #: workload alone (excluding colocated external traffic).
    dram_gbps: float
    slow_gbps: float
    dram_utilization: float
    slow_utilization: float
    #: Wall-clock runtime (s).
    runtime_s: float
    #: Whether the outer closed loop converged.
    converged: bool

    @property
    def cycles(self) -> float:
        """Per-core execution cycles (the models' ``c``)."""
        return self.breakdown.cycles

    @property
    def ipc(self) -> float:
        per_core_instructions = self.workload.instructions / \
            self.workload.threads
        return per_core_instructions / self.cycles

    @property
    def total_gbps(self) -> float:
        return self.dram_gbps + self.slow_gbps

    def profiled(self, windows: Tuple[CounterSample, ...] = ()
                 ) -> ProfiledRun:
        """Repackage as the profiling record CAMP's models consume."""
        if self.placement.is_dram_only:
            tier = "dram"
        elif self.placement.is_slow_only:
            tier = self.placement.device or "slow"
        else:
            tier = self.placement.describe()
        return ProfiledRun(
            sample=self.counters,
            platform_family=self.platform.family,
            tier=tier,
            frequency_ghz=self.platform.frequency_ghz,
            duration_s=self.runtime_s,
            label=self.workload.name,
            windows=windows,
        )


def slowdown(baseline: RunResult, target: RunResult) -> float:
    """Ground-truth slowdown of ``target`` relative to ``baseline``.

    ``(c_target - c_baseline) / c_baseline``: 0 means identical runtime,
    0.5 means 50% more cycles, negative means the target configuration
    is *faster* (bandwidth-bound workloads under good interleaving).
    """
    return (target.cycles - baseline.cycles) / baseline.cycles


def component_slowdowns(baseline: RunResult,
                        target: RunResult) -> Dict[str, float]:
    """Melody-style attribution: per-component slowdown contributions.

    Requires both runs (this is the attribution CAMP replaces with
    prediction).  Components sum to the total slowdown up to measurement
    noise, since base cycles are latency-invariant.
    """
    c = baseline.cycles
    return {
        "drd": (target.breakdown.s_llc - baseline.breakdown.s_llc) / c,
        "cache": (target.breakdown.s_cache -
                  baseline.breakdown.s_cache) / c,
        "store": (target.breakdown.s_sb - baseline.breakdown.s_sb) / c,
    }


@dataclass
class _SolverState:
    """Mutable latency state threaded through the outer fixed point."""

    dram_latency_ns: float
    slow_latency_ns: float
    dram_rfo_ns: float
    slow_rfo_ns: float
    dram_escalation: float = 1.0
    slow_escalation: float = 1.0


#: One solver state as a plain 6-tuple: (dram latency, slow latency,
#: dram RFO, slow RFO, dram escalation, slow escalation) - the vector
#: the batched solver iterates and the warm-start cache stores.
StateVector = Tuple[float, float, float, float, float, float]


@dataclass
class _WarmEntry:
    x_req: float
    state: StateVector
    #: Monotonic last-use stamp (seeded from or refreshed) for LRU.
    tick: int = 0


#: Default cap on fixed points a :class:`WarmStartCache` retains.  A
#: point is a 6-double state vector plus a key reference, so the cap
#: bounds a long-lived ``repro serve`` process at roughly a megabyte
#: while keeping any single sweep or colocation working set (hundreds
#: of points) fully resident.
DEFAULT_WARM_CAPACITY = 4096


class WarmStartCache:
    """Seeds accelerated solves from nearby converged fixed points.

    Keyed by everything that pins the fixed point *except* the swept
    quantities - the DRAM request share and external traffic: the
    workload spec, the slow-tier name and hotness bias, the platform,
    and the noise/seed identity.  Along a ratio sweep the nearest
    recorded share is one grid step away, so a seeded solve converges
    in a handful of iterations instead of hundreds; across colocation
    iterations the share is constant and the previous joint iterate is
    the seed.

    Growth is bounded: at most ``capacity`` fixed points are retained
    (default :data:`DEFAULT_WARM_CAPACITY`); once full, recording a new
    point evicts the least recently *used* one - used meaning seeded
    from or refreshed - and increments ``evictions``.

    Only consulted in ``accelerate=True`` mode: a warm seed changes the
    solver trajectory, and replay mode must stay bit-identical to
    ``Machine.run`` (docs/SOLVER.md).
    """

    def __init__(self, capacity: int = DEFAULT_WARM_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._entries: Dict[tuple, List[_WarmEntry]] = {}
        self._tick = 0
        #: How many solves were seeded from the cache.
        self.seeds_served = 0
        #: How many distinct fixed points are currently recorded.
        self.points_recorded = 0
        #: How many fixed points were evicted to stay under capacity.
        self.evictions = 0

    def _touch(self, entry: _WarmEntry) -> None:
        self._tick += 1
        entry.tick = self._tick

    @staticmethod
    def _key(workload: WorkloadSpec, placement: Placement,
             platform_name: str, noise: float, seed: int) -> tuple:
        return (workload, placement.device, placement.hotness_bias,
                platform_name, noise, seed)

    def seed(self, workload: WorkloadSpec, placement: Placement,
             platform_name: str, noise: float, seed: int,
             x_req: float) -> Optional[StateVector]:
        """Nearest recorded fixed point by DRAM request share, if any."""
        entries = self._entries.get(
            self._key(workload, placement, platform_name, noise, seed))
        if not entries:
            return None
        best = min(entries, key=lambda entry: abs(entry.x_req - x_req))
        self._touch(best)
        self.seeds_served += 1
        return best.state

    def record(self, workload: WorkloadSpec, placement: Placement,
               platform_name: str, noise: float, seed: int,
               x_req: float, state: StateVector) -> None:
        """Record a converged fixed point (replacing a same-share entry)."""
        self._store(self._key(workload, placement, platform_name, noise,
                              seed), x_req, state)

    def _store(self, key: tuple, x_req: float,
               state: StateVector) -> None:
        entries = self._entries.setdefault(key, [])
        for entry in entries:
            if abs(entry.x_req - x_req) <= 1e-12:
                entry.state = state
                self._touch(entry)
                return
        entry = _WarmEntry(x_req=x_req, state=state)
        self._touch(entry)
        entries.append(entry)
        self.points_recorded += 1
        while self.points_recorded > self.capacity:
            self._evict_one()

    def _evict_one(self) -> None:
        victim_key, victim = min(
            ((key, entry) for key, entries in self._entries.items()
             for entry in entries),
            key=lambda pair: pair[1].tick)
        remaining = [entry for entry in self._entries[victim_key]
                     if entry is not victim]
        if remaining:
            self._entries[victim_key] = remaining
        else:
            del self._entries[victim_key]
        self.points_recorded -= 1
        self.evictions += 1

    def export_points(self) -> List[Tuple[tuple, float, StateVector]]:
        """Every retained ``(key, x_req, state)`` point, LRU-first.

        The persistence layer (``repro.runtime.warmstore``) serializes
        these; re-importing in this order reproduces the eviction
        order, so a snapshot round-trip preserves LRU behavior.
        """
        stamped = [(key, entry.x_req, entry.state, entry.tick)
                   for key, entries in self._entries.items()
                   for entry in entries]
        stamped.sort(key=lambda item: item[3])
        return [(key, x_req, state) for key, x_req, state, _ in stamped]

    def import_points(self, points) -> int:
        """Bulk-load exported points (e.g. from the persistent store)."""
        loaded = 0
        for key, x_req, state in points:
            self._store(tuple(key), float(x_req),
                        tuple(float(value) for value in state))
            loaded += 1
        return loaded


def _take_lanes(struct, index: np.ndarray):
    """Subset a struct-of-arrays dataclass along the lane axis."""
    return type(struct)(**{
        f.name: getattr(struct, f.name)[index]
        for f in dataclasses.fields(struct)})


def _merge_lanes(new, old, mask: np.ndarray):
    """Lane-wise ``np.where(mask, new, old)`` over a struct-of-arrays."""
    if old is None:
        return new
    return type(new)(**{
        f.name: np.where(mask, getattr(new, f.name), getattr(old, f.name))
        for f in dataclasses.fields(new)})


@dataclass
class _BatchProblem:
    """N (workload, placement) problems packed as lane arrays.

    Each lane additionally carries its own machine identity
    (``platforms``/``noises``/``seeds``): one packed batch may mix
    SKX/SPR/EMR lanes at different noise levels, which is what lets a
    whole suite population solve as a single masked batch
    (:meth:`Machine.run_batch_multi`).
    """

    workloads: List[WorkloadSpec]
    placements: List[Placement]
    demands: List[DemandProfile]
    slow_devices: List[Optional[MemoryDeviceConfig]]
    platforms: List[PlatformConfig]
    noises: List[float]
    seeds: List[int]
    params: BatchCoreParams
    dram_lanes: DeviceLanes
    slow_lanes: DeviceLanes
    has_slow: np.ndarray
    x_req: np.ndarray
    near_buffer_hit: np.ndarray
    tail_sensitivity: np.ndarray
    pf_l1_share: np.ndarray
    pf_lookahead_ns: np.ndarray
    mem_reads_potential: np.ndarray
    dram_external_gbps: np.ndarray
    slow_external_gbps: np.ndarray
    reference_idle_ns: np.ndarray
    zeros: np.ndarray

    @property
    def size(self) -> int:
        return len(self.workloads)

    def subset(self, index: np.ndarray) -> "_BatchProblem":
        def pick(items):
            return [items[i] for i in index]

        return _BatchProblem(
            workloads=pick(self.workloads),
            placements=pick(self.placements),
            demands=pick(self.demands),
            slow_devices=pick(self.slow_devices),
            platforms=pick(self.platforms),
            noises=pick(self.noises),
            seeds=pick(self.seeds),
            params=_take_lanes(self.params, index),
            dram_lanes=_take_lanes(self.dram_lanes, index),
            slow_lanes=_take_lanes(self.slow_lanes, index),
            has_slow=self.has_slow[index],
            x_req=self.x_req[index],
            near_buffer_hit=self.near_buffer_hit[index],
            tail_sensitivity=self.tail_sensitivity[index],
            pf_l1_share=self.pf_l1_share[index],
            pf_lookahead_ns=self.pf_lookahead_ns[index],
            mem_reads_potential=self.mem_reads_potential[index],
            dram_external_gbps=self.dram_external_gbps[index],
            slow_external_gbps=self.slow_external_gbps[index],
            reference_idle_ns=self.reference_idle_ns[index],
            zeros=self.zeros[index],
        )


@dataclass
class _BatchSolution:
    """Final solver state + per-iteration observables for N problems."""

    dram_latency_ns: np.ndarray
    slow_latency_ns: np.ndarray
    dram_rfo_ns: np.ndarray
    slow_rfo_ns: np.ndarray
    dram_escalation: np.ndarray
    slow_escalation: np.ndarray
    flow: BatchPrefetchFlow
    breakdown: BatchCycleBreakdown
    dram_gbps: np.ndarray
    slow_gbps: np.ndarray
    converged: np.ndarray
    iterations: np.ndarray

    def splice(self, other: "_BatchSolution", index: np.ndarray) -> None:
        """Overwrite the lanes at ``index`` with ``other``'s lanes."""
        for name in ("dram_latency_ns", "slow_latency_ns", "dram_rfo_ns",
                     "slow_rfo_ns", "dram_escalation", "slow_escalation",
                     "dram_gbps", "slow_gbps", "converged"):
            getattr(self, name)[index] = getattr(other, name)
        self.iterations[index] += other.iterations
        for struct_name in ("flow", "breakdown"):
            ours, theirs = getattr(self, struct_name), getattr(
                other, struct_name)
            for f in dataclasses.fields(ours):
                getattr(ours, f.name)[index] = getattr(theirs, f.name)


class Machine:
    """A simulated server: one platform, its DRAM, and the slow tiers.

    Parameters
    ----------
    platform:
        A :class:`~repro.uarch.config.PlatformConfig` (e.g. ``SKX2S``).
    devices:
        Slow-tier devices reachable from this machine, keyed by name.
        Defaults to the paper's four evaluation tiers.
    noise:
        Relative PMU measurement noise (sigma); 0 disables it.
    seed:
        Varies the deterministic noise stream (distinct "runs").
    """

    def __init__(self, platform: PlatformConfig,
                 devices: Optional[Mapping[str, MemoryDeviceConfig]] = None,
                 noise: float = DEFAULT_NOISE, seed: int = 0):
        self.platform = platform
        self.devices: Dict[str, MemoryDeviceConfig] = dict(
            devices if devices is not None else DEVICES)
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.noise = noise
        self.seed = seed

    # -- probes -------------------------------------------------------------
    def device(self, name: str) -> MemoryDeviceConfig:
        """Resolve a tier name ("dram" or a slow-device name)."""
        if name == "dram":
            return self.platform.dram
        if name in self.devices:
            return self.devices[name]
        return get_device(name)

    def idle_latency_ns(self, tier: str) -> float:
        """Intel-MLC-style unloaded latency probe for a tier."""
        return measure_idle_latency_ns(self.device(tier))

    # -- execution -----------------------------------------------------------
    def run(self, workload: WorkloadSpec,
            placement: Optional[Placement] = None,
            external_traffic: Optional[Mapping[str, float]] = None
            ) -> RunResult:
        """Execute ``workload`` under ``placement`` and return the result.

        ``external_traffic`` maps tier names to GB/s of traffic from
        colocated workloads; it raises tier utilization (and therefore
        latency) without contributing to this workload's counters.
        """
        placement = placement or Placement.dram_only()
        # Trace-session instrumentation only: maybe_span reads no
        # clock (and costs nothing) unless `repro trace` is active, so
        # this module stays DET01-pure and results are identical
        # traced or untraced.
        with maybe_span("machine.run", workload=workload.name,
                        placement=placement.describe(),
                        platform=self.platform.name) as span:
            result = self._run(workload, placement, external_traffic)
            if span is not None:
                span.annotate(converged=result.converged)
            return result

    def _run(self, workload: WorkloadSpec,
             placement: Placement,
             external_traffic: Optional[Mapping[str, float]] = None
             ) -> RunResult:
        external = dict(external_traffic or {})

        dram_dev = self.platform.dram
        slow_dev = placement.slow_device()
        x_req = request_share(placement, workload.name,
                              workload.hotness_skew)

        demand = demand_profile(workload, self.platform)
        idle_dram = dram_dev.idle_latency_ns

        state = _SolverState(
            dram_latency_ns=idle_dram,
            slow_latency_ns=(slow_dev.idle_latency_ns if slow_dev else
                             idle_dram),
            dram_rfo_ns=idle_dram * dram_dev.rfo_latency_factor,
            slow_rfo_ns=((slow_dev.idle_latency_ns *
                          slow_dev.rfo_latency_factor) if slow_dev else
                         idle_dram),
        )

        breakdown: Optional[CycleBreakdown] = None
        prefetch: Optional[PrefetchProfile] = None
        dram_gbps = slow_gbps = 0.0
        converged = False

        for _ in range(_MAX_OUTER_ITERATIONS):
            tier_read = (x_req * state.dram_latency_ns +
                         (1.0 - x_req) * state.slow_latency_ns)
            observed = (workload.near_buffer_hit * NEAR_BUFFER_LATENCY_NS +
                        (1.0 - workload.near_buffer_hit) * tier_read)
            rfo = (x_req * state.dram_rfo_ns +
                   (1.0 - x_req) * state.slow_rfo_ns)

            prefetch = prefetch_profile(workload, demand, tier_read)
            latency_ctx = LatencyContext(
                observed_read_ns=observed,
                tier_read_ns=tier_read,
                rfo_ns=rfo,
                reference_idle_ns=idle_dram,
            )
            breakdown = account_cycles(workload, self.platform, demand,
                                       prefetch, latency_ctx)

            runtime_s = breakdown.cycles / (
                self.platform.frequency_ghz * 1e9)
            lines = (prefetch.demand_mem_reads + prefetch.pf_mem_reads +
                     demand.store_mem_rfos +
                     demand.store_mem_rfos +  # RFO read + writeback
                     DEMAND_WRITEBACK_RATIO * prefetch.demand_mem_reads)
            total_gbps = lines * 64.0 / runtime_s / 1e9

            dram_gbps = total_gbps * x_req
            slow_gbps = total_gbps * (1.0 - x_req)

            dram_offered = dram_gbps + external.get("dram", 0.0)
            dram_util = utilization_for_bandwidth(dram_dev, dram_offered)
            state.dram_escalation = updated_escalation(
                state.dram_escalation, dram_dev, dram_offered)
            new_dram = loaded_latency_ns(
                dram_dev, dram_util, 0.0) * state.dram_escalation
            new_dram_rfo = rfo_latency_ns(
                dram_dev, dram_util, 0.0) * state.dram_escalation
            if slow_dev is not None:
                slow_offered = slow_gbps + external.get(slow_dev.name, 0.0)
                slow_util = utilization_for_bandwidth(slow_dev,
                                                      slow_offered)
                state.slow_escalation = updated_escalation(
                    state.slow_escalation, slow_dev, slow_offered)
                new_slow = loaded_latency_ns(
                    slow_dev, slow_util,
                    workload.tail_sensitivity) * state.slow_escalation
                new_slow_rfo = rfo_latency_ns(
                    slow_dev, slow_util,
                    workload.tail_sensitivity) * state.slow_escalation
            else:
                new_slow, new_slow_rfo = state.slow_latency_ns, \
                    state.slow_rfo_ns

            delta = (abs(new_dram - state.dram_latency_ns) +
                     abs(new_slow - state.slow_latency_ns))
            scale = state.dram_latency_ns + state.slow_latency_ns
            state.dram_latency_ns += _OUTER_DAMPING * (
                new_dram - state.dram_latency_ns)
            state.slow_latency_ns += _OUTER_DAMPING * (
                new_slow - state.slow_latency_ns)
            state.dram_rfo_ns += _OUTER_DAMPING * (
                new_dram_rfo - state.dram_rfo_ns)
            state.slow_rfo_ns += _OUTER_DAMPING * (
                new_slow_rfo - state.slow_rfo_ns)
            if delta <= _OUTER_TOLERANCE * scale:
                converged = True
                break

        assert breakdown is not None and prefetch is not None

        tier_read = (x_req * state.dram_latency_ns +
                     (1.0 - x_req) * state.slow_latency_ns)
        observed = (workload.near_buffer_hit * NEAR_BUFFER_LATENCY_NS +
                    (1.0 - workload.near_buffer_hit) * tier_read)
        rfo = (x_req * state.dram_rfo_ns +
               (1.0 - x_req) * state.slow_rfo_ns)
        runtime_s = breakdown.cycles / (self.platform.frequency_ghz * 1e9)

        tier_label = placement.describe()
        counters = emit_counters(workload, self.platform, demand, prefetch,
                                 breakdown, tier_label, noise=self.noise,
                                 seed=self.seed)

        dram_util = utilization_for_bandwidth(
            dram_dev, dram_gbps + external.get("dram", 0.0))
        slow_util = 0.0
        slow_latency_ns: Optional[float] = None
        if slow_dev is not None:
            slow_util = utilization_for_bandwidth(
                slow_dev, slow_gbps + external.get(slow_dev.name, 0.0))
            slow_latency_ns = state.slow_latency_ns

        return RunResult(
            workload=workload,
            placement=placement,
            platform=self.platform,
            breakdown=breakdown,
            demand=demand,
            prefetch=prefetch,
            counters=counters,
            observed_read_ns=observed,
            tier_read_ns=tier_read,
            rfo_ns=rfo,
            dram_latency_ns=state.dram_latency_ns,
            slow_latency_ns=slow_latency_ns,
            dram_gbps=dram_gbps,
            slow_gbps=slow_gbps,
            dram_utilization=dram_util,
            slow_utilization=slow_util,
            runtime_s=runtime_s,
            converged=converged and breakdown.converged,
        )

    # -- batched execution ---------------------------------------------------
    def run_batch(self, pairs: Sequence[Tuple[WorkloadSpec,
                                              Optional[Placement]]],
                  external_traffic: Optional[Sequence[
                      Optional[Mapping[str, float]]]] = None,
                  *, accelerate: bool = False,
                  warm_cache: Optional[WarmStartCache] = None,
                  stats: Optional[Dict[str, object]] = None,
                  float32: bool = False
                  ) -> List[RunResult]:
        """Execute N (workload, placement) problems in one vectorized solve.

        In the default *replay* mode the batched solver performs the
        same arithmetic in the same order as looped :meth:`run`, so the
        returned :class:`RunResult`\\ s are bit-identical to N scalar
        calls.  With ``accelerate=True`` the outer fixed point uses
        Anderson (secant) acceleration - optionally seeded from
        ``warm_cache`` - converging in far fewer iterations to the same
        fixed point within :data:`ACCELERATED_RELATIVE_TOLERANCE`
        (docs/SOLVER.md has the full tolerance contract).

        ``float32=True`` (requires ``accelerate=True``) runs a single-
        precision pre-pass to loose tolerances and then polishes every
        lane in float64, so the returned observables are float64 and
        the :data:`ACCELERATED_RELATIVE_TOLERANCE` contract still
        holds (see ``uarch/fastpath.py``).

        ``external_traffic`` optionally gives one per-problem mapping of
        tier name to colocated GB/s, aligned with ``pairs``.  ``stats``
        (if given) receives solver telemetry: problem count, mode,
        outer-iteration totals, warm seeds used, float32 pre-pass
        iterations, and how many lanes did not converge.
        """
        pairs = list(pairs)
        if warm_cache is not None and not accelerate:
            raise ValueError(
                "warm_cache requires accelerate=True: replay mode must "
                "stay bit-identical to Machine.run")
        if float32 and not accelerate:
            raise ValueError(
                "float32 requires accelerate=True: replay mode must "
                "stay bit-identical to Machine.run")
        with maybe_span("machine.run_batch", problems=len(pairs),
                        platform=self.platform.name,
                        accelerated=accelerate) as span:
            results, solve_stats = self._run_batch(
                pairs, external_traffic, accelerate, warm_cache,
                float32=float32)
            if span is not None:
                span.annotate(**solve_stats)
            if stats is not None:
                stats.update(solve_stats)
            return results

    def _run_batch(self, pairs, external_traffic, accelerate, warm_cache,
                   float32=False, platforms=None, noises=None, seeds=None):
        if not pairs:
            return [], {"problems": 0, "mode": "empty",
                        "outer_iterations": 0, "nonconverged": 0,
                        "warm_seeded": 0, "replay_resolves": 0,
                        "f32_iterations": 0}
        externals: List[Optional[Mapping[str, float]]]
        if external_traffic is None:
            externals = [None] * len(pairs)
        else:
            externals = list(external_traffic)
            if len(externals) != len(pairs):
                raise ValueError(
                    "external_traffic must align with pairs "
                    f"({len(externals)} != {len(pairs)})")

        if memory_mod._LATENCY_FAULT_HOOK is not None:
            # Fault hooks are stateful per-call scalar functions; the
            # vectorized kernels cannot thread them.  Fall back to the
            # looped scalar path so chaos runs see identical behavior.
            if platforms is None:
                machines: List["Machine"] = [self] * len(pairs)
            else:
                machines = [
                    type(self)(platform, noise=noise, seed=lane_seed)
                    for platform, noise, lane_seed in zip(
                        platforms, noises, seeds)]
            results = [
                machine._run(workload,
                             placement or Placement.dram_only(), external)
                for machine, ((workload, placement), external) in zip(
                    machines, zip(pairs, externals))]
            return results, {
                "problems": len(pairs), "mode": "scalar-fallback",
                "outer_iterations": 0,
                "nonconverged": sum(1 for r in results if not r.converged),
                "warm_seeded": 0, "replay_resolves": 0,
                "f32_iterations": 0}

        problem = self._pack_batch(pairs, externals, platforms=platforms,
                                   noises=noises, seeds=seeds)
        state = self._initial_state(problem)
        warm_seeded = 0
        if accelerate and warm_cache is not None:
            warm_seeded = self._apply_warm_seeds(problem, state, warm_cache)

        f32_iterations = 0
        if float32:
            # Single-precision pre-pass: solve the whole batch to the
            # loose fastpath tolerances in float32, then seed the
            # float64 solve below from its final state.  The f64 pass
            # re-derives every observable, so precision of the result
            # is unchanged; lanes the pre-pass placed near the fixed
            # point converge in a handful of double-precision steps.
            pre = self._solve_batch(
                fastpath.problem_to_float32(problem),
                fastpath.state_to_float32(state),
                accelerate=True,
                outer_tolerance=fastpath.FASTPATH_OUTER_TOLERANCE,
                inner_tolerance=fastpath.FASTPATH_INNER_TOLERANCE)
            f32_iterations = int(pre.iterations.sum())
            state = fastpath.seed_state_from_solution(pre)

        solution = self._solve_batch(problem, state, accelerate)
        replay_resolves = 0
        if accelerate and not bool(solution.converged.all()):
            # Safe fallback: lanes the accelerated loop could not settle
            # re-run under plain damping, reproducing exactly the
            # (path-dependent) iterate the scalar solver returns.
            index = np.flatnonzero(~solution.converged)
            replay_resolves = int(index.size)
            sub = self._solve_batch(
                problem.subset(index),
                self._initial_state(problem.subset(index)),
                accelerate=False)
            solution.splice(sub, index)

        if accelerate and warm_cache is not None:
            self._record_warm_points(problem, solution, warm_cache)

        results = self._materialize(problem, solution)
        solve_stats = {
            "problems": problem.size,
            "mode": ("accelerated-f32" if float32 else
                     "accelerated" if accelerate else "replay"),
            "outer_iterations": int(solution.iterations.sum()),
            "nonconverged": sum(1 for r in results if not r.converged),
            "warm_seeded": warm_seeded,
            "replay_resolves": replay_resolves,
            "f32_iterations": f32_iterations,
        }
        return results, solve_stats

    @classmethod
    def run_batch_multi(cls, specs: Sequence, *, accelerate: bool = False,
                        warm_cache: Optional[WarmStartCache] = None,
                        stats: Optional[Dict[str, object]] = None,
                        float32: bool = False) -> List[RunResult]:
        """Solve specs spanning *different machines* as one masked batch.

        ``specs`` is any sequence of objects exposing ``workload``,
        ``placement``, ``platform`` (a
        :class:`~repro.uarch.config.PlatformConfig`), ``noise`` and
        ``seed`` - e.g. :class:`repro.runtime.spec.RunSpec`.  Every
        lane carries its own machine parameters, so a whole suite
        population (workloads x placements x SKX/SPR/EMR x seeds)
        solves as one masked batch instead of per-machine groups.

        In the default *replay* mode the result list is bit-identical
        to looping ``Machine(spec.platform, noise=spec.noise,
        seed=spec.seed).run(spec.workload, spec.placement)`` over the
        specs.  ``accelerate``/``warm_cache``/``float32`` behave as in
        :meth:`run_batch`.
        """
        specs = list(specs)
        if warm_cache is not None and not accelerate:
            raise ValueError(
                "warm_cache requires accelerate=True: replay mode must "
                "stay bit-identical to Machine.run")
        if float32 and not accelerate:
            raise ValueError(
                "float32 requires accelerate=True: replay mode must "
                "stay bit-identical to Machine.run")
        if not specs:
            if stats is not None:
                stats.update(problems=0, mode="empty",
                             outer_iterations=0, nonconverged=0,
                             warm_seeded=0, replay_resolves=0,
                             f32_iterations=0)
            return []
        host = cls(specs[0].platform, noise=specs[0].noise,
                   seed=specs[0].seed)
        pairs = [(spec.workload, spec.placement) for spec in specs]
        with maybe_span("machine.run_batch_multi", problems=len(specs),
                        accelerated=accelerate) as span:
            results, solve_stats = host._run_batch(
                pairs, None, accelerate, warm_cache, float32=float32,
                platforms=[spec.platform for spec in specs],
                noises=[float(spec.noise) for spec in specs],
                seeds=[int(spec.seed) for spec in specs])
            if span is not None:
                span.annotate(**solve_stats)
            if stats is not None:
                stats.update(solve_stats)
            return results

    def _pack_batch(self, pairs, externals, *,
                    platforms: Optional[Sequence[PlatformConfig]] = None,
                    noises: Optional[Sequence[float]] = None,
                    seeds: Optional[Sequence[int]] = None) -> _BatchProblem:
        """Pack N problems into lane arrays.

        ``platforms``/``noises``/``seeds`` optionally give each lane its
        own machine identity (the cross-machine path); ``None`` means
        every lane runs on *this* machine.  A uniform identity packs
        arrays bit-identical to the pre-cross-machine layout: filling a
        lane array from N copies of one platform produces exactly what
        ``np.full`` produced from its scalar.
        """
        workloads = [workload for workload, _ in pairs]
        placements = [placement or Placement.dram_only()
                      for _, placement in pairs]
        count = len(pairs)
        lane_platforms = (list(platforms) if platforms is not None
                          else [self.platform] * count)
        lane_noises = (list(noises) if noises is not None
                       else [self.noise] * count)
        lane_seeds = (list(seeds) if seeds is not None
                      else [self.seed] * count)
        if not (len(lane_platforms) == len(lane_noises) ==
                len(lane_seeds) == count):
            raise ValueError("per-lane identities must align with pairs")
        dram_devs = [platform.dram for platform in lane_platforms]
        slow_devices = [placement.slow_device() for placement in placements]
        has_slow = np.asarray([dev is not None for dev in slow_devices])
        demands = [demand_profile(workload, platform)
                   for workload, platform in zip(workloads, lane_platforms)]

        def lanes(values) -> np.ndarray:
            return np.asarray(list(values), dtype=np.float64)

        dram_external = lanes(
            (external or {}).get("dram", 0.0) for external in externals)
        slow_external = lanes(
            (external or {}).get(dev.name, 0.0) if dev is not None else 0.0
            for dev, external in zip(slow_devices, externals))

        return _BatchProblem(
            workloads=workloads,
            placements=placements,
            demands=demands,
            slow_devices=slow_devices,
            platforms=lane_platforms,
            noises=lane_noises,
            seeds=lane_seeds,
            params=BatchCoreParams.from_problems(
                workloads, lane_platforms, demands),
            dram_lanes=DeviceLanes.from_devices(dram_devs),
            slow_lanes=DeviceLanes.from_devices(
                [dev if dev is not None else dram_dev
                 for dev, dram_dev in zip(slow_devices, dram_devs)]),
            has_slow=has_slow,
            x_req=request_share_batch(
                placements, [w.name for w in workloads],
                [w.hotness_skew for w in workloads]),
            near_buffer_hit=lanes(w.near_buffer_hit for w in workloads),
            tail_sensitivity=lanes(w.tail_sensitivity for w in workloads),
            pf_l1_share=lanes(w.pf_l1_share for w in workloads),
            pf_lookahead_ns=lanes(w.pf_lookahead_ns for w in workloads),
            mem_reads_potential=lanes(
                d.mem_reads_potential for d in demands),
            dram_external_gbps=dram_external,
            slow_external_gbps=slow_external,
            reference_idle_ns=lanes(
                dev.idle_latency_ns for dev in dram_devs),
            zeros=np.zeros(count),
        )

    def _initial_state(self, problem: _BatchProblem) -> Dict[str, np.ndarray]:
        idle_dram = problem.dram_lanes.idle_latency_ns
        slow_idle = problem.slow_lanes.idle_latency_ns
        return {
            "dram_latency_ns": idle_dram.copy(),
            "slow_latency_ns": np.where(
                problem.has_slow, slow_idle, idle_dram),
            "dram_rfo_ns":
                idle_dram * problem.dram_lanes.rfo_latency_factor,
            "slow_rfo_ns": np.where(
                problem.has_slow,
                slow_idle * problem.slow_lanes.rfo_latency_factor,
                idle_dram),
            "dram_escalation": np.ones(problem.size),
            "slow_escalation": np.ones(problem.size),
        }

    def _apply_warm_seeds(self, problem: _BatchProblem,
                          state: Dict[str, np.ndarray],
                          warm_cache: WarmStartCache) -> int:
        seeded = 0
        names = ("dram_latency_ns", "slow_latency_ns", "dram_rfo_ns",
                 "slow_rfo_ns", "dram_escalation", "slow_escalation")
        for i in range(problem.size):
            vector = warm_cache.seed(
                problem.workloads[i], problem.placements[i],
                problem.platforms[i].name, problem.noises[i],
                problem.seeds[i], float(problem.x_req[i]))
            if vector is None:
                continue
            for name, value in zip(names, vector):
                state[name][i] = value
            seeded += 1
        return seeded

    def _record_warm_points(self, problem: _BatchProblem,
                            solution: _BatchSolution,
                            warm_cache: WarmStartCache) -> None:
        for i in range(problem.size):
            if not bool(solution.converged[i]):
                continue
            vector: StateVector = (
                float(solution.dram_latency_ns[i]),
                float(solution.slow_latency_ns[i]),
                float(solution.dram_rfo_ns[i]),
                float(solution.slow_rfo_ns[i]),
                float(solution.dram_escalation[i]),
                float(solution.slow_escalation[i]),
            )
            warm_cache.record(
                problem.workloads[i], problem.placements[i],
                problem.platforms[i].name, problem.noises[i],
                problem.seeds[i], float(problem.x_req[i]), vector)

    def _evaluate_outer(self, problem: _BatchProblem,
                        dram_latency_ns, slow_latency_ns,
                        dram_rfo_ns, slow_rfo_ns,
                        dram_escalation, slow_escalation,
                        inner_tolerance: float = _INNER_TOLERANCE):
        """One application of the outer map at the given state arrays.

        Mirrors the body of `_run`'s loop operation-for-operation;
        returns the pre-damping latency targets, the updated
        escalations, this iteration's observables, and the convergence
        delta/scale.  ``inner_tolerance`` parameterizes the core
        accounting's convergence criterion for the float32 fast path
        (``uarch/fastpath.py``); the default is the scalar criterion.
        """
        x_req = problem.x_req
        tier_read = (x_req * dram_latency_ns +
                     (1.0 - x_req) * slow_latency_ns)
        observed = (problem.near_buffer_hit * NEAR_BUFFER_LATENCY_NS +
                    (1.0 - problem.near_buffer_hit) * tier_read)
        rfo = (x_req * dram_rfo_ns +
               (1.0 - x_req) * slow_rfo_ns)

        flow = prefetch_profile_batch(
            problem.params.pf_friend, problem.pf_l1_share,
            problem.pf_lookahead_ns, problem.mem_reads_potential,
            problem.params.l3_hit_rate, tier_read)
        latency_ctx = BatchLatencyContext(
            observed_read_ns=observed,
            tier_read_ns=tier_read,
            rfo_ns=rfo,
            reference_idle_ns=problem.reference_idle_ns,
        )
        breakdown = account_cycles_batch(problem.params, flow, latency_ctx,
                                         relative_tolerance=inner_tolerance)

        runtime_s = breakdown.cycles / (
            problem.params.frequency_ghz * 1e9)
        lines = (flow.demand_mem_reads + flow.pf_mem_reads +
                 problem.params.store_mem_rfos +
                 problem.params.store_mem_rfos +  # RFO read + writeback
                 DEMAND_WRITEBACK_RATIO * flow.demand_mem_reads)
        total_gbps = lines * 64.0 / runtime_s / 1e9

        dram_gbps = total_gbps * x_req
        slow_gbps = total_gbps * (1.0 - x_req)

        dram_offered = dram_gbps + problem.dram_external_gbps
        dram_util = utilization_for_bandwidth_batch(
            problem.dram_lanes, dram_offered)
        new_dram_escalation = updated_escalation_batch(
            dram_escalation, problem.dram_lanes, dram_offered)
        new_dram = loaded_latency_ns_batch(
            problem.dram_lanes, dram_util,
            problem.zeros) * new_dram_escalation
        new_dram_rfo = rfo_latency_ns_batch(
            problem.dram_lanes, dram_util,
            problem.zeros) * new_dram_escalation

        slow_offered = slow_gbps + problem.slow_external_gbps
        slow_util = utilization_for_bandwidth_batch(
            problem.slow_lanes, slow_offered)
        slow_escalation_all = updated_escalation_batch(
            slow_escalation, problem.slow_lanes, slow_offered)
        new_slow_all = loaded_latency_ns_batch(
            problem.slow_lanes, slow_util,
            problem.tail_sensitivity) * slow_escalation_all
        new_slow_rfo_all = rfo_latency_ns_batch(
            problem.slow_lanes, slow_util,
            problem.tail_sensitivity) * slow_escalation_all
        new_slow = np.where(problem.has_slow, new_slow_all,
                            slow_latency_ns)
        new_slow_rfo = np.where(problem.has_slow, new_slow_rfo_all,
                                slow_rfo_ns)
        new_slow_escalation = np.where(problem.has_slow,
                                       slow_escalation_all,
                                       slow_escalation)

        delta = (np.abs(new_dram - dram_latency_ns) +
                 np.abs(new_slow - slow_latency_ns))
        scale = dram_latency_ns + slow_latency_ns
        return (new_dram, new_slow, new_dram_rfo, new_slow_rfo,
                new_dram_escalation, new_slow_escalation,
                flow, breakdown, dram_gbps, slow_gbps, delta, scale)

    def _solve_batch(self, problem: _BatchProblem,
                     state: Dict[str, np.ndarray],
                     accelerate: bool,
                     outer_tolerance: float = _OUTER_TOLERANCE,
                     inner_tolerance: float = _INNER_TOLERANCE
                     ) -> _BatchSolution:
        """Iterate the outer fixed point for all lanes at once.

        Replay mode applies exactly the scalar damped update; each lane
        freezes - state, breakdown, and traffic - the iteration it
        meets the scalar convergence criterion, so frozen lanes carry
        the scalar path's doubles verbatim.  Accelerated mode layers an
        Anderson(1) secant step on top of the damped map, with
        per-lane safeguards falling back to the plain damped step.

        The tolerance parameters exist for the float32 fast path
        (``uarch/fastpath.py``): the scalar criteria (the defaults) sit
        below float32 machine epsilon, so the f32 phase solves to a
        looser criterion and a float64 polish finishes the job.
        """
        dram_latency_ns = state["dram_latency_ns"]
        slow_latency_ns = state["slow_latency_ns"]
        dram_rfo_ns = state["dram_rfo_ns"]
        slow_rfo_ns = state["slow_rfo_ns"]
        dram_escalation = state["dram_escalation"]
        slow_escalation = state["slow_escalation"]

        count = problem.size
        active = np.ones(count, dtype=bool)
        converged = np.zeros(count, dtype=bool)
        iterations = np.zeros(count, dtype=np.int64)
        kept_flow: Optional[BatchPrefetchFlow] = None
        kept_breakdown: Optional[BatchCycleBreakdown] = None
        kept_dram_gbps = np.zeros(count)
        kept_slow_gbps = np.zeros(count)
        previous_x: Optional[np.ndarray] = None
        previous_residual: Optional[np.ndarray] = None

        for _ in range(_MAX_OUTER_ITERATIONS):
            (new_dram, new_slow, new_dram_rfo, new_slow_rfo,
             new_dram_escalation, new_slow_escalation,
             flow, breakdown, dram_gbps, slow_gbps,
             delta, scale) = self._evaluate_outer(
                problem, dram_latency_ns, slow_latency_ns,
                dram_rfo_ns, slow_rfo_ns,
                dram_escalation, slow_escalation,
                inner_tolerance=inner_tolerance)
            iterations += active

            # Observables retained by lanes still iterating: exactly
            # what the scalar loop leaves behind at its break.
            kept_flow = _merge_lanes(flow, kept_flow, active)
            kept_breakdown = _merge_lanes(breakdown, kept_breakdown, active)
            kept_dram_gbps = np.where(active, dram_gbps, kept_dram_gbps)
            kept_slow_gbps = np.where(active, slow_gbps, kept_slow_gbps)

            conv_now = active & (delta <= outer_tolerance * scale)
            still_active = active & ~conv_now

            # The damped map image - the step the scalar solver takes
            # every iteration, and the step every converging lane takes
            # as its last (scalar damps *before* checking the break).
            damped = np.stack([
                dram_latency_ns + _OUTER_DAMPING * (
                    new_dram - dram_latency_ns),
                slow_latency_ns + _OUTER_DAMPING * (
                    new_slow - slow_latency_ns),
                dram_rfo_ns + _OUTER_DAMPING * (
                    new_dram_rfo - dram_rfo_ns),
                slow_rfo_ns + _OUTER_DAMPING * (
                    new_slow_rfo - slow_rfo_ns),
                new_dram_escalation,
                new_slow_escalation,
            ])

            if accelerate:
                current_x = np.stack([
                    dram_latency_ns, slow_latency_ns, dram_rfo_ns,
                    slow_rfo_ns, dram_escalation, slow_escalation])
                residual = damped - current_x
                step = damped
                if previous_x is not None and previous_residual is not None:
                    delta_x = current_x - previous_x
                    delta_r = residual - previous_residual
                    denominator = (delta_r * delta_r).sum(axis=0)
                    safe_denominator = np.where(
                        denominator > 0, denominator, 1.0)
                    gamma = (residual * delta_r).sum(
                        axis=0) / safe_denominator
                    candidate = current_x + residual - gamma * (
                        delta_x + delta_r)
                    # Escalations are clamped to their physical range;
                    # a secant step outside it is merely overshoot.
                    candidate[4] = np.clip(candidate[4], 1.0,
                                           MAX_ESCALATION)
                    candidate[5] = np.clip(candidate[5], 1.0,
                                           MAX_ESCALATION)
                    valid = ((denominator > 1e-30) &
                             np.isfinite(candidate).all(axis=0) &
                             (candidate[:4] > 0).all(axis=0))
                    step = np.where(valid, candidate, damped)
                previous_x = current_x
                previous_residual = residual
            else:
                step = damped

            # Converging lanes take the damped step (scalar semantics);
            # the rest of the active lanes take the (possibly
            # accelerated) step; frozen lanes hold.
            def advance(row: int, current: np.ndarray) -> np.ndarray:
                return np.where(
                    conv_now, damped[row],
                    np.where(still_active, step[row], current))

            dram_latency_ns = advance(0, dram_latency_ns)
            slow_latency_ns = advance(1, slow_latency_ns)
            dram_rfo_ns = advance(2, dram_rfo_ns)
            slow_rfo_ns = advance(3, slow_rfo_ns)
            dram_escalation = advance(4, dram_escalation)
            slow_escalation = advance(5, slow_escalation)

            converged = converged | conv_now
            active = still_active
            if not bool(active.any()):
                break

        assert kept_flow is not None and kept_breakdown is not None
        return _BatchSolution(
            dram_latency_ns=dram_latency_ns,
            slow_latency_ns=slow_latency_ns,
            dram_rfo_ns=dram_rfo_ns,
            slow_rfo_ns=slow_rfo_ns,
            dram_escalation=dram_escalation,
            slow_escalation=slow_escalation,
            flow=kept_flow,
            breakdown=kept_breakdown,
            dram_gbps=kept_dram_gbps,
            slow_gbps=kept_slow_gbps,
            converged=converged,
            iterations=iterations,
        )

    def _materialize(self, problem: _BatchProblem,
                     solution: _BatchSolution) -> List[RunResult]:
        """Build per-element ``RunResult``s from the solved lane arrays.

        The post-loop recomputation matches `_run` exactly: observed /
        tier / RFO latencies from the final (damped) state, runtime
        from the retained breakdown, utilizations from the retained
        per-tier traffic.
        """
        x_req = problem.x_req
        tier_read = (x_req * solution.dram_latency_ns +
                     (1.0 - x_req) * solution.slow_latency_ns)
        observed = (problem.near_buffer_hit * NEAR_BUFFER_LATENCY_NS +
                    (1.0 - problem.near_buffer_hit) * tier_read)
        rfo = (x_req * solution.dram_rfo_ns +
               (1.0 - x_req) * solution.slow_rfo_ns)
        runtime_s = solution.breakdown.cycles / (
            problem.params.frequency_ghz * 1e9)
        dram_util = utilization_for_bandwidth_batch(
            problem.dram_lanes,
            solution.dram_gbps + problem.dram_external_gbps)
        slow_util = utilization_for_bandwidth_batch(
            problem.slow_lanes,
            solution.slow_gbps + problem.slow_external_gbps)

        flow = solution.flow
        results: List[RunResult] = []
        for i in range(problem.size):
            workload = problem.workloads[i]
            placement = problem.placements[i]
            demand = problem.demands[i]
            breakdown = solution.breakdown.element(i)
            prefetch = PrefetchProfile(
                covered=float(flow.covered[i]),
                demand_mem_reads=float(flow.demand_mem_reads[i]),
                pf_mem_reads=float(flow.pf_mem_reads[i]),
                pf_l1_mem=float(flow.pf_l1_mem[i]),
                pf_l2_mem=float(flow.pf_l2_mem[i]),
                pf_l1_any=float(flow.pf_l1_any[i]),
                pf_l1_l3_hit=float(flow.pf_l1_l3_hit[i]),
                pf_l2_any=float(flow.pf_l2_any[i]),
                pf_l2_l3_hit=float(flow.pf_l2_l3_hit[i]),
                late_wait_ns=float(flow.late_wait_ns[i]),
                late_fraction=float(flow.late_fraction[i]),
            )
            tier_label = placement.describe()
            counters = emit_counters(
                workload, problem.platforms[i], demand, prefetch,
                breakdown, tier_label, noise=problem.noises[i],
                seed=problem.seeds[i])
            has_slow = bool(problem.has_slow[i])
            results.append(RunResult(
                workload=workload,
                placement=placement,
                platform=problem.platforms[i],
                breakdown=breakdown,
                demand=demand,
                prefetch=prefetch,
                counters=counters,
                observed_read_ns=float(observed[i]),
                tier_read_ns=float(tier_read[i]),
                rfo_ns=float(rfo[i]),
                dram_latency_ns=float(solution.dram_latency_ns[i]),
                slow_latency_ns=(float(solution.slow_latency_ns[i])
                                 if has_slow else None),
                dram_gbps=float(solution.dram_gbps[i]),
                slow_gbps=float(solution.slow_gbps[i]),
                dram_utilization=float(dram_util[i]),
                slow_utilization=(float(slow_util[i]) if has_slow
                                  else 0.0),
                runtime_s=float(runtime_s[i]),
                converged=bool(solution.converged[i]) and
                breakdown.converged,
            ))
        return results

    def profile(self, workload: WorkloadSpec,
                placement: Optional[Placement] = None) -> ProfiledRun:
        """Run and return only what a perf wrapper would capture."""
        return self.run(workload, placement).profiled()

    def profile_phased(self, phased, placement: Optional[Placement] = None
                       ) -> ProfiledRun:
        """Profile a phased workload window by window (Fig. 8 style).

        ``phased`` is a :class:`~repro.workloads.phases.PhasedWorkload`.
        Each phase executes under the same placement and contributes
        one per-window :class:`~repro.core.counters.CounterSample`; the
        aggregate sample is their counter-wise sum, exactly what a
        whole-run perf session would have recorded over the sampling
        windows.
        """
        windows = []
        results = []
        for window in phased.windows():
            result = self.run(window, placement)
            results.append(result)
            windows.append(result.counters)
        merged = windows[0]
        for sample in windows[1:]:
            merged = merged.merged(sample)
        reference = results[0].profiled()
        return ProfiledRun(
            sample=merged,
            platform_family=reference.platform_family,
            tier=reference.tier,
            frequency_ghz=reference.frequency_ghz,
            duration_s=sum(result.runtime_s for result in results),
            label=phased.name,
            windows=tuple(windows),
        )

    # -- colocation -----------------------------------------------------------
    def run_colocated(self, jobs: Sequence[Tuple[WorkloadSpec, Placement]],
                      max_iterations: int = 120,
                      tolerance: float = 1e-6,
                      stats: Optional[Dict[str, object]] = None
                      ) -> List[RunResult]:
        """Execute several workloads sharing this machine's memory.

        Solves the joint steady state: each workload's traffic raises
        tier utilization for everyone, which feeds back into everyone's
        latency and runtime.  Returns one :class:`RunResult` per job, in
        order; each result's counters reflect the interference.

        One group of jobs sharing one memory system; delegates to
        :meth:`run_colocated_groups`.  ``stats`` (if given) receives
        ``joint_converged``, ``joint_iterations``, and the summed
        solver telemetry, so an exhausted iteration cap is observable
        instead of silently returning the last iterate.
        """
        return self.run_colocated_groups(
            jobs, None, max_iterations=max_iterations,
            tolerance=tolerance, stats=stats)

    def run_colocated_groups(
            self, jobs: Sequence[Tuple[WorkloadSpec, Placement]],
            groups: Optional[Sequence[Sequence[int]]] = None,
            *, max_iterations: int = 120, tolerance: float = 1e-6,
            stats: Optional[Dict[str, object]] = None) -> List[RunResult]:
        """Jointly solve many *independent* colocation groups at once.

        ``groups`` partitions ``jobs`` (by index) into disjoint sets of
        jobs that share one node's memory system; traffic couples jobs
        within a group only.  ``None`` means one group of all jobs
        (classic :meth:`run_colocated`).

        The lanes are packed **once**; each joint iteration updates
        only the per-lane external-traffic arrays and re-solves the
        whole batch accelerated, warm-started from the previous
        iterate's solver state (the per-job request share never changes
        across iterations, so the previous iterate is always the
        nearest point).  Compared to re-packing per iteration this
        removes the dominant per-round cost when thousands of small
        groups - a fleet shard - are solved together.
        """
        jobs = list(jobs)
        if groups is None:
            groups = [tuple(range(len(jobs)))] if jobs else []
        groups = [tuple(int(i) for i in group) for group in groups]
        seen: set = set()
        for group in groups:
            for index in group:
                if not 0 <= index < len(jobs):
                    raise ValueError(
                        f"group index {index} out of range for "
                        f"{len(jobs)} jobs")
                if index in seen:
                    raise ValueError(
                        f"job index {index} appears in two groups")
                seen.add(index)
        if len(seen) != len(jobs):
            raise ValueError("groups must partition jobs: "
                             f"{len(jobs) - len(seen)} jobs unassigned")
        if not jobs:
            if stats is not None:
                stats.update(joint_converged=True, joint_iterations=0,
                             outer_iterations=0, nonconverged=0,
                             groups=0)
            return []
        with maybe_span("machine.run_colocated", jobs=len(jobs),
                        groups=len(groups),
                        platform=self.platform.name) as span:
            if memory_mod._LATENCY_FAULT_HOOK is not None:
                # Stateful scalar fault hooks cannot thread the packed
                # path; solve group by group via run_batch, which
                # falls back to the scalar loop itself.
                results, joint_stats = self._run_colocated_groups_slow(
                    jobs, groups, max_iterations, tolerance)
            else:
                results, joint_stats = self._run_colocated_groups(
                    jobs, groups, max_iterations, tolerance)
            if span is not None:
                span.annotate(**joint_stats)
            if stats is not None:
                stats.update(joint_stats)
            return results

    def _run_colocated_groups(self, jobs, groups, max_iterations,
                              tolerance):
        count = len(jobs)
        problem = self._pack_batch(jobs, [None] * count)

        group_id = np.zeros(count, dtype=np.int64)
        for gid, group in enumerate(groups):
            for index in group:
                group_id[index] = gid
        # Slow-tier traffic couples only lanes sharing the same device
        # within the same group.
        slow_keys: Dict[Tuple[int, str], int] = {}
        slow_key_id = np.full(count, -1, dtype=np.int64)
        for index, placement in enumerate(problem.placements):
            if placement.device is not None:
                key = (int(group_id[index]), placement.device)
                slow_key_id[index] = slow_keys.setdefault(
                    key, len(slow_keys))
        shared_slow = slow_key_id >= 0

        state_names = ("dram_latency_ns", "slow_latency_ns",
                       "dram_rfo_ns", "slow_rfo_ns",
                       "dram_escalation", "slow_escalation")
        dram_traffic = np.zeros(count)
        slow_traffic = np.zeros(count)
        solution: Optional[_BatchSolution] = None
        joint_converged = False
        joint_iterations = 0
        total_outer = 0
        replay_resolves = 0
        for _ in range(max_iterations):
            joint_iterations += 1
            group_dram = np.zeros(len(groups))
            np.add.at(group_dram, group_id, dram_traffic)
            problem.dram_external_gbps[:] = (
                group_dram[group_id] - dram_traffic)
            problem.slow_external_gbps[:] = 0.0
            if slow_keys:
                key_slow = np.zeros(len(slow_keys))
                np.add.at(key_slow, slow_key_id[shared_slow],
                          slow_traffic[shared_slow])
                problem.slow_external_gbps[shared_slow] = (
                    key_slow[slow_key_id[shared_slow]] -
                    slow_traffic[shared_slow])

            if solution is None:
                state = self._initial_state(problem)
            else:
                state = {name: getattr(solution, name).copy()
                         for name in state_names}
            solution = self._solve_batch(problem, state, accelerate=True)
            if not bool(solution.converged.all()):
                index = np.flatnonzero(~solution.converged)
                replay_resolves += int(index.size)
                sub = self._solve_batch(
                    problem.subset(index),
                    self._initial_state(problem.subset(index)),
                    accelerate=False)
                solution.splice(sub, index)
            total_outer += int(solution.iterations.sum())

            new_dram = solution.dram_gbps
            new_slow = np.where(problem.has_slow, solution.slow_gbps,
                                0.0)
            worst = max(
                float(np.max(np.abs(new_dram - dram_traffic) /
                             np.maximum(1.0, np.maximum(
                                 new_dram, dram_traffic)))),
                float(np.max(np.abs(new_slow - slow_traffic) /
                             np.maximum(1.0, np.maximum(
                                 new_slow, slow_traffic)))))
            dram_traffic += _OUTER_DAMPING * (new_dram - dram_traffic)
            slow_traffic += _OUTER_DAMPING * (new_slow - slow_traffic)
            if worst <= tolerance:
                joint_converged = True
                break

        results = self._materialize(problem, solution)
        joint_stats: Dict[str, object] = {
            "joint_converged": joint_converged,
            "joint_iterations": joint_iterations,
            "outer_iterations": total_outer,
            "nonconverged": sum(1 for r in results if not r.converged),
            "groups": len(groups),
            "replay_resolves": replay_resolves,
        }
        return results, joint_stats

    def _run_colocated_groups_slow(self, jobs, groups, max_iterations,
                                   tolerance):
        """Group-by-group fallback used under scalar fault hooks."""
        results: List[Optional[RunResult]] = [None] * len(jobs)
        merged: Dict[str, object] = {
            "joint_converged": True, "joint_iterations": 0,
            "outer_iterations": 0, "nonconverged": 0,
            "groups": len(groups),
        }
        for group in groups:
            subset = [jobs[index] for index in group]
            sub_results, sub_stats = self._run_colocated(
                subset, max_iterations, tolerance)
            for index, result in zip(group, sub_results):
                results[index] = result
            merged["joint_converged"] = (
                bool(merged["joint_converged"]) and
                bool(sub_stats["joint_converged"]))
            merged["joint_iterations"] = max(
                int(merged["joint_iterations"]),
                int(sub_stats["joint_iterations"]))
            merged["outer_iterations"] = (
                int(merged["outer_iterations"]) +
                int(sub_stats["outer_iterations"]))
            merged["nonconverged"] = (
                int(merged["nonconverged"]) +
                int(sub_stats["nonconverged"]))
        return results, merged

    def _run_colocated(self, jobs, max_iterations, tolerance):
        warm_cache = WarmStartCache()
        traffic: List[Dict[str, float]] = [dict() for _ in jobs]
        results: List[RunResult] = []
        joint_converged = False
        joint_iterations = 0
        total_outer = 0
        for _ in range(max_iterations):
            joint_iterations += 1
            externals: List[Dict[str, float]] = []
            for index in range(len(jobs)):
                external: Dict[str, float] = {}
                for other_index, other in enumerate(traffic):
                    if other_index == index:
                        continue
                    for tier, gbps in other.items():
                        external[tier] = external.get(tier, 0.0) + gbps
                externals.append(external)

            solve_stats: Dict[str, object] = {}
            results = self.run_batch(
                jobs, external_traffic=externals, accelerate=True,
                warm_cache=warm_cache, stats=solve_stats)
            total_outer += int(solve_stats.get("outer_iterations", 0))

            new_traffic: List[Dict[str, float]] = []
            for (workload, placement), result in zip(jobs, results):
                contribution: Dict[str, float] = {
                    "dram": result.dram_gbps}
                if placement.device is not None:
                    contribution[placement.device] = result.slow_gbps
                new_traffic.append(contribution)

            worst = 0.0
            for old, new in zip(traffic, new_traffic):
                tiers = set(old) | set(new)
                for tier in tiers:
                    prev = old.get(tier, 0.0)
                    curr = new.get(tier, 0.0)
                    worst = max(worst,
                                abs(curr - prev) / max(1.0, curr, prev))
            damped: List[Dict[str, float]] = []
            for old, new in zip(traffic, new_traffic):
                tiers = set(old) | set(new)
                damped.append({
                    tier: old.get(tier, 0.0) + _OUTER_DAMPING * (
                        new.get(tier, 0.0) - old.get(tier, 0.0))
                    for tier in tiers
                })
            traffic = damped
            if worst <= tolerance:
                joint_converged = True
                break
        joint_stats: Dict[str, object] = {
            "joint_converged": joint_converged,
            "joint_iterations": joint_iterations,
            "outer_iterations": total_outer,
            "nonconverged": sum(1 for r in results if not r.converged),
        }
        return results, joint_stats
