"""Hardware-buffer pressure models: LFB / SuperQueue occupancy, MLP
scaling, and Store Buffer backpressure.

These are the paper's "microarchitectural pressure points" (section 2.3):
the small structures where added memory latency turns into pipeline
stalls.  Three effects live here:

``effective_mlp``
    The demand-read concurrency a core actually sustains: the workload's
    intrinsic MLP, grown slightly under higher latency (requests pend
    longer, so the window spends more time at high concurrency - paper
    Fig. 4c/e), but capped by the LFB entries left over after prefetch
    in-flight occupancy.

``lfb_contention_stalls``
    When demand + prefetch in-flight occupancy exceeds the LFB, new
    allocations block; the excess converts a slice of memory-active
    cycles into extra cache-level stalls (paper 4.2.1, "extended
    occupancy ... can prevent other data accesses from allocating").

``store_backpressure_stalls``
    The SB-full mechanism of section 4.3: store RFO occupancy beyond the
    Store Buffer capacity back-pressures retirement; each memory RFO then
    costs ``L_rfo / drain_parallelism`` cycles of stall.  The transition
    is smoothed with a logistic gate because bursts cross the threshold
    before the mean occupancy does.
"""

from __future__ import annotations

import numpy as np

from ..workloads.spec import WorkloadSpec
from .config import PlatformConfig

#: Latency scale (ns) over which MLP growth saturates: pending-time
#: driven concurrency growth builds quickly over the first ~100 ns of
#: added latency, then hardware limits dominate (paper Fig. 4c/e: MLP
#: growth is already visible on the +50 ns NUMA tier and mostly
#: saturated on CXL).
MLP_GROWTH_SCALE_NS = 120.0

#: Slice of memory-active cycles converted to stalls per unit of
#: fractional LFB over-subscription.
LFB_CONTENTION_GAIN = 0.30



def mlp_growth_factor(spec: WorkloadSpec, latency_ns: float,
                      reference_latency_ns: float) -> float:
    """Multiplier on intrinsic MLP at a given latency (>= 1).

    At the reference (idle local DRAM) latency the factor is 1; it grows
    toward ``1 + mlp_headroom`` as latency rises, saturating on the
    scale of :data:`MLP_GROWTH_SCALE_NS`.
    """
    excess = max(0.0, latency_ns - reference_latency_ns)
    if excess <= 0 or spec.mlp_headroom <= 0:
        return 1.0
    # np.exp, not math.exp: libm and numpy disagree in the last ulp and
    # the batched kernels must replay this path bit-for-bit.
    return 1.0 + spec.mlp_headroom * (
        1.0 - float(np.exp(-excess / MLP_GROWTH_SCALE_NS)))


#: LFB entries L1 prefetches may hold against demand pressure.  Real
#: prefetchers throttle when fill buffers are scarce (demand wins
#: allocation conflicts), so prefetch in-flight occupancy displaces at
#: most this many entries from the demand-visible LFB share.
PF_LFB_ENTRY_CAP = 2.0


def effective_mlp(spec: WorkloadSpec, platform: PlatformConfig,
                  latency_ns: float, reference_latency_ns: float,
                  pf_l1_inflight: float) -> float:
    """Sustained demand-read MLP per core on this platform.

    ``pf_l1_inflight`` is the average number of LFB entries occupied by
    L1-prefetch requests; demand reads use the remainder, but prefetch
    displacement is bounded by :data:`PF_LFB_ENTRY_CAP` (adaptive
    prefetch throttling yields entries to demand).  The hard LFB cap is
    what keeps streaming workloads' MLP flat across tiers and
    interleaving ratios (paper Fig. 10) - they already run at the bound.
    """
    grown = spec.mlp * mlp_growth_factor(spec, latency_ns,
                                         reference_latency_ns)
    displaced = min(max(pf_l1_inflight, 0.0), PF_LFB_ENTRY_CAP)
    demand_entries = max(1.0, platform.lfb_entries - displaced)
    return max(1.0, min(grown, demand_entries))


def lfb_occupancy(demand_mlp: float, pf_l1_inflight: float) -> float:
    """Mean LFB entries in use while the core is memory-active."""
    return max(0.0, demand_mlp) + max(0.0, pf_l1_inflight)


def lfb_contention_stalls(occupancy: float, platform: PlatformConfig,
                          memory_active_cycles: float) -> float:
    """Extra cache-level stall cycles from LFB over-subscription.

    Zero while occupancy fits; beyond capacity, the fractional excess
    converts memory-active cycles into allocation stalls at
    :data:`LFB_CONTENTION_GAIN`.
    """
    if memory_active_cycles <= 0:
        return 0.0
    excess = occupancy - platform.lfb_entries
    if excess <= 0:
        return 0.0
    return (excess / platform.lfb_entries) * LFB_CONTENTION_GAIN * \
        memory_active_cycles


def sb_full_fraction(occupancy: float, capacity: float,
                     burstiness: float) -> float:
    """Fraction of drain time the Store Buffer spends back-pressuring.

    ``occ_eff / (occ_eff + capacity)``, where burstiness inflates
    effective occupancy (bursty stores hit the ceiling while the mean is
    below it).  Saturating-linear rather than a hard threshold: store
    bursts fill the SB briefly even at modest mean occupancy, and the
    full-time then scales with how long each RFO pins its entry - the
    near-proportionality in RFO latency that makes the paper's linear
    S_Store model (Eq. 7) work.
    """
    if capacity <= 0:
        return 1.0
    effective = max(0.0, occupancy) * (1.0 + burstiness)
    return effective / (effective + capacity)


#: Fraction of store-drain time hidden under other execution even when
#: the Store Buffer is saturated (independent work keeps retiring while
#: the SB drains between bursts).
SB_DRAIN_OVERLAP = 0.25


def store_backpressure_stalls(spec: WorkloadSpec, platform: PlatformConfig,
                              store_mem_rfos_per_core: float,
                              rfo_latency_cycles: float,
                              cycles: float) -> float:
    """SB-full stall cycles for one core over a run of ``cycles``.

    Two pieces, multiplied:

    - the *drain service time* ``N_rfo * L_rfo / drain_parallelism`` -
      the cycles the memory system needs to grant all store ownerships;
    - a logistic *full gate* on the SB's Little's-law occupancy
      (``rate * latency``, burst-inflated): near zero while stores fit,
      approaching one when the pipeline is continuously back-pressured.

    The gate makes the term self-limiting inside the cycle fixed point:
    stalls stretch the run, which lowers the store rate, which relaxes
    the gate - exactly the flow-control feedback of section 4.3.
    """
    if cycles <= 0 or store_mem_rfos_per_core <= 0:
        return 0.0
    rfo_rate = store_mem_rfos_per_core / cycles
    occupancy = rfo_rate * rfo_latency_cycles
    full = sb_full_fraction(occupancy, platform.sb_entries, spec.store_burst)
    service = (store_mem_rfos_per_core * rfo_latency_cycles /
               platform.sb_drain_parallelism)
    return full * service * (1.0 - SB_DRAIN_OVERLAP)


# --------------------------------------------------------------------------
# Batched kernels (docs/SOLVER.md): struct-of-arrays mirrors of the
# scalar buffer models above, arithmetic-identical per element.
# --------------------------------------------------------------------------


def mlp_growth_factor_batch(mlp_headroom: np.ndarray, latency_ns: np.ndarray,
                            reference_latency_ns: np.ndarray) -> np.ndarray:
    """Vectorized :func:`mlp_growth_factor`."""
    excess = np.maximum(0.0, latency_ns - reference_latency_ns)
    grown = 1.0 + mlp_headroom * (
        1.0 - np.exp(-excess / MLP_GROWTH_SCALE_NS))
    return np.where((excess <= 0) | (mlp_headroom <= 0), 1.0, grown)


def effective_mlp_batch(mlp: np.ndarray, mlp_headroom: np.ndarray,
                        lfb_entries: np.ndarray, latency_ns: np.ndarray,
                        reference_latency_ns: np.ndarray,
                        pf_l1_inflight: np.ndarray) -> np.ndarray:
    """Vectorized :func:`effective_mlp`."""
    grown = mlp * mlp_growth_factor_batch(mlp_headroom, latency_ns,
                                          reference_latency_ns)
    displaced = np.minimum(np.maximum(pf_l1_inflight, 0.0), PF_LFB_ENTRY_CAP)
    demand_entries = np.maximum(1.0, lfb_entries - displaced)
    return np.maximum(1.0, np.minimum(grown, demand_entries))


def lfb_occupancy_batch(demand_mlp: np.ndarray,
                        pf_l1_inflight: np.ndarray) -> np.ndarray:
    """Vectorized :func:`lfb_occupancy`."""
    return np.maximum(0.0, demand_mlp) + np.maximum(0.0, pf_l1_inflight)


def lfb_contention_stalls_batch(occupancy: np.ndarray,
                                lfb_entries: np.ndarray,
                                memory_active_cycles: np.ndarray
                                ) -> np.ndarray:
    """Vectorized :func:`lfb_contention_stalls`."""
    excess = occupancy - lfb_entries
    stalls = (excess / lfb_entries) * LFB_CONTENTION_GAIN * \
        memory_active_cycles
    return np.where((memory_active_cycles <= 0) | (excess <= 0),
                    0.0, stalls)


def sb_full_fraction_batch(occupancy: np.ndarray, capacity: np.ndarray,
                           burstiness: np.ndarray) -> np.ndarray:
    """Vectorized :func:`sb_full_fraction`."""
    effective = np.maximum(0.0, occupancy) * (1.0 + burstiness)
    fraction = effective / (effective + capacity)
    return np.where(capacity <= 0, 1.0, fraction)


def store_backpressure_stalls_batch(store_burst: np.ndarray,
                                    sb_entries: np.ndarray,
                                    sb_drain_parallelism: np.ndarray,
                                    store_mem_rfos_per_core: np.ndarray,
                                    rfo_latency_cycles: np.ndarray,
                                    cycles: np.ndarray) -> np.ndarray:
    """Vectorized :func:`store_backpressure_stalls`."""
    safe_cycles = np.where(cycles > 0, cycles, 1.0)
    rfo_rate = store_mem_rfos_per_core / safe_cycles
    occupancy = rfo_rate * rfo_latency_cycles
    full = sb_full_fraction_batch(occupancy, sb_entries, store_burst)
    service = (store_mem_rfos_per_core * rfo_latency_cycles /
               sb_drain_parallelism)
    stalls = full * service * (1.0 - SB_DRAIN_OVERLAP)
    return np.where((cycles <= 0) | (store_mem_rfos_per_core <= 0),
                    0.0, stalls)
