"""Platform and memory-device configurations (Tables 3 and 4).

The paper evaluates CAMP on three two-socket Intel servers - Skylake
(SKX2S), Sapphire Rapids (SPR2S) and Emerald Rapids (EMR2S) - and four
slow-memory backends: an emulated NUMA tier on SKX plus three ASIC CXL
2.0 expanders (CXL-A/B/C).  This module reproduces those configurations
as data, with the published latency/bandwidth figures verbatim.

Microarchitectural buffer sizes (LFB / SuperQueue / Store Buffer entries)
are not in the paper's tables; we use publicly documented values for the
corresponding Intel cores, and they are plain fields so experiments can
sweep them (the ablation benchmarks do).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

CACHELINE_BYTES = 64


@dataclass(frozen=True)
class MemoryDeviceConfig:
    """One memory backend: local DRAM, a NUMA hop, or a CXL expander.

    Latency/bandwidth figures come from Tables 3-4.  ``tail_alpha``
    captures device tail-latency divergence (the paper reports CXL-A and
    CXL-B exhibit high tail-latency variance, which causes CAMP to
    underestimate slowdown for irregular workloads); it scales how much a
    workload's ``tail_sensitivity`` inflates effective latency and is an
    *actual-hardware* property invisible to DRAM-only profiling.
    """

    name: str
    #: Unloaded (idle) read latency in nanoseconds, as Intel MLC reports.
    idle_latency_ns: float
    #: Peak sustainable bandwidth in GB/s.
    peak_bandwidth_gbps: float
    #: Tail-latency amplification: 0 = tight latency distribution.
    tail_alpha: float = 0.0
    #: Multiplier on idle latency for RFO (store-ownership) requests.
    #: RFOs to CXL take the full round trip; the paper reports 2-3x
    #: growth of RFO latency on CXL relative to DRAM.
    rfo_latency_factor: float = 1.0
    #: Queueing-curve shape parameters for loaded latency (see
    #: :mod:`repro.uarch.memory`).  ``queue_gain`` scales how quickly
    #: latency inflates with utilization; ``queue_knee`` is the
    #: utilization where super-linear growth begins.
    queue_gain: float = 2.2
    queue_knee: float = 0.62

    def __post_init__(self):
        if self.idle_latency_ns <= 0:
            raise ValueError("idle latency must be positive")
        if self.peak_bandwidth_gbps <= 0:
            raise ValueError("peak bandwidth must be positive")
        if not 0 <= self.queue_knee < 1:
            raise ValueError("queue knee must be in [0, 1)")


@dataclass(frozen=True)
class PlatformConfig:
    """One server platform (Table 3) - CPU, caches, buffers, local DRAM."""

    name: str
    #: Family tag driving the counter mapping: "skx", "spr" or "emr".
    family: str
    cores: int
    frequency_ghz: float
    #: Shared LLC capacity in MiB.
    llc_mib: float
    #: L1D/L2 capacities in KiB (per core).
    l1d_kib: float = 32.0
    l2_kib: float = 1024.0
    #: Load-to-use latency of an LLC hit (ns): what an offcore demand
    #: read that hits L3 costs, diluting the observed offcore latency.
    llc_latency_ns: float = 30.0
    #: Line Fill Buffer entries per core (L1 miss tracking).
    lfb_entries: int = 12
    #: SuperQueue entries per core (L2 miss tracking).
    sq_entries: int = 16
    #: Store Buffer entries per core.
    sb_entries: int = 56
    #: How many store RFOs drain concurrently (store-miss parallelism).
    sb_drain_parallelism: float = 10.0
    #: Local DRAM device of the platform.
    dram: MemoryDeviceConfig = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.family not in ("skx", "spr", "emr"):
            raise ValueError(f"unknown platform family: {self.family!r}")
        if self.dram is None:
            raise ValueError("a platform needs a local DRAM device")
        if self.cores <= 0 or self.frequency_ghz <= 0:
            raise ValueError("cores and frequency must be positive")
        if self.lfb_entries <= 0 or self.sq_entries <= 0:
            raise ValueError("buffer sizes must be positive")

    # -- unit helpers ------------------------------------------------------
    def ns_to_cycles(self, ns: float) -> float:
        """Convert nanoseconds to core cycles at this platform's clock."""
        return ns * self.frequency_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.frequency_ghz

    def with_device(self, dram: MemoryDeviceConfig) -> "PlatformConfig":
        """A copy of this platform with a different local DRAM device."""
        return replace(self, dram=dram)


def _dram(name: str, latency_ns: float, bandwidth_gbps: float,
          gain: float = 2.0, knee: float = 0.55) -> MemoryDeviceConfig:
    return MemoryDeviceConfig(
        name=name,
        idle_latency_ns=latency_ns,
        peak_bandwidth_gbps=bandwidth_gbps,
        tail_alpha=0.0,
        rfo_latency_factor=1.0,
        queue_gain=gain,
        queue_knee=knee,
    )


# ---------------------------------------------------------------------------
# Table 3: the three two-socket servers.  DRAM bandwidth figures are the
# published read bandwidths (52 / 191 / 246 GB/s); the second number in
# the paper's "read/write" pairs parameterizes nothing we model
# separately, since writebacks and RFOs share the read-latency path in
# our queueing abstraction.
# ---------------------------------------------------------------------------

SKX2S = PlatformConfig(
    name="SKX2S",
    family="skx",
    cores=10,
    frequency_ghz=2.2,
    llc_mib=14.0,
    lfb_entries=12,
    sq_entries=16,
    sb_entries=56,
    sb_drain_parallelism=8.0,
    dram=_dram("dram-ddr4-2666", 90.0, 52.0),
)

SPR2S = PlatformConfig(
    name="SPR2S",
    family="spr",
    cores=32,
    frequency_ghz=2.1,
    llc_mib=60.0,
    l2_kib=2048.0,
    llc_latency_ns=33.0,
    lfb_entries=16,
    sq_entries=48,
    sb_entries=112,
    sb_drain_parallelism=12.0,
    dram=_dram("dram-ddr5-4800", 114.0, 191.0),
)

EMR2S = PlatformConfig(
    name="EMR2S",
    family="emr",
    cores=32,
    frequency_ghz=2.1,
    llc_mib=160.0,
    l2_kib=2048.0,
    llc_latency_ns=36.0,
    lfb_entries=16,
    sq_entries=48,
    sb_entries=112,
    sb_drain_parallelism=12.0,
    dram=_dram("dram-ddr5-4800", 111.0, 246.0),
)

PLATFORMS: Dict[str, PlatformConfig] = {
    "skx2s": SKX2S,
    "spr2s": SPR2S,
    "emr2s": EMR2S,
}


# ---------------------------------------------------------------------------
# Table 4: three ASIC CXL 2.0 memory expanders, plus the emulated NUMA
# tier on SKX (remote-socket DRAM: 140 ns, ~32 GB/s per Table 3).
# CXL-A and CXL-B exhibit the tail-latency variance the paper reports;
# CXL-C (x16, multi-channel) is better behaved.  RFO latency on CXL
# grows 2-3x relative to DRAM (paper section 4.3.1); the factor below is
# relative to the device's own read latency.
# ---------------------------------------------------------------------------

NUMA = MemoryDeviceConfig(
    name="numa",
    idle_latency_ns=140.0,
    peak_bandwidth_gbps=32.0,
    tail_alpha=0.02,
    rfo_latency_factor=1.05,
    queue_gain=2.2,
    queue_knee=0.6,
)

CXL_A = MemoryDeviceConfig(
    name="cxl-a",
    idle_latency_ns=214.0,
    peak_bandwidth_gbps=24.0,
    tail_alpha=0.14,
    rfo_latency_factor=1.15,
    queue_gain=2.8,
    queue_knee=0.58,
)

CXL_B = MemoryDeviceConfig(
    name="cxl-b",
    idle_latency_ns=271.0,
    peak_bandwidth_gbps=22.0,
    tail_alpha=0.18,
    rfo_latency_factor=1.18,
    queue_gain=3.0,
    queue_knee=0.55,
)

CXL_C = MemoryDeviceConfig(
    name="cxl-c",
    idle_latency_ns=239.0,
    peak_bandwidth_gbps=52.0,
    tail_alpha=0.05,
    rfo_latency_factor=1.12,
    queue_gain=2.4,
    queue_knee=0.6,
)

DEVICES: Dict[str, MemoryDeviceConfig] = {
    "numa": NUMA,
    "cxl-a": CXL_A,
    "cxl-b": CXL_B,
    "cxl-c": CXL_C,
}

#: The four slow tiers of the paper's evaluation, in reporting order.
EVALUATION_TIERS: Tuple[str, ...] = ("numa", "cxl-a", "cxl-b", "cxl-c")


def get_platform(name: str) -> PlatformConfig:
    """Look up a platform preset by case-insensitive name."""
    try:
        return PLATFORMS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None


def get_device(name: str) -> MemoryDeviceConfig:
    """Look up a slow-tier device preset by case-insensitive name."""
    try:
        return DEVICES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from None
