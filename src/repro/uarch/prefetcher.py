"""Hardware prefetcher model: coverage, traffic, and timeliness.

The paper's S_Cache component comes from prefetchers losing timeliness as
memory latency grows (section 4.2): a prefetch issued ``lookahead`` ns
before the demand access needs its line arrives ``latency`` ns later, so
any latency beyond the lookahead leaves the demand access waiting on an
in-flight LFB/SQ entry.  On CXL the L2 prefetcher additionally fails to
look far enough ahead, pushing traffic onto the L1 prefetcher path.

This module computes, per run:

- which fraction of would-be demand memory reads the prefetchers cover,
- how much memory traffic the prefetchers generate (including wasted
  fetches),
- the expected *residual wait* a demand access suffers on a late
  prefetch, given the tier's read latency.

Timeliness uses a dispersed-lookahead model: individual prefetches have
runway uniformly distributed in ``[0.5, 1.5] * lookahead``, which smooths
the late/timely threshold exactly the way real access streams do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.spec import WorkloadSpec
from .caches import DemandProfile

#: Fraction of prefetched lines that are never used (overshoot past the
#: end of streams, wrong-path strides).  Constant across tiers; the
#: paper's R_Mem signal is about where prefetches go, not their accuracy.
PREFETCH_WASTE_RATIO = 0.15

#: On slow tiers the L2 prefetcher progressively yields to the L1
#: prefetcher issuing directly to the uncore (paper 4.2.1).  This is the
#: maximum share of L2-prefetch traffic that shifts to the L1 path when
#: latency far exceeds the lookahead runway.
L2_TO_L1_SHIFT_MAX = 0.45


@dataclass(frozen=True)
class PrefetchProfile:
    """Prefetch flow for one run on one memory configuration."""

    #: Demand memory reads covered (converted to cache/LFB hits).
    covered: float
    #: Demand reads still going to memory as demand (offcore) reads.
    demand_mem_reads: float
    #: Prefetch requests fetching from memory (useful + wasted).
    pf_mem_reads: float
    #: Memory-bound prefetch traffic split by issuing prefetcher.
    pf_l1_mem: float
    pf_l2_mem: float
    #: Offcore L1-prefetch requests: any response (P7) and L3 hits (P8).
    pf_l1_any: float
    pf_l1_l3_hit: float
    #: Offcore L2-prefetch requests: any response (P9) and L3 hits (P10).
    pf_l2_any: float
    pf_l2_l3_hit: float
    #: Expected residual wait (ns) per covered line at this latency.
    late_wait_ns: float
    #: Fraction of covered lines arriving late at all.
    late_fraction: float

    def __post_init__(self):
        for name in ("covered", "demand_mem_reads", "pf_mem_reads",
                     "pf_l1_mem", "pf_l2_mem", "pf_l1_any", "pf_l1_l3_hit",
                     "pf_l2_any", "pf_l2_l3_hit", "late_wait_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.late_fraction <= 1.0:
            raise ValueError("late_fraction must be within [0, 1]")


def expected_late_wait_ns(latency_ns: float, lookahead_ns: float) -> float:
    """E[max(0, latency - runway)] with runway ~ U[0, 2] * lookahead.

    The runway - how far ahead of its consumer each individual prefetch
    is issued - spreads from "just issued" to twice the mean lookahead.
    Piecewise closed form:

    - ``latency >= 2 * lookahead``: every prefetch is late ->
      ``latency - lookahead``;
    - otherwise: ``latency^2 / (4 * lookahead)``.

    In the usual operating range (latency below twice the lookahead)
    the expected wait is *quadratic in latency*, so the DRAM->slow-tier
    growth of prefetch-induced stalls is ``(L_slow / L_DRAM)^2``
    regardless of the individual lookahead - the near-uniform
    amplification that lets the paper's single calibrated ``k_cache``
    generalize across workloads.
    """
    if latency_ns <= 0:
        return 0.0
    if lookahead_ns <= 0:
        return latency_ns
    if latency_ns >= 2.0 * lookahead_ns:
        return latency_ns - lookahead_ns
    # Explicit product, not ``** 2``: must match the batched kernel
    # bit-for-bit (docs/SOLVER.md replay contract).
    return latency_ns * latency_ns / (4.0 * lookahead_ns)


def late_fraction(latency_ns: float, lookahead_ns: float) -> float:
    """P[latency > runway] under the same dispersed-runway model."""
    if latency_ns <= 0:
        return 0.0
    if lookahead_ns <= 0:
        return 1.0
    return min(1.0, latency_ns / (2.0 * lookahead_ns))


@dataclass(frozen=True)
class BatchPrefetchFlow:
    """Struct-of-arrays :class:`PrefetchProfile` for the batched solver.

    Only the fields the inner cycle-accounting loop consumes are stored
    as arrays; the full per-element :class:`PrefetchProfile` is
    reconstructed scalar-side once the fixed point has converged.
    """

    covered: np.ndarray
    demand_mem_reads: np.ndarray
    pf_mem_reads: np.ndarray
    pf_l1_mem: np.ndarray
    pf_l2_mem: np.ndarray
    pf_l1_any: np.ndarray
    pf_l1_l3_hit: np.ndarray
    pf_l2_any: np.ndarray
    pf_l2_l3_hit: np.ndarray
    late_wait_ns: np.ndarray
    late_fraction: np.ndarray


def expected_late_wait_ns_batch(latency_ns: np.ndarray,
                                lookahead_ns: np.ndarray) -> np.ndarray:
    """Vectorized :func:`expected_late_wait_ns` (same arithmetic/order)."""
    safe_lookahead = np.where(lookahead_ns > 0, lookahead_ns, 1.0)
    quadratic = latency_ns * latency_ns / (4.0 * safe_lookahead)
    wait = np.where(latency_ns >= 2.0 * lookahead_ns,
                    latency_ns - lookahead_ns, quadratic)
    wait = np.where(lookahead_ns <= 0, latency_ns, wait)
    return np.where(latency_ns <= 0, 0.0, wait)


def late_fraction_batch(latency_ns: np.ndarray,
                        lookahead_ns: np.ndarray) -> np.ndarray:
    """Vectorized :func:`late_fraction` (same arithmetic/order)."""
    safe_lookahead = np.where(lookahead_ns > 0, lookahead_ns, 1.0)
    late = np.minimum(1.0, latency_ns / (2.0 * safe_lookahead))
    late = np.where(lookahead_ns <= 0, 1.0, late)
    return np.where(latency_ns <= 0, 0.0, late)


def prefetch_profile_batch(pf_friend: np.ndarray, pf_l1_share: np.ndarray,
                           pf_lookahead_ns: np.ndarray,
                           mem_reads_potential: np.ndarray,
                           l3_hit_rate: np.ndarray,
                           read_latency_ns: np.ndarray) -> BatchPrefetchFlow:
    """Vectorized :func:`prefetch_profile` over per-element spec arrays.

    Mirrors the scalar function operation-for-operation so a batch lane
    carries exactly the doubles the scalar path would compute at the
    same read latency.
    """
    covered = mem_reads_potential * pf_friend
    demand_mem_reads = mem_reads_potential - covered
    pf_mem_reads = covered * (1.0 + PREFETCH_WASTE_RATIO)

    late = late_fraction_batch(read_latency_ns, pf_lookahead_ns)
    l1_share = np.minimum(
        1.0, pf_l1_share + L2_TO_L1_SHIFT_MAX * late *
        (1.0 - pf_l1_share))
    pf_l1_mem = pf_mem_reads * l1_share
    pf_l2_mem = pf_mem_reads - pf_l1_mem

    miss_rate = np.maximum(1e-9, 1.0 - l3_hit_rate)
    pf_l1_any = pf_l1_mem / miss_rate
    pf_l1_l3_hit = pf_l1_any - pf_l1_mem
    pf_l2_any = pf_l2_mem / miss_rate
    pf_l2_l3_hit = pf_l2_any - pf_l2_mem

    wait = expected_late_wait_ns_batch(read_latency_ns, pf_lookahead_ns)

    return BatchPrefetchFlow(
        covered=covered,
        demand_mem_reads=demand_mem_reads,
        pf_mem_reads=pf_mem_reads,
        pf_l1_mem=pf_l1_mem,
        pf_l2_mem=pf_l2_mem,
        pf_l1_any=pf_l1_any,
        pf_l1_l3_hit=pf_l1_l3_hit,
        pf_l2_any=pf_l2_any,
        pf_l2_l3_hit=pf_l2_l3_hit,
        late_wait_ns=wait,
        late_fraction=late,
    )


def prefetch_profile(spec: WorkloadSpec, demand: DemandProfile,
                     read_latency_ns: float) -> PrefetchProfile:
    """Prefetch accounting for one run at a given mean read latency.

    Coverage itself is intrinsic (``pf_friend``); what latency changes is
    (a) timeliness - the residual wait per covered line - and (b) the
    L1/L2 split, because long latency defeats the L2 prefetcher's runway
    and shifts traffic onto the L1 prefetch path (paper Fig. 5a).
    """
    covered = demand.mem_reads_potential * spec.pf_friend
    demand_mem_reads = demand.mem_reads_potential - covered
    pf_mem_reads = covered * (1.0 + PREFETCH_WASTE_RATIO)

    late = late_fraction(read_latency_ns, spec.pf_lookahead_ns)
    l1_share = min(
        1.0, spec.pf_l1_share + L2_TO_L1_SHIFT_MAX * late *
        (1.0 - spec.pf_l1_share))
    pf_l1_mem = pf_mem_reads * l1_share
    pf_l2_mem = pf_mem_reads - pf_l1_mem

    # Offcore prefetch requests also probe the L3; the memory-bound
    # subset above is the L3-miss remainder of a larger request stream
    # whose hit rate matches the demand stream's.
    l3_hit = demand.l3_hit_rate
    miss_rate = max(1e-9, 1.0 - l3_hit)
    pf_l1_any = pf_l1_mem / miss_rate
    pf_l1_l3_hit = pf_l1_any - pf_l1_mem
    pf_l2_any = pf_l2_mem / miss_rate
    pf_l2_l3_hit = pf_l2_any - pf_l2_mem

    wait = expected_late_wait_ns(read_latency_ns, spec.pf_lookahead_ns)

    return PrefetchProfile(
        covered=covered,
        demand_mem_reads=demand_mem_reads,
        pf_mem_reads=pf_mem_reads,
        pf_l1_mem=pf_l1_mem,
        pf_l2_mem=pf_l2_mem,
        pf_l1_any=pf_l1_any,
        pf_l1_l3_hit=pf_l1_l3_hit,
        pf_l2_any=pf_l2_any,
        pf_l2_l3_hit=pf_l2_l3_hit,
        late_wait_ns=wait,
        late_fraction=late,
    )
