"""Analytic out-of-order core model: cycle accounting at fixed latency.

Given a workload, a platform, and the (already-solved) memory latencies,
this module computes the run's cycle breakdown: base execution cycles
plus the three orthogonal memory stall components the paper decomposes
slowdown into (Fig. 2):

- ``s_llc``     - demand-read stalls: the exposed share of memory-active
                  cycles, where memory-active cycles follow Little's law
                  ``C = N * L / MLP`` (paper Eq. 3);
- ``s_cache``   - cache/prefetch stalls: residual waits on late
                  prefetches plus LFB-contention stalls (section 4.2);
- ``s_sb``      - store stalls: SB-full backpressure (section 4.3).

The accounting is self-referential (SB occupancy and prefetch in-flight
counts depend on total cycles, which depend on the stalls), so
:func:`account_cycles` runs a damped inner fixed point; it converges in
a few tens of iterations for every workload in the suites.

Ground-truth-only effects
-------------------------
Two correction terms reduce *actual* stall exposure at high latency in
ways DRAM profiling cannot reveal - they reproduce the paper's
overestimation classes (section 4.4.4):

- burst hiding: workloads with bursty MLP (AI) overlap more latency than
  their average MLP suggests;
- hyper-parallel overlap: at very high MLP the core's overlap scales
  non-linearly (pr-kron).

Both scale with *excess* latency over the local-DRAM reference, so they
vanish on DRAM and silently improve CXL runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..workloads.spec import WorkloadSpec
from .buffers import (effective_mlp, lfb_contention_stalls, lfb_occupancy,
                      store_backpressure_stalls)
from .caches import DemandProfile
from .config import PlatformConfig
from .prefetcher import PrefetchProfile

#: Exposure reduction per unit burstiness at saturated excess latency.
BURST_HIDE_GAIN = 0.35
#: Exposure reduction for hyper-parallel workloads (MLP >> typical).
HYPER_MLP_GAIN = 0.25
#: MLP where the hyper-parallel correction starts / saturates.
HYPER_MLP_START = 8.0
HYPER_MLP_SPAN = 8.0
#: Latency scale (ns) for the ground-truth-only corrections.
CORRECTION_SCALE_NS = 300.0
#: Prefetch-wait exposure relative to demand-stall exposure.
PF_EXPOSURE_FACTOR = 0.85

#: Load-to-use latency of an L2 hit (cycles) and the concurrency over
#: which L2/L3-hit short stalls overlap.  These drive the
#: latency-insensitive stall mass in the cache counter bands.
L2_HIT_LATENCY_CYCLES = 14.0
SHORT_STALL_OVERLAP = 3.0

_MAX_ITERATIONS = 200
_RELATIVE_TOLERANCE = 1e-10
_DAMPING = 0.6


@dataclass(frozen=True)
class LatencyContext:
    """The memory latencies one accounting pass runs under.

    ``observed_read_ns`` is what demand reads experience on average -
    the blended tier latency after near-buffer absorption (this is what
    the PMU's offcore-outstanding counters integrate).
    ``tier_read_ns`` is the raw blended backend latency - what prefetch
    timeliness is measured against (prefetches miss the near buffers).
    ``rfo_ns`` is the blended store-ownership latency.
    ``reference_idle_ns`` anchors the ground-truth-only corrections and
    MLP growth: the platform's idle local-DRAM latency.
    """

    observed_read_ns: float
    tier_read_ns: float
    rfo_ns: float
    reference_idle_ns: float

    def __post_init__(self):
        for name in ("observed_read_ns", "tier_read_ns", "rfo_ns",
                     "reference_idle_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class CycleBreakdown:
    """Per-core cycle accounting for one run."""

    #: Total per-core cycles (the model's ``c``).
    cycles: float
    #: Cycles with a perfect memory system.
    base_cycles: float
    #: Demand-read stall cycles (exposed), the ground truth behind P3.
    s_llc: float
    #: Cache/prefetch stall cycles: late-prefetch waits + LFB contention.
    #: This is the latency-*sensitive* part that grows on slow tiers.
    s_cache: float
    #: Latency-insensitive short stalls on L2-hit demand loads.  They
    #: appear inside the L1-miss stall counter band but do not change
    #: across memory tiers - the dilution that forces CAMP to weight
    #: cache stalls by R_LFB-hit x R_Mem (Eq. 6).
    s_l2_hit: float
    #: Latency-insensitive stalls on L3-hit demand loads (the L2-miss
    #: stall counter band's insensitive mass).
    s_l3_hit: float
    #: Store Buffer backpressure stall cycles (ground truth behind P6).
    s_sb: float
    #: Memory-active cycles C (>=1 outstanding demand read), behind P13.
    memory_active: float
    #: Sustained demand-read MLP.
    mlp_effective: float
    #: Mean LFB entries held by L1-prefetch in-flight requests.
    pf_l1_inflight: float
    #: Effective exposed-stall fraction after ground-truth corrections.
    exposure_effective: float
    #: Whether the inner fixed point converged.
    converged: bool

    @property
    def memory_stalls(self) -> float:
        return (self.s_llc + self.s_cache + self.s_sb +
                self.s_l2_hit + self.s_l3_hit)

    @property
    def cpi(self) -> float:
        return self.cycles  # callers divide by per-core instructions


def _saturating(excess_ns: float, scale_ns: float) -> float:
    if excess_ns <= 0:
        return 0.0
    return 1.0 - math.exp(-excess_ns / scale_ns)


def exposure_corrections(spec: WorkloadSpec, mlp_eff: float,
                         observed_read_ns: float,
                         reference_idle_ns: float) -> float:
    """Ground-truth multiplier (<= 1) on stall exposure at high latency."""
    sat = _saturating(observed_read_ns - reference_idle_ns,
                      CORRECTION_SCALE_NS)
    if sat <= 0:
        return 1.0
    burst = BURST_HIDE_GAIN * spec.burstiness * sat
    hyper_level = min(1.0, max(0.0, (mlp_eff - HYPER_MLP_START) /
                               HYPER_MLP_SPAN))
    hyper = HYPER_MLP_GAIN * hyper_level * sat
    return max(0.1, 1.0 - burst - hyper)


def prefetch_overlap(mlp_eff: float, platform: PlatformConfig) -> float:
    """Concurrency across which late-prefetch waits overlap.

    Prefetch streams are more parallel than demand streams (they are
    generated ahead of use), bounded by the SuperQueue.
    """
    return min(float(platform.sq_entries), max(2.0, 1.2 * mlp_eff))


def account_cycles(spec: WorkloadSpec, platform: PlatformConfig,
                   demand: DemandProfile, prefetch: PrefetchProfile,
                   latency_ctx: LatencyContext) -> CycleBreakdown:
    """Solve the per-core cycle breakdown at fixed memory latencies."""
    threads = spec.threads
    instructions_per_core = spec.instructions / threads
    base_cycles = instructions_per_core * spec.base_cpi

    demand_reads_pc = prefetch.demand_mem_reads / threads
    covered_pc = prefetch.covered / threads
    pf_l1_mem_pc = prefetch.pf_l1_mem / threads
    store_rfos_pc = demand.store_mem_rfos / threads

    obs_cyc = platform.ns_to_cycles(latency_ctx.observed_read_ns)
    tier_cyc = platform.ns_to_cycles(latency_ctx.tier_read_ns)
    rfo_cyc = platform.ns_to_cycles(latency_ctx.rfo_ns)
    wait_cyc = platform.ns_to_cycles(prefetch.late_wait_ns)

    # Latency-insensitive short stalls: demand loads that hit in L2 or
    # L3 stall the pipeline briefly regardless of the memory tier.
    # Prefetchers cover the L3-hit stream as readily as the memory
    # stream (those prefetches are always timely), so only the
    # uncovered fraction stalls as demand.
    llc_cyc = platform.ns_to_cycles(platform.llc_latency_ns)
    l2_hits_pc = (demand.l1_miss_issued * spec.l2_hit) / threads
    l3_hits_pc = (demand.l2_misses * demand.l3_hit_rate *
                  (1.0 - spec.pf_friend)) / threads
    s_l2_hit = (l2_hits_pc * L2_HIT_LATENCY_CYCLES *
                spec.stall_exposure / SHORT_STALL_OVERLAP)
    s_l3_hit = (l3_hits_pc * llc_cyc *
                spec.stall_exposure / SHORT_STALL_OVERLAP)

    cycles = base_cycles + demand_reads_pc * obs_cyc / max(1.0, spec.mlp)
    mlp_eff = spec.mlp
    pf_inflight = 0.0
    memory_active = 0.0
    s_llc = s_cache = s_sb = 0.0
    exposure_eff = spec.stall_exposure
    converged = False

    for _ in range(_MAX_ITERATIONS):
        pf_inflight = pf_l1_mem_pc * tier_cyc / max(cycles, 1.0)
        mlp_eff = effective_mlp(spec, platform, latency_ctx.observed_read_ns,
                                latency_ctx.reference_idle_ns, pf_inflight)
        memory_active = demand_reads_pc * obs_cyc / mlp_eff
        exposure_eff = spec.stall_exposure * exposure_corrections(
            spec, mlp_eff, latency_ctx.observed_read_ns,
            latency_ctx.reference_idle_ns)
        s_llc = memory_active * exposure_eff

        pf_overlap = prefetch_overlap(mlp_eff, platform)
        pf_exposure = spec.stall_exposure * PF_EXPOSURE_FACTOR
        # Late-prefetch waits only surface when prefetched lines dominate
        # the memory stream; sparse late prefetches hide under the full
        # demand-miss stalls surrounding them (a residual wait is always
        # shorter than the neighbouring demand stall it overlaps).
        total_mem = covered_pc + demand_reads_pc
        pf_dominance = covered_pc / total_mem if total_mem > 0 else 0.0
        late_stalls = (covered_pc * wait_cyc * pf_exposure *
                       pf_dominance / pf_overlap)
        occupancy = lfb_occupancy(mlp_eff, pf_inflight)
        contention = lfb_contention_stalls(occupancy, platform,
                                           memory_active)
        s_cache = late_stalls + contention

        s_sb = store_backpressure_stalls(spec, platform, store_rfos_pc,
                                         rfo_cyc, cycles)

        new_cycles = (base_cycles + s_llc + s_cache + s_sb +
                      s_l2_hit + s_l3_hit)
        if abs(new_cycles - cycles) <= _RELATIVE_TOLERANCE * cycles:
            cycles = new_cycles
            converged = True
            break
        cycles = _DAMPING * new_cycles + (1.0 - _DAMPING) * cycles

    return CycleBreakdown(
        cycles=cycles,
        base_cycles=base_cycles,
        s_llc=s_llc,
        s_cache=s_cache,
        s_l2_hit=s_l2_hit,
        s_l3_hit=s_l3_hit,
        s_sb=s_sb,
        memory_active=memory_active,
        mlp_effective=mlp_eff,
        pf_l1_inflight=pf_inflight,
        exposure_effective=exposure_eff,
        converged=converged,
    )
