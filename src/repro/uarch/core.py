"""Analytic out-of-order core model: cycle accounting at fixed latency.

Given a workload, a platform, and the (already-solved) memory latencies,
this module computes the run's cycle breakdown: base execution cycles
plus the three orthogonal memory stall components the paper decomposes
slowdown into (Fig. 2):

- ``s_llc``     - demand-read stalls: the exposed share of memory-active
                  cycles, where memory-active cycles follow Little's law
                  ``C = N * L / MLP`` (paper Eq. 3);
- ``s_cache``   - cache/prefetch stalls: residual waits on late
                  prefetches plus LFB-contention stalls (section 4.2);
- ``s_sb``      - store stalls: SB-full backpressure (section 4.3).

The accounting is self-referential (SB occupancy and prefetch in-flight
counts depend on total cycles, which depend on the stalls), so
:func:`account_cycles` runs a damped inner fixed point; it converges in
a few tens of iterations for every workload in the suites.

Ground-truth-only effects
-------------------------
Two correction terms reduce *actual* stall exposure at high latency in
ways DRAM profiling cannot reveal - they reproduce the paper's
overestimation classes (section 4.4.4):

- burst hiding: workloads with bursty MLP (AI) overlap more latency than
  their average MLP suggests;
- hyper-parallel overlap: at very high MLP the core's overlap scales
  non-linearly (pr-kron).

Both scale with *excess* latency over the local-DRAM reference, so they
vanish on DRAM and silently improve CXL runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.spec import WorkloadSpec
from .buffers import (effective_mlp, effective_mlp_batch,
                      lfb_contention_stalls, lfb_contention_stalls_batch,
                      lfb_occupancy, lfb_occupancy_batch,
                      store_backpressure_stalls,
                      store_backpressure_stalls_batch)
from .caches import DemandProfile
from .config import PlatformConfig
from .prefetcher import BatchPrefetchFlow, PrefetchProfile

#: Exposure reduction per unit burstiness at saturated excess latency.
BURST_HIDE_GAIN = 0.35
#: Exposure reduction for hyper-parallel workloads (MLP >> typical).
HYPER_MLP_GAIN = 0.25
#: MLP where the hyper-parallel correction starts / saturates.
HYPER_MLP_START = 8.0
HYPER_MLP_SPAN = 8.0
#: Latency scale (ns) for the ground-truth-only corrections.
CORRECTION_SCALE_NS = 300.0
#: Prefetch-wait exposure relative to demand-stall exposure.
PF_EXPOSURE_FACTOR = 0.85

#: Load-to-use latency of an L2 hit (cycles) and the concurrency over
#: which L2/L3-hit short stalls overlap.  These drive the
#: latency-insensitive stall mass in the cache counter bands.
L2_HIT_LATENCY_CYCLES = 14.0
SHORT_STALL_OVERLAP = 3.0

_MAX_ITERATIONS = 200
_RELATIVE_TOLERANCE = 1e-10
_DAMPING = 0.6


@dataclass(frozen=True)
class LatencyContext:
    """The memory latencies one accounting pass runs under.

    ``observed_read_ns`` is what demand reads experience on average -
    the blended tier latency after near-buffer absorption (this is what
    the PMU's offcore-outstanding counters integrate).
    ``tier_read_ns`` is the raw blended backend latency - what prefetch
    timeliness is measured against (prefetches miss the near buffers).
    ``rfo_ns`` is the blended store-ownership latency.
    ``reference_idle_ns`` anchors the ground-truth-only corrections and
    MLP growth: the platform's idle local-DRAM latency.
    """

    observed_read_ns: float
    tier_read_ns: float
    rfo_ns: float
    reference_idle_ns: float

    def __post_init__(self):
        for name in ("observed_read_ns", "tier_read_ns", "rfo_ns",
                     "reference_idle_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class CycleBreakdown:
    """Per-core cycle accounting for one run."""

    #: Total per-core cycles (the model's ``c``).
    cycles: float
    #: Cycles with a perfect memory system.
    base_cycles: float
    #: Demand-read stall cycles (exposed), the ground truth behind P3.
    s_llc: float
    #: Cache/prefetch stall cycles: late-prefetch waits + LFB contention.
    #: This is the latency-*sensitive* part that grows on slow tiers.
    s_cache: float
    #: Latency-insensitive short stalls on L2-hit demand loads.  They
    #: appear inside the L1-miss stall counter band but do not change
    #: across memory tiers - the dilution that forces CAMP to weight
    #: cache stalls by R_LFB-hit x R_Mem (Eq. 6).
    s_l2_hit: float
    #: Latency-insensitive stalls on L3-hit demand loads (the L2-miss
    #: stall counter band's insensitive mass).
    s_l3_hit: float
    #: Store Buffer backpressure stall cycles (ground truth behind P6).
    s_sb: float
    #: Memory-active cycles C (>=1 outstanding demand read), behind P13.
    memory_active: float
    #: Sustained demand-read MLP.
    mlp_effective: float
    #: Mean LFB entries held by L1-prefetch in-flight requests.
    pf_l1_inflight: float
    #: Effective exposed-stall fraction after ground-truth corrections.
    exposure_effective: float
    #: Whether the inner fixed point converged.
    converged: bool

    @property
    def memory_stalls(self) -> float:
        return (self.s_llc + self.s_cache + self.s_sb +
                self.s_l2_hit + self.s_l3_hit)

    @property
    def cpi(self) -> float:
        return self.cycles  # callers divide by per-core instructions


def _saturating(excess_ns: float, scale_ns: float) -> float:
    if excess_ns <= 0:
        return 0.0
    # np.exp, not math.exp: the batched solver must replay this
    # bit-for-bit and the two libms differ in the last ulp.
    return 1.0 - float(np.exp(-excess_ns / scale_ns))


def exposure_corrections(spec: WorkloadSpec, mlp_eff: float,
                         observed_read_ns: float,
                         reference_idle_ns: float) -> float:
    """Ground-truth multiplier (<= 1) on stall exposure at high latency."""
    sat = _saturating(observed_read_ns - reference_idle_ns,
                      CORRECTION_SCALE_NS)
    if sat <= 0:
        return 1.0
    burst = BURST_HIDE_GAIN * spec.burstiness * sat
    hyper_level = min(1.0, max(0.0, (mlp_eff - HYPER_MLP_START) /
                               HYPER_MLP_SPAN))
    hyper = HYPER_MLP_GAIN * hyper_level * sat
    return max(0.1, 1.0 - burst - hyper)


def prefetch_overlap(mlp_eff: float, platform: PlatformConfig) -> float:
    """Concurrency across which late-prefetch waits overlap.

    Prefetch streams are more parallel than demand streams (they are
    generated ahead of use), bounded by the SuperQueue.
    """
    return min(float(platform.sq_entries), max(2.0, 1.2 * mlp_eff))


def account_cycles(spec: WorkloadSpec, platform: PlatformConfig,
                   demand: DemandProfile, prefetch: PrefetchProfile,
                   latency_ctx: LatencyContext) -> CycleBreakdown:
    """Solve the per-core cycle breakdown at fixed memory latencies."""
    threads = spec.threads
    instructions_per_core = spec.instructions / threads
    base_cycles = instructions_per_core * spec.base_cpi

    demand_reads_pc = prefetch.demand_mem_reads / threads
    covered_pc = prefetch.covered / threads
    pf_l1_mem_pc = prefetch.pf_l1_mem / threads
    store_rfos_pc = demand.store_mem_rfos / threads

    obs_cyc = platform.ns_to_cycles(latency_ctx.observed_read_ns)
    tier_cyc = platform.ns_to_cycles(latency_ctx.tier_read_ns)
    rfo_cyc = platform.ns_to_cycles(latency_ctx.rfo_ns)
    wait_cyc = platform.ns_to_cycles(prefetch.late_wait_ns)

    # Latency-insensitive short stalls: demand loads that hit in L2 or
    # L3 stall the pipeline briefly regardless of the memory tier.
    # Prefetchers cover the L3-hit stream as readily as the memory
    # stream (those prefetches are always timely), so only the
    # uncovered fraction stalls as demand.
    llc_cyc = platform.ns_to_cycles(platform.llc_latency_ns)
    l2_hits_pc = (demand.l1_miss_issued * spec.l2_hit) / threads
    l3_hits_pc = (demand.l2_misses * demand.l3_hit_rate *
                  (1.0 - spec.pf_friend)) / threads
    s_l2_hit = (l2_hits_pc * L2_HIT_LATENCY_CYCLES *
                spec.stall_exposure / SHORT_STALL_OVERLAP)
    s_l3_hit = (l3_hits_pc * llc_cyc *
                spec.stall_exposure / SHORT_STALL_OVERLAP)

    cycles = base_cycles + demand_reads_pc * obs_cyc / max(1.0, spec.mlp)
    mlp_eff = spec.mlp
    pf_inflight = 0.0
    memory_active = 0.0
    s_llc = s_cache = s_sb = 0.0
    exposure_eff = spec.stall_exposure
    converged = False

    for _ in range(_MAX_ITERATIONS):
        pf_inflight = pf_l1_mem_pc * tier_cyc / max(cycles, 1.0)
        mlp_eff = effective_mlp(spec, platform, latency_ctx.observed_read_ns,
                                latency_ctx.reference_idle_ns, pf_inflight)
        memory_active = demand_reads_pc * obs_cyc / mlp_eff
        exposure_eff = spec.stall_exposure * exposure_corrections(
            spec, mlp_eff, latency_ctx.observed_read_ns,
            latency_ctx.reference_idle_ns)
        s_llc = memory_active * exposure_eff

        pf_overlap = prefetch_overlap(mlp_eff, platform)
        pf_exposure = spec.stall_exposure * PF_EXPOSURE_FACTOR
        # Late-prefetch waits only surface when prefetched lines dominate
        # the memory stream; sparse late prefetches hide under the full
        # demand-miss stalls surrounding them (a residual wait is always
        # shorter than the neighbouring demand stall it overlaps).
        total_mem = covered_pc + demand_reads_pc
        pf_dominance = covered_pc / total_mem if total_mem > 0 else 0.0
        late_stalls = (covered_pc * wait_cyc * pf_exposure *
                       pf_dominance / pf_overlap)
        occupancy = lfb_occupancy(mlp_eff, pf_inflight)
        contention = lfb_contention_stalls(occupancy, platform,
                                           memory_active)
        s_cache = late_stalls + contention

        s_sb = store_backpressure_stalls(spec, platform, store_rfos_pc,
                                         rfo_cyc, cycles)

        new_cycles = (base_cycles + s_llc + s_cache + s_sb +
                      s_l2_hit + s_l3_hit)
        if abs(new_cycles - cycles) <= _RELATIVE_TOLERANCE * cycles:
            cycles = new_cycles
            converged = True
            break
        cycles = _DAMPING * new_cycles + (1.0 - _DAMPING) * cycles

    return CycleBreakdown(
        cycles=cycles,
        base_cycles=base_cycles,
        s_llc=s_llc,
        s_cache=s_cache,
        s_l2_hit=s_l2_hit,
        s_l3_hit=s_l3_hit,
        s_sb=s_sb,
        memory_active=memory_active,
        mlp_effective=mlp_eff,
        pf_l1_inflight=pf_inflight,
        exposure_effective=exposure_eff,
        converged=converged,
    )


# --------------------------------------------------------------------------
# Batched cycle accounting (docs/SOLVER.md)
#
# The same damped inner fixed point as `account_cycles`, evaluated for N
# (workload, placement) problems as numpy arrays with per-element
# convergence masking.  Each lane performs the identical arithmetic in
# the identical order as a scalar call, so a batch lane's doubles are
# bit-equal to the scalar result - `Machine.run_batch`'s replay
# contract rests on this.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchLatencyContext:
    """Struct-of-arrays :class:`LatencyContext` for N problems."""

    observed_read_ns: np.ndarray
    tier_read_ns: np.ndarray
    rfo_ns: np.ndarray
    reference_idle_ns: np.ndarray

    def __post_init__(self):
        for name in ("observed_read_ns", "tier_read_ns", "rfo_ns",
                     "reference_idle_ns"):
            if bool(np.any(getattr(self, name) <= 0)):
                raise ValueError(f"{name} must be positive in every lane")


@dataclass(frozen=True)
class BatchCoreParams:
    """Per-element workload/platform/demand constants for the batch loop.

    Everything the inner fixed point consumes that does *not* change
    across outer-solver iterations, flattened to float64 arrays.
    """

    # Workload spec fields.
    threads: np.ndarray
    instructions: np.ndarray
    base_cpi: np.ndarray
    mlp: np.ndarray
    mlp_headroom: np.ndarray
    stall_exposure: np.ndarray
    burstiness: np.ndarray
    store_burst: np.ndarray
    pf_friend: np.ndarray
    l2_hit: np.ndarray
    # Platform fields.
    lfb_entries: np.ndarray
    sq_entries: np.ndarray
    sb_entries: np.ndarray
    sb_drain_parallelism: np.ndarray
    frequency_ghz: np.ndarray
    llc_latency_ns: np.ndarray
    # Demand-profile fields.
    l1_miss_issued: np.ndarray
    l2_misses: np.ndarray
    l3_hit_rate: np.ndarray
    store_mem_rfos: np.ndarray

    @classmethod
    def from_problems(cls, specs, platform, demands) -> "BatchCoreParams":
        """``platform`` is one :class:`PlatformConfig` shared by every
        lane, or a per-lane sequence of them (cross-machine batches,
        docs/SOLVER.md).  A uniform per-lane sequence packs the exact
        arrays ``np.full`` would — the same float in every slot — so
        single-platform batches are unchanged bit for bit.
        """
        def lanes(values) -> np.ndarray:
            return np.asarray(list(values), dtype=np.float64)

        if isinstance(platform, PlatformConfig):
            platforms = [platform] * len(specs)
        else:
            platforms = list(platform)
            if len(platforms) != len(specs):
                raise ValueError("per-lane platforms must align with specs")
        return cls(
            threads=lanes(s.threads for s in specs),
            instructions=lanes(s.instructions for s in specs),
            base_cpi=lanes(s.base_cpi for s in specs),
            mlp=lanes(s.mlp for s in specs),
            mlp_headroom=lanes(s.mlp_headroom for s in specs),
            stall_exposure=lanes(s.stall_exposure for s in specs),
            burstiness=lanes(s.burstiness for s in specs),
            store_burst=lanes(s.store_burst for s in specs),
            pf_friend=lanes(s.pf_friend for s in specs),
            l2_hit=lanes(s.l2_hit for s in specs),
            lfb_entries=lanes(float(p.lfb_entries) for p in platforms),
            sq_entries=lanes(float(p.sq_entries) for p in platforms),
            sb_entries=lanes(float(p.sb_entries) for p in platforms),
            sb_drain_parallelism=lanes(
                float(p.sb_drain_parallelism) for p in platforms),
            frequency_ghz=lanes(
                float(p.frequency_ghz) for p in platforms),
            llc_latency_ns=lanes(
                float(p.llc_latency_ns) for p in platforms),
            l1_miss_issued=lanes(d.l1_miss_issued for d in demands),
            l2_misses=lanes(d.l2_misses for d in demands),
            l3_hit_rate=lanes(d.l3_hit_rate for d in demands),
            store_mem_rfos=lanes(d.store_mem_rfos for d in demands),
        )


@dataclass(frozen=True)
class BatchCycleBreakdown:
    """Struct-of-arrays :class:`CycleBreakdown`; ``converged`` is a
    per-element boolean mask."""

    cycles: np.ndarray
    base_cycles: np.ndarray
    s_llc: np.ndarray
    s_cache: np.ndarray
    s_l2_hit: np.ndarray
    s_l3_hit: np.ndarray
    s_sb: np.ndarray
    memory_active: np.ndarray
    mlp_effective: np.ndarray
    pf_l1_inflight: np.ndarray
    exposure_effective: np.ndarray
    converged: np.ndarray

    def element(self, index: int) -> CycleBreakdown:
        """Materialize one lane as a scalar :class:`CycleBreakdown`."""
        return CycleBreakdown(
            cycles=float(self.cycles[index]),
            base_cycles=float(self.base_cycles[index]),
            s_llc=float(self.s_llc[index]),
            s_cache=float(self.s_cache[index]),
            s_l2_hit=float(self.s_l2_hit[index]),
            s_l3_hit=float(self.s_l3_hit[index]),
            s_sb=float(self.s_sb[index]),
            memory_active=float(self.memory_active[index]),
            mlp_effective=float(self.mlp_effective[index]),
            pf_l1_inflight=float(self.pf_l1_inflight[index]),
            exposure_effective=float(self.exposure_effective[index]),
            converged=bool(self.converged[index]),
        )


def exposure_corrections_batch(burstiness: np.ndarray, mlp_eff: np.ndarray,
                               observed_read_ns: np.ndarray,
                               reference_idle_ns: np.ndarray) -> np.ndarray:
    """Vectorized :func:`exposure_corrections` (via :func:`_saturating`)."""
    excess = observed_read_ns - reference_idle_ns
    sat = np.where(excess <= 0, 0.0,
                   1.0 - np.exp(-excess / CORRECTION_SCALE_NS))
    burst = BURST_HIDE_GAIN * burstiness * sat
    hyper_level = np.minimum(1.0, np.maximum(
        0.0, (mlp_eff - HYPER_MLP_START) / HYPER_MLP_SPAN))
    hyper = HYPER_MLP_GAIN * hyper_level * sat
    corrected = np.maximum(0.1, 1.0 - burst - hyper)
    return np.where(sat <= 0, 1.0, corrected)


def account_cycles_batch(params: BatchCoreParams, flow: BatchPrefetchFlow,
                         latency_ctx: BatchLatencyContext,
                         relative_tolerance: float = _RELATIVE_TOLERANCE
                         ) -> BatchCycleBreakdown:
    """Solve N per-core cycle breakdowns at fixed memory latencies.

    One damped loop over all lanes; lanes freeze individually the
    iteration they meet the scalar solver's convergence criterion, so
    every retained term carries exactly the doubles the scalar
    `account_cycles` would have produced for that problem.

    ``relative_tolerance`` exists for the float32 fast path
    (``uarch/fastpath.py``): the default 1e-10 criterion sits below
    float32 machine epsilon and would never trigger, so the f32 phase
    passes a looser one.  Every bit-identity-bearing caller keeps the
    default.
    """
    threads = params.threads
    instructions_per_core = params.instructions / threads
    base_cycles = instructions_per_core * params.base_cpi

    demand_reads_pc = flow.demand_mem_reads / threads
    covered_pc = flow.covered / threads
    pf_l1_mem_pc = flow.pf_l1_mem / threads
    store_rfos_pc = params.store_mem_rfos / threads

    frequency_ghz = params.frequency_ghz
    obs_cyc = latency_ctx.observed_read_ns * frequency_ghz
    tier_cyc = latency_ctx.tier_read_ns * frequency_ghz
    rfo_cyc = latency_ctx.rfo_ns * frequency_ghz
    wait_cyc = flow.late_wait_ns * frequency_ghz

    llc_cyc = params.llc_latency_ns * frequency_ghz
    l2_hits_pc = (params.l1_miss_issued * params.l2_hit) / threads
    l3_hits_pc = (params.l2_misses * params.l3_hit_rate *
                  (1.0 - params.pf_friend)) / threads
    s_l2_hit = (l2_hits_pc * L2_HIT_LATENCY_CYCLES *
                params.stall_exposure / SHORT_STALL_OVERLAP)
    s_l3_hit = (l3_hits_pc * llc_cyc *
                params.stall_exposure / SHORT_STALL_OVERLAP)

    cycles = base_cycles + demand_reads_pc * obs_cyc / np.maximum(
        1.0, params.mlp)
    mlp_eff = params.mlp.copy()
    pf_inflight = np.zeros_like(cycles)
    memory_active = np.zeros_like(cycles)
    s_llc = np.zeros_like(cycles)
    s_cache = np.zeros_like(cycles)
    s_sb = np.zeros_like(cycles)
    exposure_eff = params.stall_exposure.copy()
    converged = np.zeros(cycles.shape, dtype=bool)
    active = np.ones(cycles.shape, dtype=bool)

    # Loop-invariant pieces the scalar loop recomputes verbatim each
    # iteration (identical doubles either way).
    pf_exposure = params.stall_exposure * PF_EXPOSURE_FACTOR
    total_mem = covered_pc + demand_reads_pc
    safe_total_mem = np.where(total_mem > 0, total_mem, 1.0)
    pf_dominance = np.where(total_mem > 0, covered_pc / safe_total_mem, 0.0)

    for _ in range(_MAX_ITERATIONS):
        pf_inflight_it = pf_l1_mem_pc * tier_cyc / np.maximum(cycles, 1.0)
        mlp_eff_it = effective_mlp_batch(
            params.mlp, params.mlp_headroom, params.lfb_entries,
            latency_ctx.observed_read_ns, latency_ctx.reference_idle_ns,
            pf_inflight_it)
        memory_active_it = demand_reads_pc * obs_cyc / mlp_eff_it
        exposure_it = params.stall_exposure * exposure_corrections_batch(
            params.burstiness, mlp_eff_it, latency_ctx.observed_read_ns,
            latency_ctx.reference_idle_ns)
        s_llc_it = memory_active_it * exposure_it

        pf_overlap = np.minimum(params.sq_entries,
                                np.maximum(2.0, 1.2 * mlp_eff_it))
        late_stalls = (covered_pc * wait_cyc * pf_exposure *
                       pf_dominance / pf_overlap)
        occupancy = lfb_occupancy_batch(mlp_eff_it, pf_inflight_it)
        contention = lfb_contention_stalls_batch(
            occupancy, params.lfb_entries, memory_active_it)
        s_cache_it = late_stalls + contention

        s_sb_it = store_backpressure_stalls_batch(
            params.store_burst, params.sb_entries,
            params.sb_drain_parallelism, store_rfos_pc, rfo_cyc, cycles)

        new_cycles = (base_cycles + s_llc_it + s_cache_it + s_sb_it +
                      s_l2_hit + s_l3_hit)
        conv_now = active & (np.abs(new_cycles - cycles) <=
                             relative_tolerance * cycles)

        # Lanes still iterating (including those converging right now)
        # retain this iteration's terms - exactly what the scalar loop
        # leaves behind when it breaks or exhausts the cap.
        pf_inflight = np.where(active, pf_inflight_it, pf_inflight)
        mlp_eff = np.where(active, mlp_eff_it, mlp_eff)
        memory_active = np.where(active, memory_active_it, memory_active)
        exposure_eff = np.where(active, exposure_it, exposure_eff)
        s_llc = np.where(active, s_llc_it, s_llc)
        s_cache = np.where(active, s_cache_it, s_cache)
        s_sb = np.where(active, s_sb_it, s_sb)

        damped = _DAMPING * new_cycles + (1.0 - _DAMPING) * cycles
        still_active = active & ~conv_now
        cycles = np.where(conv_now, new_cycles,
                          np.where(still_active, damped, cycles))
        converged = converged | conv_now
        active = still_active
        if not bool(active.any()):
            break

    return BatchCycleBreakdown(
        cycles=cycles,
        base_cycles=base_cycles,
        s_llc=s_llc,
        s_cache=s_cache,
        s_l2_hit=s_l2_hit,
        s_l3_hit=s_l3_hit,
        s_sb=s_sb,
        memory_active=memory_active,
        mlp_effective=mlp_eff,
        pf_l1_inflight=pf_inflight,
        exposure_effective=exposure_eff,
        converged=converged,
    )
