"""Demand-side cache hierarchy accounting.

Turns a :class:`~repro.workloads.spec.WorkloadSpec` plus a platform's
cache geometry into per-level demand miss counts.  This is deliberately
an *accounting* model, not a trace-driven cache simulator: the paper's
workload population is characterized by measured hit rates, and what the
downstream pipeline model needs is exactly those rates.

The one platform-dependent effect that matters for CAMP's cross-platform
claims is LLC capacity: workloads with reuse (``llc_sensitivity > 0``)
convert more LLC misses into hits on SPR/EMR's much larger caches, which
changes both absolute slowdown and its decomposition - see
:meth:`repro.workloads.spec.WorkloadSpec.l3_hit`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.spec import WorkloadSpec
from .config import PlatformConfig


@dataclass(frozen=True)
class DemandProfile:
    """Demand-load flow through the cache hierarchy (whole-run counts)."""

    #: Retired demand loads.
    loads: float
    #: Loads missing L1D in total (issued + LFB-coalesced).
    l1_misses: float
    #: L1-missing loads that hit an in-flight line in the LFB (P5).
    lfb_hits: float
    #: L1-missing loads that allocated a new LFB entry (P4).
    l1_miss_issued: float
    #: Demand reads missing L2 (reaching the LLC).
    l2_misses: float
    #: Effective LLC hit rate on this platform.
    l3_hit_rate: float
    #: Demand reads that would reach memory with prefetching disabled.
    mem_reads_potential: float
    #: Retired stores and the subset whose RFO must go to memory.
    stores: float
    store_mem_rfos: float

    def __post_init__(self):
        for name in ("loads", "l1_misses", "lfb_hits", "l1_miss_issued",
                     "l2_misses", "mem_reads_potential", "stores",
                     "store_mem_rfos"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.l3_hit_rate <= 1.0:
            raise ValueError("l3_hit_rate must be within [0, 1]")

    @property
    def lfb_hit_ratio(self) -> float:
        """The paper's R_LFB-hit: P5 / (P4 + P5)."""
        denom = self.lfb_hits + self.l1_miss_issued
        if denom <= 0:
            return 0.0
        return self.lfb_hits / denom


def demand_profile(spec: WorkloadSpec,
                   platform: PlatformConfig) -> DemandProfile:
    """Account demand loads and stores through the cache hierarchy.

    Flow: loads -> L1 (hit / miss) -> miss either coalesces onto an
    in-flight LFB line (``same_line_ratio``) or allocates an entry and
    probes L2 -> L3 -> memory.  Stores are tracked only for their
    memory-RFO subset, which is what drives Store Buffer backpressure.
    """
    loads = spec.loads
    l1_misses = loads * (1.0 - spec.l1_hit)
    lfb_hits = l1_misses * spec.same_line_ratio
    l1_miss_issued = l1_misses - lfb_hits
    l2_misses = l1_miss_issued * (1.0 - spec.l2_hit)
    l3_hit_rate = spec.l3_hit(platform.llc_mib)
    mem_reads_potential = l2_misses * (1.0 - l3_hit_rate)

    stores = spec.stores
    store_mem_rfos = stores * spec.store_miss_ratio

    return DemandProfile(
        loads=loads,
        l1_misses=l1_misses,
        lfb_hits=lfb_hits,
        l1_miss_issued=l1_miss_issued,
        l2_misses=l2_misses,
        l3_hit_rate=l3_hit_rate,
        mem_reads_potential=mem_reads_potential,
        stores=stores,
        store_mem_rfos=store_mem_rfos,
    )
