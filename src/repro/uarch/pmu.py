"""Simulated Performance Monitoring Unit.

Maps the machine model's internal cycle accounting onto the Table 5
counters (:class:`repro.core.counters.Counter`), producing the
:class:`~repro.core.counters.CounterSample` that CAMP consumes - the
same interface a Linux-perf wrapper provides on real hardware.

Counters are reported *aggregated across the workload's threads* (the
``perf stat`` default).  Per-cycle quantities (CYCLES, stall cycles,
occupancy integrals) therefore sum over cores too; every CAMP model
works on ratios, so the convention only needs to be consistent - and
aggregate counts are what bandwidth-style metrics need.

Measurement noise
-----------------
Real counter reads jitter run to run.  :func:`emit_counters` applies a
small deterministic multiplicative perturbation to every counter, seeded
by (workload, tier, counter): repeatable experiments, but no artificial
exactness for the prediction models to exploit.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, FrozenSet

from ..core.counters import Counter, CounterSample
from ..workloads.spec import WorkloadSpec
from .caches import DemandProfile
from .config import PlatformConfig
from .core import CycleBreakdown
from .prefetcher import PrefetchProfile

#: Default relative noise (sigma) applied to each counter.
DEFAULT_NOISE = 0.004

#: The counter registry: every id this PMU can emit - the paper's
#: ``P1``..``P17`` plus the architectural/bandwidth ids.  camp-lint's
#: PMU01 rule resolves every ``P<n>`` reference in source and docs
#: against this set, so a phantom or retired counter can never be
#: mentioned anywhere the predictor or a reader would trust it.
KNOWN_COUNTER_IDS: FrozenSet[str] = frozenset(
    counter.value for counter in Counter)


def known_counter_ids() -> FrozenSet[str]:
    """The ids the simulated PMU can emit (PMU01's source of truth)."""
    return KNOWN_COUNTER_IDS

#: Fraction of cache stalls that leak into the next-lower stall counter
#: (counter taxonomies on real PMUs are never perfectly clean).
_STALL_LEAK = 0.05

#: Cycles of short-stall exposure per L1-miss-to-L2-hit access, modelling
#: the small L1-level stall component that exists on every platform.
_L1_LEVEL_STALL_CYCLES = 1.2


def _noise_factor(sigma: float, *key_parts: str) -> float:
    """Deterministic ~N(1, sigma) multiplicative factor from a key."""
    if sigma <= 0:
        return 1.0
    digest = hashlib.sha256("|".join(key_parts).encode()).digest()
    u1 = max(int.from_bytes(digest[0:8], "big") / float(1 << 64), 1e-12)
    u2 = int.from_bytes(digest[8:16], "big") / float(1 << 64)
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    # Clamp at 4 sigma: counters never go negative from jitter.
    z = max(-4.0, min(4.0, z))
    return max(0.0, 1.0 + sigma * z)


def emit_counters(spec: WorkloadSpec, platform: PlatformConfig,
                  demand: DemandProfile, prefetch: PrefetchProfile,
                  breakdown: CycleBreakdown, tier_label: str,
                  noise: float = DEFAULT_NOISE,
                  seed: int = 0) -> CounterSample:
    """Render one run's internals as a per-core Table 5 counter sample."""
    threads = spec.threads

    # Demand-load retirement counters.  A timely L1-prefetched line
    # turns the demand access into an L1 *hit* (neither P4 nor P5); a
    # late prefetch leaves the line in flight, so the load counts as an
    # LFB hit (P5).  Rising latency converts timely hits into LFB hits
    # - the paper's Fig. 5 mechanism: LFB hits grow and L1 hit rate
    # falls together on slow tiers.
    late_covered = prefetch.covered * prefetch.late_fraction
    timely_l1_covered = (prefetch.covered *
                         (1.0 - prefetch.late_fraction) *
                         spec.pf_l1_share)
    lfb_hit = (demand.lfb_hits + late_covered) / threads
    l1_miss = max(0.0, demand.l1_miss_issued - late_covered -
                  timely_l1_covered) / threads

    # Stall-cycle taxonomy.  The latency-sensitive prefetch stalls
    # (s_cache) manifest at the L1 level on SKX (the paper's S_Cache
    # uses P1-P2 there) and at the L2 level on SPR/EMR (P2-P3).  Each
    # band also carries its latency-insensitive mass: short stalls on
    # L2 hits (L1-miss band) and on L3 hits (L2-miss band) - real
    # counters never isolate the tier-sensitive part, which is why
    # Eq. 6 needs the R_LFB-hit x R_Mem weighting.
    s_llc = breakdown.s_llc
    s_cache = breakdown.s_cache
    l1_level = (demand.l1_miss_issued / threads) * _L1_LEVEL_STALL_CYCLES \
        * spec.stall_exposure / max(2.0, breakdown.mlp_effective)
    if platform.family == "skx":
        stalls_l3 = s_llc
        stalls_l2 = s_llc + breakdown.s_l3_hit + _STALL_LEAK * s_cache
        stalls_l1 = (stalls_l2 + (1.0 - _STALL_LEAK) * s_cache +
                     breakdown.s_l2_hit + l1_level)
    else:
        stalls_l3 = s_llc
        stalls_l2 = (s_llc + breakdown.s_l3_hit +
                     (1.0 - _STALL_LEAK) * s_cache)
        stalls_l1 = (stalls_l2 + l1_level + breakdown.s_l2_hit +
                     _STALL_LEAK * s_cache)

    # Offcore demand-read counters (Little's-law triple).  Real Intel
    # OFFCORE_REQUESTS* events count every demand read leaving the L2 -
    # L3 hits included - so the observed offcore latency (P11/P12) is a
    # blend of LLC-hit latency and memory latency.  Only the L3-hit
    # reads the prefetchers did NOT cover reach offcore as demand
    # (covered lines are L1/L2 hits by the time the load retires).
    demand_l3_hits = (demand.l2_misses * demand.l3_hit_rate *
                      (1.0 - spec.pf_friend)) / threads
    demand_mem = prefetch.demand_mem_reads / threads
    demand_reads = demand_mem + demand_l3_hits
    llc_cycles = platform.ns_to_cycles(platform.llc_latency_ns)
    l3_hit_occupancy = demand_l3_hits * llc_cycles
    outstanding = (breakdown.mlp_effective * breakdown.memory_active +
                   l3_hit_occupancy)
    memory_active = (breakdown.memory_active +
                     l3_hit_occupancy / breakdown.mlp_effective)

    # Uncore lookup counters (SPR/EMR R_Mem proxy).
    pf_l1_any = prefetch.pf_l1_any / threads
    pf_l1_l3_hit = prefetch.pf_l1_l3_hit / threads
    pf_l2_any = prefetch.pf_l2_any / threads
    pf_l2_l3_hit = prefetch.pf_l2_l3_hit / threads
    pf_lookups = pf_l1_any + pf_l2_any
    # Demand LLC lookups: the demand reads that actually reach offcore
    # (prefetch-covered lines hit L1/L2 and never look up the LLC as
    # demand).  P15 uses the CHA lookup event's data-read filtering
    # (RFOs excluded) - with write lookups included, the R_Mem proxy
    # of section 4.4.3 collapses for store-bearing streamers.
    all_lookups = pf_lookups + demand_l3_hits + demand_mem
    tor_pref_miss = prefetch.pf_mem_reads / threads
    tor_pref_hit = pf_l1_l3_hit + pf_l2_l3_hit

    # Uncore CAS (bandwidth-monitor) counters: every line moved to or
    # from memory, reads and writes separately.
    cas_rd = (demand_mem + prefetch.pf_mem_reads / threads +
              demand.store_mem_rfos / threads)
    cas_wr = (demand.store_mem_rfos / threads +
              0.10 * demand_mem)  # writebacks (DEMAND_WRITEBACK_RATIO)

    raw: Dict[Counter, float] = {
        Counter.CYCLES: breakdown.cycles,
        Counter.UNC_CAS_RD: cas_rd,
        Counter.UNC_CAS_WR: cas_wr,
        Counter.INSTRUCTIONS: spec.instructions / threads,
        Counter.STALLS_L1D_MISS: stalls_l1,
        Counter.STALLS_L2_MISS: stalls_l2,
        Counter.STALLS_L3_MISS: stalls_l3,
        Counter.L1_MISS: l1_miss,
        Counter.LFB_HIT: lfb_hit,
        Counter.BOUND_ON_STORES: breakdown.s_sb,
        Counter.PF_L1D_ANY_RESPONSE: pf_l1_any,
        Counter.PF_L1D_L3_HIT: pf_l1_l3_hit,
        Counter.PF_L2_ANY_RESPONSE: pf_l2_any,
        Counter.PF_L2_L3_HIT: pf_l2_l3_hit,
        Counter.ORO_DEMAND_RD: outstanding,
        Counter.OR_DEMAND_RD: demand_reads,
        Counter.ORO_CYC_W_DEMAND_RD: memory_active,
        Counter.LLC_LOOKUP_PF_RD: pf_lookups,
        Counter.LLC_LOOKUP_ALL: all_lookups,
        Counter.TOR_INS_IA_PREF: tor_pref_miss,
        Counter.TOR_INS_IA_HIT_PREF: tor_pref_hit,
    }

    noisy = {
        counter: value * threads * _noise_factor(
            noise, spec.name, tier_label, counter.value, str(seed))
        for counter, value in raw.items()
    }
    return CounterSample(noisy)
