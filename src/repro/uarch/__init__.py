"""Simulated machine substrate: platforms, memory tiers, and the PMU.

This package replaces the paper's physical testbeds (Table 3) and CXL
devices (Table 4).  The public surface is:

- :class:`~repro.uarch.machine.Machine` - run workloads, read counters;
- :class:`~repro.uarch.interleave.Placement` - where the pages live;
- the platform presets :data:`SKX2S`, :data:`SPR2S`, :data:`EMR2S` and
  device presets :data:`NUMA`, :data:`CXL_A`, :data:`CXL_B`,
  :data:`CXL_C`;
- ground-truth helpers :func:`slowdown` and :func:`component_slowdowns`
  (the Melody-style attribution CAMP's predictions are scored against).
"""

from .config import (CXL_A, CXL_B, CXL_C, DEVICES, EVALUATION_TIERS, NUMA,
                     PLATFORMS, SKX2S, SPR2S, EMR2S, MemoryDeviceConfig,
                     PlatformConfig, get_device, get_platform)
from .interleave import Placement, request_share
from .machine import Machine, RunResult, component_slowdowns, slowdown

__all__ = [
    "CXL_A", "CXL_B", "CXL_C", "DEVICES", "EVALUATION_TIERS", "NUMA",
    "PLATFORMS", "SKX2S", "SPR2S", "EMR2S", "MemoryDeviceConfig",
    "PlatformConfig", "get_device", "get_platform", "Placement",
    "request_share", "Machine", "RunResult", "component_slowdowns",
    "slowdown",
]
