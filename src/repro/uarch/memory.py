"""Memory-tier latency/bandwidth model.

Each memory backend (local DRAM, NUMA hop, CXL expander) is modeled as a
service center whose read latency inflates convexly with utilization:
queues in the memory controller and interconnect build slowly at low
load, then sharply as offered traffic approaches the device's peak
bandwidth.

The functional form here is deliberately *not* the quadratic the paper's
interleaving model assumes (Eq. 8).  The paper is explicit that the
quadratic is "a compact and sufficiently accurate approximation", not
ground truth; using a different convex law in the substrate keeps CAMP's
interleaving predictor an honest approximation with realistic residual
error, exactly as on real hardware.

Latency components:

``loaded_latency_ns(u)``
    idle latency plus a queueing term that grows like ``u^3 / (1+eps-u)``
    - near-linear at low load, super-linear past the knee, finite at the
    operating points a closed-loop core can actually reach.

``tail loading``
    CXL-A/B exhibit heavy tails (paper 4.4.4): workloads flagged as
    irregular (``tail_sensitivity > 0``) see the mean latency inflated by
    ``tail_alpha * tail_sensitivity``.  This term exists only on the
    device side, so DRAM-only profiling cannot see it - reproducing the
    paper's "tail latency noise" underestimation class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from .config import CACHELINE_BYTES, MemoryDeviceConfig

#: Optional latency fault hook (``docs/FAULTS.md``): when set, every
#: computed loaded latency passes through it, letting a fault injector
#: model tail-latency spikes and transient device stalls without the
#: substrate knowing about fault plans.  ``None`` (the default) is the
#: fault-free fast path.  Install via :func:`set_latency_fault_hook`;
#: the hook lives in this process only - pool workers never see it.
_LATENCY_FAULT_HOOK: Optional[
    Callable[[MemoryDeviceConfig, float], float]] = None


def set_latency_fault_hook(
        hook: Optional[Callable[[MemoryDeviceConfig, float], float]]
) -> Optional[Callable[[MemoryDeviceConfig, float], float]]:
    """Install (or clear, with ``None``) the latency fault hook.

    Returns the previously-installed hook so injectors can restore it,
    making nested or exception-interrupted injection contexts safe.
    """
    global _LATENCY_FAULT_HOOK
    previous = _LATENCY_FAULT_HOOK
    _LATENCY_FAULT_HOOK = hook
    return previous

#: Utilization ceiling: offered load beyond this is throttled by the
#: closed-loop latency inflation, mirroring how finite MLP prevents a
#: real core from over-driving a memory controller.
MAX_UTILIZATION = 0.97

#: Headroom keeping the queueing denominator finite at the ceiling; the
#: resulting full-load latency lands at ~2.2-2.6x idle, matching MLC
#: loaded-latency curves and the paper's observed contention latencies
#: (e.g. 654.roms: 168 ns on 90 ns-idle DRAM under Colloid).
_QUEUE_EPSILON = 0.25


def loaded_latency_ns(device: MemoryDeviceConfig, utilization: float,
                      tail_sensitivity: float = 0.0) -> float:
    """Mean read latency of ``device`` at the given utilization.

    ``utilization`` is offered bandwidth divided by the device's peak;
    values are clamped to [0, MAX_UTILIZATION].  ``tail_sensitivity``
    (0..1) is a property of the *workload*: how much of its traffic is
    irregular enough to hit the device's latency tail.
    """
    u = min(max(utilization, 0.0), MAX_UTILIZATION)
    base = device.idle_latency_ns
    # Gentle linear term: bank conflicts and scheduling overhead start
    # immediately; the quartic term is the queue build-up toward
    # saturation; the knee term sharpens growth past the device's knee.
    linear = 0.20 * u
    over_knee = max(0.0, u - device.queue_knee)
    # `u^4`/`over_knee^2` are spelled as explicit products: IEEE-754
    # `x ** n` and `x * x` round differently, and the batched kernels
    # (`loaded_latency_ns_batch`) must agree bit-for-bit with this
    # scalar path so `Machine.run_batch` can replay `Machine.run`.
    u_sq = u * u
    queue = (device.queue_gain * 0.20 * (u_sq * u_sq) / (
        1.0 + _QUEUE_EPSILON - u)
        + device.queue_gain * 0.12 * (over_knee * over_knee))
    tail = device.tail_alpha * min(max(tail_sensitivity, 0.0), 1.0)
    latency_ns = base * (1.0 + linear + queue) * (1.0 + tail)
    if _LATENCY_FAULT_HOOK is not None:
        latency_ns = _LATENCY_FAULT_HOOK(device, latency_ns)
    return latency_ns


#: Upper bound on the saturation multiplier (guards pathological specs).
MAX_ESCALATION = 60.0

#: Integral-control gain for the saturation feedback loop.
_ESCALATION_GAIN = 0.3


def updated_escalation(escalation: float, device: MemoryDeviceConfig,
                       offered_gbps: float) -> float:
    """One integral-control step of the saturation latency multiplier.

    A memory device cannot serve more than its peak bandwidth.  When a
    closed-loop core complex offers more, queues grow until the inflated
    latency throttles the issue rate down to the service rate.  This
    update implements that feedback: each solver iteration multiplies
    the current escalation by ``(offered / capacity)^gain``, so the
    fixed point lands exactly where achieved bandwidth equals
    ``MAX_UTILIZATION * peak`` (or escalation returns to 1 when the
    device is not saturated).
    """
    if offered_gbps <= 0:
        return 1.0
    capacity = device.peak_bandwidth_gbps * MAX_UTILIZATION
    ratio = offered_gbps / capacity
    # np.power, not ``**``: libm and numpy `pow` differ in the last ulp
    # and the batched solver must replay this path bit-for-bit.
    new = escalation * float(np.power(ratio, _ESCALATION_GAIN))
    return min(MAX_ESCALATION, max(1.0, new))


def rfo_latency_ns(device: MemoryDeviceConfig, utilization: float,
                   tail_sensitivity: float = 0.0) -> float:
    """Read-for-Ownership latency: the full read path plus device RFO cost.

    On CXL the coherence round trip is costlier than a plain read; the
    device's ``rfo_latency_factor`` scales the loaded read latency, which
    reproduces the paper's observation that RFO latency grows 2-3x when
    moving stores from DRAM to CXL.
    """
    return loaded_latency_ns(device, utilization,
                             tail_sensitivity) * device.rfo_latency_factor


def utilization_for_bandwidth(device: MemoryDeviceConfig,
                              bandwidth_gbps: float) -> float:
    """Offered-load utilization for a traffic level, clamped to the ceiling."""
    if bandwidth_gbps <= 0:
        return 0.0
    return min(bandwidth_gbps / device.peak_bandwidth_gbps, MAX_UTILIZATION)


# --------------------------------------------------------------------------
# Batched kernels (docs/SOLVER.md)
#
# Struct-of-arrays mirrors of the scalar functions above.  Each kernel
# performs the *same arithmetic in the same order* as its scalar twin,
# so evaluating N problems as arrays yields bit-identical doubles to N
# scalar calls - the foundation of `Machine.run_batch`'s replay
# contract.  Device parameters arrive as per-element arrays
# (`DeviceLanes`) because one batch may mix slow tiers.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DeviceLanes:
    """Per-element device parameters for the batched latency kernels."""

    idle_latency_ns: np.ndarray
    peak_bandwidth_gbps: np.ndarray
    tail_alpha: np.ndarray
    rfo_latency_factor: np.ndarray
    queue_gain: np.ndarray
    queue_knee: np.ndarray

    @classmethod
    def from_devices(cls, devices: Sequence[MemoryDeviceConfig]
                     ) -> "DeviceLanes":
        as_array = np.asarray
        return cls(
            idle_latency_ns=as_array(
                [d.idle_latency_ns for d in devices], dtype=np.float64),
            peak_bandwidth_gbps=as_array(
                [d.peak_bandwidth_gbps for d in devices], dtype=np.float64),
            tail_alpha=as_array(
                [d.tail_alpha for d in devices], dtype=np.float64),
            rfo_latency_factor=as_array(
                [d.rfo_latency_factor for d in devices], dtype=np.float64),
            queue_gain=as_array(
                [d.queue_gain for d in devices], dtype=np.float64),
            queue_knee=as_array(
                [d.queue_knee for d in devices], dtype=np.float64),
        )


def loaded_latency_ns_batch(lanes: DeviceLanes, utilization: np.ndarray,
                            tail_sensitivity: np.ndarray) -> np.ndarray:
    """Vectorized :func:`loaded_latency_ns` (fault hooks not supported:
    `Machine.run_batch` falls back to the scalar path while a latency
    fault hook is installed)."""
    u = np.minimum(np.maximum(utilization, 0.0), MAX_UTILIZATION)
    base = lanes.idle_latency_ns
    linear = 0.20 * u
    over_knee = np.maximum(0.0, u - lanes.queue_knee)
    u_sq = u * u
    queue = (lanes.queue_gain * 0.20 * (u_sq * u_sq) / (
        1.0 + _QUEUE_EPSILON - u)
        + lanes.queue_gain * 0.12 * (over_knee * over_knee))
    tail = lanes.tail_alpha * np.minimum(
        np.maximum(tail_sensitivity, 0.0), 1.0)
    return base * (1.0 + linear + queue) * (1.0 + tail)


def rfo_latency_ns_batch(lanes: DeviceLanes, utilization: np.ndarray,
                         tail_sensitivity: np.ndarray) -> np.ndarray:
    """Vectorized :func:`rfo_latency_ns`."""
    return loaded_latency_ns_batch(
        lanes, utilization, tail_sensitivity) * lanes.rfo_latency_factor


def utilization_for_bandwidth_batch(lanes: DeviceLanes,
                                    bandwidth_gbps: np.ndarray) -> np.ndarray:
    """Vectorized :func:`utilization_for_bandwidth`."""
    utilization = np.minimum(
        bandwidth_gbps / lanes.peak_bandwidth_gbps, MAX_UTILIZATION)
    return np.where(bandwidth_gbps <= 0, 0.0, utilization)


def updated_escalation_batch(escalation: np.ndarray, lanes: DeviceLanes,
                             offered_gbps: np.ndarray) -> np.ndarray:
    """Vectorized :func:`updated_escalation`."""
    capacity = lanes.peak_bandwidth_gbps * MAX_UTILIZATION
    # Guard the masked-out lanes (offered <= 0) against 0^fractional.
    safe_offered = np.where(offered_gbps > 0, offered_gbps, capacity)
    ratio = safe_offered / capacity
    new = escalation * np.power(ratio, _ESCALATION_GAIN)
    clamped = np.minimum(MAX_ESCALATION, np.maximum(1.0, new))
    return np.where(offered_gbps <= 0, 1.0, clamped)


def measure_idle_latency_ns(device: MemoryDeviceConfig) -> float:
    """What an Intel-MLC-style idle-latency probe reports for ``device``.

    The paper's interleaving model takes ``L_idle`` per tier from MLC;
    our probe returns the loaded latency at (near-)zero utilization,
    which equals the configured idle latency.
    """
    return loaded_latency_ns(device, 0.0)


@dataclass
class TierLoad:
    """Mutable per-tier traffic ledger used by the closed-loop solver.

    ``own_gbps`` is the traffic of the workload being solved;
    ``external_gbps`` is traffic from colocated workloads sharing the
    device (interference).  Latency is computed from the sum.
    """

    device: MemoryDeviceConfig
    own_gbps: float = 0.0
    external_gbps: float = 0.0

    @property
    def total_gbps(self) -> float:
        return self.own_gbps + self.external_gbps

    @property
    def utilization(self) -> float:
        return utilization_for_bandwidth(self.device, self.total_gbps)

    def latency_ns(self, tail_sensitivity: float = 0.0) -> float:
        return loaded_latency_ns(self.device, self.utilization,
                                 tail_sensitivity)

    def rfo_ns(self, tail_sensitivity: float = 0.0) -> float:
        return rfo_latency_ns(self.device, self.utilization,
                              tail_sensitivity)


@dataclass(frozen=True)
class BlendedMemory:
    """Latency/bandwidth view of an interleaved DRAM+slow-tier placement.

    ``dram_fraction`` is the paper's ``x``: the fraction of the footprint
    (and, under weighted interleaving, of the requests) served by DRAM.
    The remaining ``1 - x`` goes to ``slow``.  A pure-DRAM placement has
    ``x = 1``; a pure-CXL one has ``x = 0``.
    """

    dram: TierLoad
    slow: Optional[TierLoad]
    dram_fraction: float

    def __post_init__(self):
        if not 0.0 <= self.dram_fraction <= 1.0:
            raise ValueError("dram_fraction must be within [0, 1]")
        if self.slow is None and self.dram_fraction < 1.0:
            raise ValueError("a slow tier is required when x < 1")

    def read_latency_ns(self, tail_sensitivity: float = 0.0) -> float:
        """Request-weighted mean read latency across the two tiers."""
        x = self.dram_fraction
        lat = x * self.dram.latency_ns(0.0)
        if self.slow is not None and x < 1.0:
            lat += (1.0 - x) * self.slow.latency_ns(tail_sensitivity)
        return lat

    def rfo_latency_ns(self, tail_sensitivity: float = 0.0) -> float:
        """Request-weighted mean RFO latency across the two tiers."""
        x = self.dram_fraction
        lat = x * self.dram.rfo_ns(0.0)
        if self.slow is not None and x < 1.0:
            lat += (1.0 - x) * self.slow.rfo_ns(tail_sensitivity)
        return lat

    def distribute(self, total_gbps: float) -> None:
        """Assign this workload's traffic to the tiers by footprint share.

        Under weighted interleaving the per-tier request share tracks the
        footprint share within ~2% (paper 5.2); we apply the split
        exactly and let the caller add any deviation it wants to model.
        """
        x = self.dram_fraction
        self.dram.own_gbps = total_gbps * x
        if self.slow is not None:
            self.slow.own_gbps = total_gbps * (1.0 - x)

    @property
    def aggregate_peak_gbps(self) -> float:
        """Combined peak bandwidth reachable at this interleave ratio.

        The effective ceiling is limited by the ratio: traffic is pinned
        to tiers by page placement, so a 90:10 split cannot exploit the
        slow tier's full bandwidth.
        """
        x = self.dram_fraction
        dram_peak = self.dram.device.peak_bandwidth_gbps
        if self.slow is None or x >= 1.0:
            return dram_peak
        if x <= 0.0:
            return self.slow.device.peak_bandwidth_gbps
        slow_peak = self.slow.device.peak_bandwidth_gbps
        # The binding constraint is whichever tier saturates first given
        # the fixed x : (1-x) split.
        return min(dram_peak / x, slow_peak / (1.0 - x))


def lines_per_second(bandwidth_gbps: float) -> float:
    """Convert GB/s of cacheline traffic to lines/second."""
    return bandwidth_gbps * 1e9 / CACHELINE_BYTES


def gbps_from_lines(lines: float, seconds: float) -> float:
    """Convert a cacheline count over a duration to GB/s."""
    if seconds <= 0:
        return 0.0
    return lines * CACHELINE_BYTES / seconds / 1e9
