"""Single-precision pre-pass for the accelerated batch solver.

This is the **only** module allowed to create ``float32`` arrays
(enforced by camp-lint rule DTYPE01): everywhere else in the substrate
a float32 array is silent precision loss, but here it is the point.
``Machine.run_batch(..., accelerate=True, float32=True)`` casts the
packed problem and the initial solver state to single precision, runs
the same masked Anderson-accelerated fixed point at roughly half the
memory traffic per iteration, and then hands the final iterate back as
the *seed* for a full float64 solve.

Why a pre-pass instead of solving in float32 outright: the solver's
convergence criteria (outer ``1e-9``, inner ``1e-10``, relative) sit
*below* float32 machine epsilon (``~1.19e-7``), so a pure f32 loop can
never satisfy them - successive iterates stop changing before the test
triggers.  The fastpath therefore solves to the looser tolerances
below, and the float64 polish pass - seeded a float32-rounding away
from the fixed point - finishes in a handful of double-precision
iterations per lane.  Because every observable (cycles, latencies,
bandwidths, counters) is re-derived by the float64 pass, the documented
``ACCELERATED_RELATIVE_TOLERANCE = 1e-7`` contract against the plain
damped fixed point holds unchanged; lanes the polish still cannot
settle fall back to the usual replay re-solve.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

#: Outer-loop relative convergence criterion for the f32 phase.  One
#: decade above float32 epsilon: tight enough that the float64 polish
#: starts within ~1e-6 of the fixed point, loose enough that float32
#: rounding noise cannot stall the test.
FASTPATH_OUTER_TOLERANCE = 1e-6

#: Inner (cycle-accounting) relative criterion for the f32 phase, for
#: the same reason - the float64 default ``1e-10`` is unreachable in
#: single precision.
FASTPATH_INNER_TOLERANCE = 1e-6

_STATE_NAMES = ("dram_latency_ns", "slow_latency_ns", "dram_rfo_ns",
                "slow_rfo_ns", "dram_escalation", "slow_escalation")


def _cast_value(value):
    if isinstance(value, np.ndarray):
        if value.dtype == np.float64:
            return value.astype(np.float32)
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _cast_struct(value)
    return value


def _cast_struct(struct):
    """Deep-copy a struct-of-arrays dataclass with float lanes in f32.

    Float64 lane arrays are cast; bool/int masks and plain-python
    fields (workload/placement/platform lists) pass through untouched,
    so the cast problem stays interchangeable with the original for
    everything except arithmetic precision.
    """
    return type(struct)(**{
        field.name: _cast_value(getattr(struct, field.name))
        for field in dataclasses.fields(struct)})


def problem_to_float32(problem):
    """A single-precision view of a packed ``_BatchProblem``."""
    return _cast_struct(problem)


def state_to_float32(state: Dict[str, np.ndarray]
                     ) -> Dict[str, np.ndarray]:
    """Cast an initial solver-state dict to single precision."""
    return {name: array.astype(np.float32)
            for name, array in state.items()}


def seed_state_from_solution(solution) -> Dict[str, np.ndarray]:
    """Float64 solver seed from a finished f32 ``_BatchSolution``.

    Only the six state arrays matter: the float64 polish re-derives
    every observable from them, so the f32 flow/breakdown/traffic
    arrays are deliberately dropped rather than upcast into results.
    """
    return {name: getattr(solution, name).astype(np.float64)
            for name in _STATE_NAMES}
