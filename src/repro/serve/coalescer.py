"""Admission control and batch coalescing for ``repro serve``.

The heart of the service.  Query requests flow through a **bounded
admission queue** (full queue -> explicit shed, never a silent drop)
into a single coalescer task that groups concurrent queries into one
:meth:`~repro.uarch.machine.Machine.run_batch_multi` call:

- the first queued query opens a **coalescing window**
  (:data:`~repro.serve.protocol.DEFAULT_COALESCE_WINDOW_MS`); everything
  that arrives before it closes - up to
  :data:`~repro.serve.protocol.MAX_COALESCE_LANES` - joins the batch;
- identical queries (same :class:`~repro.runtime.spec.RunSpec`
  fingerprint) **share one solver lane**, so a thundering herd of the
  same question costs one solve;
- batches of at least :data:`~repro.runtime.executor.MIN_BATCH_GROUP`
  lanes run in bit-identical *replay* mode and are persisted to the
  result store; smaller batches run ``accelerate=True`` seeded from a
  serve-local :class:`~repro.uarch.machine.WarmStartCache` and are
  memoized only in process, never persisted - tolerance-level deviation
  must not poison the byte-identity store (``docs/SOLVER.md``).

Deadlines are enforced at every stage a request can wait: admission,
batch formation, and the moment the solver thread picks the batch up.
An expired query is answered with an explicit deadline outcome and is
**never solved**.  All store traffic goes through the
:class:`~repro.serve.breaker.CircuitBreaker`: when the store is
unreachable the service degrades to solve-without-cache instead of
failing requests.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..runtime import serde
from ..runtime.errors import StoreError, TransientTaskError
from ..runtime.executor import MIN_BATCH_GROUP
from ..runtime.spec import RunSpec
from ..runtime.store import ResultStore
from ..uarch.machine import Machine, WarmStartCache
from ..workloads.suites import get_workload
from .breaker import BreakerOpenError, CircuitBreaker
from .protocol import (DEFAULT_COALESCE_WINDOW_MS, DEFAULT_QUEUE_BOUND,
                       MAX_COALESCE_LANES, RunQuery)

#: How many times a batch solve is retried when the injected (or real)
#: fault is transient; matches the executor's attempt budget.
SOLVE_MAX_ATTEMPTS = 3

#: Results memoized in process for accelerated (non-persisted) answers.
MAX_MEMO_ENTRIES = 4096


@dataclass
class Outcome:
    """How one admitted query terminated (the closed vocabulary)."""

    kind: str  # "ok"|"shed"|"deadline"|"draining"|"bad_request"|"error"
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass
class _Pending:
    """One admitted query waiting for its batch."""

    query: RunQuery
    spec: RunSpec
    key: str
    deadline_at: float
    enqueued_at: float
    future: "asyncio.Future[Outcome]"

    def expired(self, now: float) -> bool:
        return now >= self.deadline_at

    def waited_ms(self, now: float) -> float:
        return (now - self.enqueued_at) * 1000.0

    def deadline_ms(self) -> float:
        return (self.deadline_at - self.enqueued_at) * 1000.0


class QueryCoalescer:
    """Bounded-queue admission + batched solving for query requests.

    Parameters
    ----------
    machine:
        The simulated machine queries are solved on.
    store:
        Optional persistent result store; consulted and written only
        through the circuit breaker.
    solve_hook:
        Test/chaos seam: called as ``solve_hook(batch_index, attempt)``
        inside the solver thread before each solve attempt.  Raising
        :class:`~repro.runtime.errors.TransientTaskError` exercises the
        retry path; sleeping simulates a hung solver.
    """

    def __init__(self, machine: Machine,
                 store: Optional[ResultStore] = None, *,
                 queue_bound: int = DEFAULT_QUEUE_BOUND,
                 coalesce_window_ms: float = DEFAULT_COALESCE_WINDOW_MS,
                 max_lanes: int = MAX_COALESCE_LANES,
                 breaker: Optional[CircuitBreaker] = None,
                 clock: Callable[[], float] = time.monotonic,
                 solve_hook: Optional[Callable[[int, int], None]] = None):
        if queue_bound < 1:
            raise ValueError("queue_bound must be >= 1")
        if max_lanes < 1:
            raise ValueError("max_lanes must be >= 1")
        self.machine = machine
        self.store = store
        self.queue_bound = queue_bound
        self.coalesce_window_s = coalesce_window_ms / 1000.0
        self.max_lanes = max_lanes
        self.breaker = breaker or CircuitBreaker()
        self.clock = clock
        self.solve_hook = solve_hook
        self.warm_cache = WarmStartCache()
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue()
        self._memo: Dict[str, Dict[str, Any]] = {}
        self._memo_lock = threading.Lock()
        self._draining = False
        self._task: Optional["asyncio.Task[None]"] = None
        self._batch_counter = 0
        # Counters are bumped from both the event loop (admission) and
        # the solver thread (batch processing); '+=' alone would lose
        # increments across the two.
        self._counters_lock = threading.Lock()
        #: Counters surfaced through /stats and the SLO report.
        self.counters: Dict[str, int] = {
            "admitted": 0, "shed": 0, "deadline_expired": 0,
            "lanes_solved": 0, "batches_solved": 0,
            "coalesced_twins": 0, "store_hits": 0, "memo_hits": 0,
            "store_errors": 0, "store_writes": 0, "solve_retries": 0,
            "errors": 0,
        }

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def drain(self) -> None:
        """Stop admitting, flush queued work, stop the batch task.

        Every request admitted before the drain still gets its answer
        (or its explicit deadline outcome) - graceful shutdown never
        abandons an in-flight future.
        """
        self._draining = True
        await self._queue.join()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    @property
    def draining(self) -> bool:
        return self._draining

    def _count(self, name: str, delta: int = 1) -> None:
        with self._counters_lock:
            self.counters[name] += delta

    def stats(self) -> Dict[str, Any]:
        with self._counters_lock:
            snapshot: Dict[str, Any] = dict(self.counters)
        snapshot["queued"] = self._queue.qsize()
        snapshot["queue_bound"] = self.queue_bound
        snapshot["breaker"] = self.breaker.snapshot()
        snapshot["warm_points"] = self.warm_cache.points_recorded
        snapshot["warm_seeds_served"] = self.warm_cache.seeds_served
        snapshot["warm_evictions"] = self.warm_cache.evictions
        return snapshot

    # -- admission -----------------------------------------------------------
    def submit(self, query: RunQuery,
               deadline_ms: float) -> "asyncio.Future[Outcome]":
        """Admit one query; the returned future resolves to its outcome.

        The future always resolves - shed and draining resolve it
        immediately, everything else is owned by the coalescer task.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Outcome]" = loop.create_future()
        if self._draining:
            future.set_result(Outcome("draining"))
            return future
        queued = self._queue.qsize()
        if queued >= self.queue_bound:
            self._count("shed")
            future.set_result(Outcome(
                "shed", {"queued": queued, "bound": self.queue_bound}))
            return future
        try:
            spec, key = self._resolve_spec(query)
        except (KeyError, TypeError, ValueError) as exc:
            # Client input the parser could not reject (unknown
            # workload, bad placement shape): a 400, not an internal
            # fault - chaos asserts zero "error" outcomes.
            future.set_result(Outcome("bad_request",
                                      {"error": str(exc)}))
            return future
        now = self.clock()
        self._count("admitted")
        self._queue.put_nowait(_Pending(
            query=query, spec=spec, key=key,
            deadline_at=now + deadline_ms / 1000.0,
            enqueued_at=now, future=future))
        return future

    def _resolve_spec(self, query: RunQuery) -> Tuple[RunSpec, str]:
        workload = get_workload(query.workload)
        if query.threads is not None:
            workload = serde.workload_from_dict(
                dict(serde.workload_to_dict(workload),
                     threads=query.threads))
        placement = (serde.placement_from_dict(dict(query.placement))
                     if query.placement is not None else None)
        spec = RunSpec.from_machine(self.machine, workload, placement)
        return spec, spec.fingerprint()

    # -- batch formation -----------------------------------------------------
    async def _run(self) -> None:
        while True:
            batch = await self._collect_batch()
            if batch:
                await self._dispatch(batch)

    async def _collect_batch(self) -> List[_Pending]:
        first = await self._queue.get()
        batch = [first]
        window_closes = self.clock() + self.coalesce_window_s
        while len(batch) < self.max_lanes:
            remaining_s = window_closes - self.clock()
            if remaining_s <= 0:
                break
            try:
                batch.append(await asyncio.wait_for(
                    self._queue.get(), timeout=remaining_s))
            except asyncio.TimeoutError:
                break
        return batch

    async def _dispatch(self, batch: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        try:
            outcomes = await loop.run_in_executor(
                None, self._process_batch, batch)
        except Exception as exc:  # the service must outlive any solve
            self._count("errors", len(batch))
            outcomes = [Outcome("error", {"error": str(exc)})] * len(batch)
        for pending, outcome in zip(batch, outcomes):
            if not pending.future.done():
                pending.future.set_result(outcome)
            self._queue.task_done()

    # -- solving (runs in a worker thread) -----------------------------------
    def _process_batch(self, batch: List[_Pending]) -> List[Outcome]:
        now = self.clock()
        outcomes: List[Optional[Outcome]] = [None] * len(batch)

        live: List[int] = []
        for index, pending in enumerate(batch):
            if pending.expired(now):
                self._count("deadline_expired")
                outcomes[index] = Outcome("deadline", {
                    "deadline_ms": pending.deadline_ms(),
                    "waited_ms": pending.waited_ms(now)})
            else:
                live.append(index)

        # Identical fingerprints share one lane; twins get copies.
        lanes: Dict[str, List[int]] = {}
        for index in live:
            lanes.setdefault(batch[index].key, []).append(index)
        self._count("coalesced_twins", len(live) - len(lanes))

        unsolved: List[str] = []
        answers: Dict[str, Dict[str, Any]] = {}
        for key in lanes:
            cached = self._lookup(key)
            if cached is not None:
                answers[key] = cached
            else:
                unsolved.append(key)

        if unsolved:
            try:
                answers.update(self._solve_lanes(
                    [(key, batch[lanes[key][0]].spec) for key in unsolved]))
            except Exception as exc:
                self._count("errors", sum(
                    len(lanes[key]) for key in unsolved))
                for key in unsolved:
                    failure = Outcome("error", {"error": str(exc)})
                    for index in lanes[key]:
                        outcomes[index] = failure

        for key, members in lanes.items():
            if key not in answers:
                continue  # already marked as an error above
            for index in members:
                outcomes[index] = Outcome("ok", {
                    "fingerprint": key,
                    "result": answers[key],
                })
        return [outcome or Outcome("error", {"error": "unresolved lane"})
                for outcome in outcomes]

    def _lookup(self, key: str) -> Optional[Dict[str, Any]]:
        with self._memo_lock:
            memo = self._memo.get(key)
        if memo is not None:
            self._count("memo_hits")
            return memo
        if self.store is None:
            return None
        # One breaker consultation per operation: call() runs its own
        # admission check, so a pre-check here would consume the
        # half-open probe slot and leave the breaker wedged open.
        try:
            payload = self.breaker.call(lambda: self.store.get(key))
        except BreakerOpenError:
            return None  # local rejection, not a store fault
        except StoreError:
            self._count("store_errors")
            return None
        if payload is not None:
            self._count("store_hits")
        return payload

    def _solve_lanes(self, lanes: List[Tuple[str, RunSpec]]
                     ) -> Dict[str, Dict[str, Any]]:
        self._batch_counter += 1
        batch_index = self._batch_counter
        replay = len(lanes) >= MIN_BATCH_GROUP
        # Lanes carry their own machine identity (platform, noise,
        # seed) through the spec, so one masked batch serves them all
        # even if future queries stop sharing the service machine.
        specs = [spec for _, spec in lanes]

        last_error: Optional[BaseException] = None
        for attempt in range(SOLVE_MAX_ATTEMPTS):
            if self.solve_hook is not None:
                try:
                    self.solve_hook(batch_index, attempt)
                except TransientTaskError as exc:
                    self._count("solve_retries")
                    last_error = exc
                    continue
            results = Machine.run_batch_multi(
                specs, accelerate=not replay,
                warm_cache=None if replay else self.warm_cache)
            break
        else:
            raise TransientTaskError(
                f"batch {batch_index} failed all {SOLVE_MAX_ATTEMPTS} "
                f"attempts") from last_error

        self._count("batches_solved")
        self._count("lanes_solved", len(lanes))
        answers: Dict[str, Dict[str, Any]] = {}
        for (key, _spec), result in zip(lanes, results):
            payload = serde.run_result_to_dict(result)
            answers[key] = payload
            if replay:
                self._persist(key, payload)
            else:
                # Accelerated answers are tolerance-level, not
                # byte-identical: memoize locally, never persist.
                with self._memo_lock:
                    if len(self._memo) < MAX_MEMO_ENTRIES:
                        self._memo[key] = payload
        return answers

    def _persist(self, key: str, payload: Dict[str, Any]) -> None:
        if self.store is None:
            return
        try:
            self.breaker.call(lambda: self.store.put(key, payload))
            self._count("store_writes")
        except BreakerOpenError:
            pass  # local rejection, not a store fault
        except StoreError:
            self._count("store_errors")
