"""Circuit breaker guarding the result store (``docs/SERVE.md``).

The online service treats the persistent
:class:`~repro.runtime.store.ResultStore` as an accelerator, never a
dependency: every answer can be computed without it.  But a store that
has become unreachable (disk yanked, injected disconnect) must not tax
every request with a failing syscall and its timeout.  The breaker
implements the classic three-state machine around store operations:

- **closed** - operations flow through; consecutive
  :class:`~repro.runtime.errors.StoreError` failures are counted and
  any success resets the count;
- **open** - after :data:`BREAKER_FAILURE_THRESHOLD` consecutive
  failures the breaker rejects operations locally (the caller solves
  without the cache) for :data:`BREAKER_COOLDOWN_S` seconds;
- **half-open** - after the cooldown, exactly one probe operation is
  let through; success closes the breaker, failure re-opens it for
  another cooldown.

Thread-safe: the coalescer's solver thread and the event loop may
consult it concurrently.  The clock is injectable so tests replay the
state machine without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict

from ..runtime.errors import StoreError

#: Consecutive StoreErrors that trip the breaker open.
BREAKER_FAILURE_THRESHOLD = 3

#: Seconds the breaker stays open before allowing a half-open probe.
BREAKER_COOLDOWN_S = 5.0

#: The three states, as reported by :attr:`CircuitBreaker.state`.
STATES = ("closed", "open", "half-open")


class BreakerOpenError(StoreError):
    """The breaker is open: the store is presumed unreachable.

    A :class:`~repro.runtime.errors.StoreError` subclass so callers
    need a single except clause for "no cache right now".
    """


class CircuitBreaker:
    """Failure-counting gate around store operations."""

    def __init__(self,
                 failure_threshold: int = BREAKER_FAILURE_THRESHOLD,
                 cooldown_s: float = BREAKER_COOLDOWN_S,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: float = 0.0
        self._open = False
        self._probe_inflight = False
        #: Lifetime counters for the SLO report.
        self.opens = 0
        self.rejections = 0
        self.failures = 0

    # -- state ---------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if not self._open:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "rejections": self.rejections,
                "failures": self.failures,
            }

    # -- accounting ----------------------------------------------------------
    def allow(self) -> bool:
        """True when an operation may be attempted right now.

        In half-open state only the first caller gets a probe; the
        rest are rejected until the probe settles.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half-open" and not self._probe_inflight:
                self._probe_inflight = True
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._open = False
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            self._probe_inflight = False
            if self._open or (self._consecutive_failures
                              >= self.failure_threshold):
                if not self._open:
                    self.opens += 1
                self._open = True
                self._opened_at = self._clock()

    # -- the guarded call ----------------------------------------------------
    def call(self, operation: Callable[[], Any]) -> Any:
        """Run ``operation`` under the breaker.

        Raises :class:`BreakerOpenError` without calling when open;
        converts the operation's :class:`StoreError`/:class:`OSError`
        into failure accounting and re-raises as :class:`StoreError`.
        """
        if not self.allow():
            raise BreakerOpenError(
                f"store breaker open "
                f"({self._consecutive_failures} consecutive failures)")
        try:
            result = operation()
        except (StoreError, OSError) as exc:
            self.record_failure()
            raise StoreError(f"store operation failed: {exc}") from exc
        self.record_success()
        return result
