"""The ``repro serve`` asyncio HTTP server (``docs/SERVE.md``).

Stdlib only: hand-rolled HTTP/1.1 framing from
:mod:`repro.serve.protocol` over :func:`asyncio.start_server`.  Three
routes:

- ``POST /v1/predict`` - the prediction endpoint.  Signature requests
  (DRAM-only counters) are answered inline from the calibrated
  :class:`~repro.core.slowdown.SlowdownPredictor` - pure arithmetic,
  never queued.  Query requests go through the
  :class:`~repro.serve.coalescer.QueryCoalescer` and terminate in
  exactly one of the protocol's explicit outcomes;
- ``GET /healthz`` - liveness plus drain state;
- ``GET /stats`` - the live counter snapshot the SLO report embeds.

Every request is wrapped in a :func:`repro.obs.maybe_span` so a trace
session (``--trace``) sees per-request latency attributed to parse /
admission / solve; without a session the spans are free.

Shutdown is a **graceful drain**: new work is refused with explicit
draining responses while every already-admitted query still gets its
answer or its deadline outcome.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.counters import Counter, CounterSample
from ..core.signature import signature_from_sample
from ..core.slowdown import SlowdownPredictor
from ..obs import maybe_span
from ..runtime.store import ResultStore
from ..uarch.machine import Machine
from .breaker import CircuitBreaker
from .coalescer import Outcome, QueryCoalescer
from .protocol import (DEFAULT_DEADLINE_MS, PredictRequest, ProtocolError,
                       SignatureQuery, bad_request_response,
                       deadline_response, draining_response,
                       encode_http_response, error_response, ok_response,
                       parse_predict_request, read_http_request,
                       shed_response)
from .slo import LatencyRecorder


class PredictionServer:
    """The online prediction service around one simulated machine.

    Parameters
    ----------
    machine:
        The machine query requests are solved on.
    predictor:
        Calibrated signature predictor; ``None`` disables the
        signature path (such requests get a 400).
    store:
        Optional persistent result store, guarded by the breaker.
    """

    def __init__(self, machine: Machine,
                 predictor: Optional[SlowdownPredictor] = None,
                 store: Optional[ResultStore] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 default_deadline_ms: float = DEFAULT_DEADLINE_MS,
                 queue_bound: Optional[int] = None,
                 coalesce_window_ms: Optional[float] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 solve_hook: Optional[Callable[[int, int], None]] = None):
        self.machine = machine
        self.predictor = predictor
        self.host = host
        self.port = port
        self.default_deadline_ms = default_deadline_ms
        coalescer_kwargs: Dict[str, Any] = {}
        if queue_bound is not None:
            coalescer_kwargs["queue_bound"] = queue_bound
        if coalesce_window_ms is not None:
            coalescer_kwargs["coalesce_window_ms"] = coalesce_window_ms
        self.coalescer = QueryCoalescer(
            machine, store, breaker=breaker, solve_hook=solve_hook,
            **coalescer_kwargs)
        self.recorder = LatencyRecorder()
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        # Bumped on the event loop, read by cross-thread stats()
        # scrapes (ServerThread.stats); RACE01 caught the bare int.
        self._served_lock = threading.Lock()
        self._requests_served = 0

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self.coalescer.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        return self.host, self.port

    async def drain(self) -> None:
        """Refuse new work, flush admitted work, close the listener."""
        self._draining = True
        await self.coalescer.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def requests_served(self) -> int:
        with self._served_lock:
            return self._requests_served

    def stats(self) -> Dict[str, Any]:
        snapshot = self.coalescer.stats()
        snapshot["requests_served"] = self.requests_served
        snapshot["draining"] = self._draining
        snapshot["outcomes"] = self.recorder.counts()
        snapshot["latency_ms"] = self.recorder.latency_summary_ms()
        return snapshot

    # -- connection handling -------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    frame = await read_http_request(reader)
                except ProtocolError as exc:
                    writer.write(encode_http_response(
                        *bad_request_response(str(exc)), keep_alive=False))
                    await writer.drain()
                    break
                if frame is None:
                    break
                method, path, headers, body = frame
                keep_alive = (headers.get("connection", "keep-alive")
                              .lower() != "close")
                status, payload = await self._route(method, path, body)
                writer.write(encode_http_response(
                    status, payload, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, Dict[str, Any]]:
        with self._served_lock:
            self._requests_served += 1
        if path == "/healthz" and method == "GET":
            return 200, {"status": "draining" if self._draining else "ok"}
        if path == "/stats" and method == "GET":
            return 200, {"status": "ok", "stats": self.stats()}
        if path != "/v1/predict":
            return 404, {"status": "bad_request",
                         "error": f"unknown path {path}"}
        if method != "POST":
            return 405, {"status": "bad_request",
                         "error": "predict requires POST"}
        return await self._predict(body)

    async def _predict(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        started = time.monotonic()
        with maybe_span("serve.predict") as span:
            status, payload = await self._predict_inner(body, span)
        latency_ms = (time.monotonic() - started) * 1000.0
        self.recorder.record(payload.get("status", "error"), latency_ms)
        return status, payload

    async def _predict_inner(self, body: bytes, span
                             ) -> Tuple[int, Dict[str, Any]]:
        try:
            decoded = _decode_json(body)
            request = parse_predict_request(
                decoded, default_deadline_ms=self.default_deadline_ms)
        except ProtocolError as exc:
            if span is not None:
                span.annotate(kind="malformed")
            return bad_request_response(str(exc))
        if span is not None:
            span.annotate(kind=request.kind)

        if self._draining:
            return draining_response()

        if request.kind == "signature":
            return self._predict_signature(request)

        outcome = await self.coalescer.submit(
            request.query, request.deadline_ms)
        if span is not None:
            span.annotate(outcome=outcome.kind)
        return _outcome_to_response(request, outcome)

    def _predict_signature(self, request: PredictRequest
                           ) -> Tuple[int, Dict[str, Any]]:
        if self.predictor is None:
            return bad_request_response(
                "this server has no calibration loaded; "
                "signature requests are unavailable")
        query = request.signature
        assert query is not None
        try:
            sample = _sample_from_counters(query)
        except (KeyError, ValueError) as exc:
            return bad_request_response(f"bad counters: {exc}")
        signature = signature_from_sample(
            sample, query.platform_family, query.frequency_ghz,
            label=query.label)
        prediction = self.predictor.predict_signature(signature)
        return ok_response(
            kind="signature",
            prediction=prediction.as_dict(),
            device=prediction.device,
            degraded=prediction.degraded,
            confidence=prediction.confidence)


def _decode_json(body: bytes) -> Dict[str, Any]:
    try:
        decoded = json.loads(body.decode() or "{}")
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request body is not JSON: {exc}") from None
    if not isinstance(decoded, dict):
        raise ProtocolError("request body must be a JSON object")
    return decoded


def _sample_from_counters(query: SignatureQuery) -> CounterSample:
    values: Dict[Counter, float] = {}
    for name, count in query.counters.items():
        if not isinstance(count, (int, float)):
            raise ValueError(f"counter {name!r} count must be numeric")
        values[Counter(name)] = float(count)
    return CounterSample(values)


def _outcome_to_response(request: PredictRequest,
                         outcome: Outcome) -> Tuple[int, Dict[str, Any]]:
    if outcome.kind == "ok":
        return ok_response(kind="query", **outcome.payload)
    if outcome.kind == "shed":
        return shed_response(outcome.payload.get("queued", 0),
                             outcome.payload.get("bound", 0))
    if outcome.kind == "deadline":
        return deadline_response(
            outcome.payload.get("deadline_ms", request.deadline_ms),
            outcome.payload.get("waited_ms", 0.0))
    if outcome.kind == "draining":
        return draining_response()
    if outcome.kind == "bad_request":
        return bad_request_response(
            outcome.payload.get("error", "bad request"))
    return error_response(outcome.payload.get("error", "internal error"))


class ServerThread:
    """Run a :class:`PredictionServer` on a private event loop thread.

    The helper tests, the load generator, and the chaos driver use to
    host a live server inside one process:

    >>> with ServerThread(machine) as (host, port):
    ...     ...  # talk HTTP to it
    """

    def __init__(self, machine: Machine, **kwargs: Any):
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server = PredictionServer(machine, **kwargs)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.address: Optional[Tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.address = loop.run_until_complete(self.server.start())
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    def start(self) -> Tuple[str, int]:
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.address is None:
            raise RuntimeError("server failed to start within 30s")
        return self.address

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        drained = asyncio.run_coroutine_threadsafe(
            self.server.drain(), loop)
        drained.result(timeout=60.0)
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=30.0)

    def stats(self) -> Dict[str, Any]:
        return self.server.stats()

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
