"""Wire protocol for ``repro serve`` (``docs/SERVE.md``).

JSON over HTTP/1.1, stdlib only.  Two request kinds share one endpoint
(``POST /v1/predict``):

- a **signature** request carries raw DRAM-only counters; the server
  answers from the calibrated :class:`~repro.core.slowdown.
  SlowdownPredictor` inline (pure arithmetic, never queued);
- a **query** request names a (workload, placement) pair; the server
  admits it into the coalescer, which answers from the result store /
  serve memo or solves it in a :meth:`~repro.uarch.machine.Machine.
  run_batch` lane.

Every admitted request terminates in exactly one of the explicit
outcomes below - the degradation contract ``repro chaos --target
serve`` asserts is that **nothing is ever silently dropped**:

====================  =====  ==============================================
outcome               HTTP   body ``status``
====================  =====  ==============================================
answered              200    ``ok``
shed (queue full)     429    ``shed`` - admission control, never silent
deadline expired      504    ``deadline`` - never solved past its budget
draining              503    ``draining`` - server is shutting down
malformed             400    ``bad_request``
internal fault        500    ``error`` - chaos asserts zero of these
====================  =====  ==============================================

This module also carries the minimal HTTP/1.1 framing shared by the
server, the load generator, and the chaos driver; it knows nothing
about asyncio scheduling or solving.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: Bounded admission queue: a query arriving while this many are
#: already queued is shed with an explicit 429 response.
DEFAULT_QUEUE_BOUND = 128

#: Default per-request deadline.  A query still queued (or batched but
#: not yet solved) when its deadline passes gets an explicit 504
#: response and is never solved.
DEFAULT_DEADLINE_MS = 2000.0

#: How long the coalescer holds the first queued query open for
#: companions before solving the batch.
DEFAULT_COALESCE_WINDOW_MS = 20.0

#: Most lanes one coalesced solve will take; queries beyond this wait
#: for the next batch (still inside their own deadlines).
MAX_COALESCE_LANES = 64

#: Largest request body the server will read.
MAX_BODY_BYTES = 1 << 20

#: Most header lines one request may carry; beyond this the frame is
#: rejected with a 400 instead of growing the header dict unboundedly.
MAX_HEADER_LINES = 64

_STATUS_REASON = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(ValueError):
    """A request that cannot be understood (HTTP 400)."""


@dataclass(frozen=True)
class SignatureQuery:
    """Raw DRAM-only counters to predict from, no simulation needed."""

    counters: Mapping[str, float]
    platform_family: str
    frequency_ghz: float
    label: str = ""


@dataclass(frozen=True)
class RunQuery:
    """A (workload, placement) pair to solve (or serve from cache)."""

    workload: str
    #: ``serde.placement_to_dict`` shape, or None for DRAM-only.
    placement: Optional[Dict[str, Any]] = None
    threads: Optional[int] = None


@dataclass(frozen=True)
class PredictRequest:
    """One parsed ``POST /v1/predict`` body."""

    kind: str
    deadline_ms: float
    signature: Optional[SignatureQuery] = None
    query: Optional[RunQuery] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


def _require(body: Mapping[str, Any], key: str) -> Any:
    try:
        return body[key]
    except KeyError:
        raise ProtocolError(f"missing required field {key!r}") from None


def parse_predict_request(body: Mapping[str, Any],
                          default_deadline_ms: float = DEFAULT_DEADLINE_MS
                          ) -> PredictRequest:
    """Validate one decoded request body into a :class:`PredictRequest`.

    Raises :class:`ProtocolError` (-> HTTP 400) on anything malformed;
    the server must never crash on client input.
    """
    if not isinstance(body, Mapping):
        raise ProtocolError("request body must be a JSON object")
    kind = _require(body, "kind")
    deadline_ms = body.get("deadline_ms", default_deadline_ms)
    if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
        raise ProtocolError(
            f"deadline_ms must be a positive number, got {deadline_ms!r}")

    if kind == "signature":
        counters = _require(body, "counters")
        if not isinstance(counters, Mapping) or not counters:
            raise ProtocolError("counters must be a non-empty object")
        family = _require(body, "platform_family")
        frequency = _require(body, "frequency_ghz")
        if not isinstance(frequency, (int, float)) or frequency <= 0:
            raise ProtocolError("frequency_ghz must be positive")
        return PredictRequest(
            kind=kind, deadline_ms=float(deadline_ms),
            signature=SignatureQuery(
                counters=dict(counters), platform_family=str(family),
                frequency_ghz=float(frequency),
                label=str(body.get("label", ""))))

    if kind == "query":
        workload = _require(body, "workload")
        if not isinstance(workload, str) or not workload:
            raise ProtocolError("workload must be a non-empty string")
        placement = body.get("placement")
        if placement is not None and not isinstance(placement, Mapping):
            raise ProtocolError("placement must be an object or null")
        threads = body.get("threads")
        if threads is not None and (not isinstance(threads, int)
                                    or threads < 1):
            raise ProtocolError("threads must be a positive integer")
        return PredictRequest(
            kind=kind, deadline_ms=float(deadline_ms),
            query=RunQuery(workload=workload,
                           placement=(dict(placement)
                                      if placement is not None else None),
                           threads=threads))

    raise ProtocolError(
        f"unknown request kind {kind!r}; expected 'signature' or 'query'")


# ---------------------------------------------------------------------------
# Response bodies.  One constructor per outcome keeps the status
# vocabulary closed - the chaos suite enumerates exactly these.
# ---------------------------------------------------------------------------

def ok_response(**payload: Any) -> Tuple[int, Dict[str, Any]]:
    body = {"status": "ok"}
    body.update(payload)
    return 200, body


def shed_response(queued: int, bound: int) -> Tuple[int, Dict[str, Any]]:
    """Explicit load-shedding answer: the queue is full, try later."""
    return 429, {"status": "shed", "queued": queued, "bound": bound}


def deadline_response(deadline_ms: float,
                      waited_ms: float) -> Tuple[int, Dict[str, Any]]:
    """The request's deadline expired before it could be solved."""
    return 504, {"status": "deadline", "deadline_ms": deadline_ms,
                 "waited_ms": round(waited_ms, 3)}


def draining_response() -> Tuple[int, Dict[str, Any]]:
    return 503, {"status": "draining"}


def bad_request_response(error: str) -> Tuple[int, Dict[str, Any]]:
    return 400, {"status": "bad_request", "error": error}


def error_response(error: str) -> Tuple[int, Dict[str, Any]]:
    return 500, {"status": "error", "error": error}


# ---------------------------------------------------------------------------
# Minimal HTTP/1.1 framing over asyncio streams (stdlib only).
# ---------------------------------------------------------------------------

async def _read_frame_line(reader: asyncio.StreamReader,
                           what: str) -> Optional[bytes]:
    """One framing line; ``None`` when the peer went away.

    A line exceeding the stream's buffer limit surfaces from
    ``readline`` as ``ValueError``/``LimitOverrunError``; both become
    :class:`ProtocolError` so the server answers 400 and closes
    instead of killing the connection task with an unhandled error.
    """
    try:
        return await reader.readline()
    except ConnectionError:
        return None
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise ProtocolError(f"over-long {what}: {exc}") from None


async def read_http_request(reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str,
                                                Dict[str, str], bytes]]:
    """Read one request; ``None`` on a cleanly closed connection.

    Raises :class:`ProtocolError` on malformed framing - an
    unparseable request line, an over-long line, or more than
    :data:`MAX_HEADER_LINES` headers (the caller answers 400 and
    closes).
    """
    request_line = await _read_frame_line(reader, "request line")
    if request_line is None or not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {request_line!r}")
    method, path, _version = parts

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        line = await _read_frame_line(reader, "header line")
        if line is None:
            return None
        if line in (b"\r\n", b"\n", b""):
            break
        if b":" not in line:
            raise ProtocolError(f"malformed header line: {line!r}")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError(
            f"more than {MAX_HEADER_LINES} header lines")

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise ProtocolError(
                f"malformed Content-Length: {length!r}") from None
        if size < 0 or size > MAX_BODY_BYTES:
            raise ProtocolError(f"unacceptable Content-Length: {size}")
        if size:
            try:
                body = await reader.readexactly(size)
            except asyncio.IncompleteReadError:
                return None
    return method.upper(), path, headers, body


def encode_http_response(status: int, payload: Mapping[str, Any],
                         keep_alive: bool = True) -> bytes:
    """One JSON response, framed for HTTP/1.1."""
    body = json.dumps(payload, sort_keys=True).encode()
    reason = _STATUS_REASON.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body


def encode_http_request(method: str, path: str,
                        payload: Optional[Mapping[str, Any]] = None,
                        keep_alive: bool = True) -> bytes:
    """One client-side request frame (used by loadgen and chaos)."""
    body = (json.dumps(payload).encode()
            if payload is not None else b"")
    headers = [
        f"{method.upper()} {path} HTTP/1.1",
        "Host: repro-serve",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if payload is not None:
        headers.insert(2, "Content-Type: application/json")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body


async def read_http_response(reader: asyncio.StreamReader
                             ) -> Tuple[int, Dict[str, Any]]:
    """Read one response; returns ``(status, decoded_json_body)``."""
    status_line = await reader.readline()
    if not status_line:
        raise ProtocolError("connection closed before response")
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ProtocolError(f"malformed status line: {status_line!r}")
    status = int(parts[1])

    length: Optional[int] = None
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    if length is None:
        raise ProtocolError("response without Content-Length")
    raw = await reader.readexactly(length) if length else b"{}"
    try:
        body = json.loads(raw.decode() or "{}")
    except ValueError:
        raise ProtocolError(f"unparseable response body: {raw!r}") from None
    return status, body
