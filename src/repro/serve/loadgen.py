"""Open-loop constant-rate load generator for ``repro serve``.

wrk2-style: requests are launched on a fixed schedule regardless of
how fast earlier responses come back, and each latency is measured
from the request's *scheduled* send time.  A closed-loop driver (send,
wait, send) would silently stop applying load the moment the server
stalls - the coordinated-omission trap - and the p99 would measure the
generator, not the service.  Open loop keeps the pressure honest, which
is the entire point of an SLO report.

The generated mix cycles deterministically (seeded) over named paper
workloads and a few placements, with a configurable fraction of
signature requests; duplicates are frequent by construction so the
coalescer's twin-merging shows up in the report's coalesce factor.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from typing import Any, Dict, List, Optional, Tuple

from .protocol import (DEFAULT_DEADLINE_MS, ProtocolError,
                       encode_http_request, read_http_response)
from .slo import LatencyRecorder, SLOReport

#: Default request mix: workloads x placements the generator cycles.
DEFAULT_WORKLOADS = ("xsbench", "redis-ycsb", "bc-kron", "pr-twitter",
                     "605.mcf", "resnet50")
DEFAULT_PLACEMENTS: Tuple[Optional[Dict[str, Any]], ...] = (
    None,
    {"dram_fraction": 0.5, "device": "cxl-a", "hotness_bias": 0.0},
    {"dram_fraction": 0.25, "device": "cxl-b", "hotness_bias": 0.0},
)

#: Concurrent connections the generator multiplexes requests over.
DEFAULT_CONNECTIONS = 8


def _mix_draw(seed: int, index: int, space: int) -> int:
    """Deterministic uniform draw in [0, space) for request ``index``."""
    digest = hashlib.sha256(f"loadgen:{seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % space


def request_body(index: int, seed: int = 0,
                 deadline_ms: float = DEFAULT_DEADLINE_MS,
                 workloads: Tuple[str, ...] = DEFAULT_WORKLOADS,
                 placements: Tuple[Optional[Dict[str, Any]], ...]
                 = DEFAULT_PLACEMENTS) -> Dict[str, Any]:
    """The deterministic request body for schedule slot ``index``."""
    workload = workloads[_mix_draw(seed, index * 2, len(workloads))]
    placement = placements[_mix_draw(seed, index * 2 + 1, len(placements))]
    body: Dict[str, Any] = {"kind": "query", "workload": workload,
                            "deadline_ms": deadline_ms}
    if placement is not None:
        body["placement"] = dict(placement)
    return body


class _Connection:
    """One serially-reused keep-alive connection to the server."""

    def __init__(self, host: str, port: int):
        self.host, self.port = host, port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def request(self, body: Dict[str, Any]
                      ) -> Tuple[int, Dict[str, Any]]:
        async with self._lock:
            if self._writer is None:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port)
            try:
                self._writer.write(encode_http_request(
                    "POST", "/v1/predict", body))
                await self._writer.drain()
                return await read_http_response(self._reader)
            except (ConnectionError, ProtocolError,
                    asyncio.IncompleteReadError):
                await self.close()
                raise

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None


async def run_loadgen(host: str, port: int, *, rate_rps: float,
                      duration_s: float,
                      deadline_ms: float = DEFAULT_DEADLINE_MS,
                      connections: int = DEFAULT_CONNECTIONS,
                      seed: int = 0,
                      stats_probe: bool = True) -> SLOReport:
    """Drive the server at ``rate_rps`` for ``duration_s`` seconds.

    Returns the client-side :class:`~repro.serve.slo.SLOReport` with
    the server's ``/stats`` snapshot (coalesce factor, breaker state)
    embedded when ``stats_probe`` is set.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    total = max(1, int(rate_rps * duration_s))
    interval_s = 1.0 / rate_rps
    recorder = LatencyRecorder(seed=seed)
    pool = [_Connection(host, port) for _ in range(max(1, connections))]
    inflight: List["asyncio.Task[None]"] = []

    async def fire(index: int, scheduled_at: float) -> None:
        body = request_body(index, seed=seed, deadline_ms=deadline_ms)
        connection = pool[index % len(pool)]
        try:
            _status, payload = await connection.request(body)
            outcome = payload.get("status", "error")
            if outcome not in ("ok", "shed", "deadline", "draining",
                               "bad_request", "error"):
                outcome = "transport_error"
        except (ConnectionError, ProtocolError, OSError,
                asyncio.IncompleteReadError):
            outcome = "transport_error"
        # Latency from the *scheduled* send time: queueing delay the
        # generator suffered counts against the server, not for it.
        recorder.record(outcome,
                        (time.monotonic() - scheduled_at) * 1000.0)

    start = time.monotonic()
    schedule: List[float] = []
    for index in range(total):
        scheduled_at = start + index * interval_s
        delay_s = scheduled_at - time.monotonic()
        if delay_s > 0:
            await asyncio.sleep(delay_s)
        schedule.append(scheduled_at)
        inflight.append(asyncio.ensure_future(fire(index, scheduled_at)))

    if inflight:
        # return_exceptions so one escaped exception in fire() (a bug,
        # a cancelled connection, anything outside its caught set)
        # cannot destroy the whole report after the full run duration.
        settled = await asyncio.gather(*inflight, return_exceptions=True)
        for scheduled_at, outcome in zip(schedule, settled):
            if isinstance(outcome, Exception):
                recorder.record(
                    "transport_error",
                    (time.monotonic() - scheduled_at) * 1000.0)
            elif isinstance(outcome, BaseException):
                raise outcome  # CancelledError/KeyboardInterrupt

    server_stats: Dict[str, Any] = {}
    if stats_probe:
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_http_request("GET", "/stats",
                                             keep_alive=False))
            await writer.drain()
            _status, payload = await read_http_response(reader)
            server_stats = payload.get("stats", {})
            writer.close()
        except (ConnectionError, ProtocolError, OSError):
            server_stats = {}
    for connection in pool:
        await connection.close()

    return SLOReport(
        rate_rps=rate_rps,
        duration_s=duration_s,
        sent=total,
        outcomes=recorder.counts(),
        latency_ms=recorder.latency_summary_ms(),
        server=server_stats,
    )


def run_loadgen_sync(host: str, port: int, **kwargs: Any) -> SLOReport:
    """Blocking wrapper: run the generator on a fresh event loop."""
    return asyncio.run(run_loadgen(host, port, **kwargs))
