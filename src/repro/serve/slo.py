"""SLO accounting for the prediction service (``docs/SERVE.md``).

Two halves:

- :class:`LatencyRecorder` - a thread-safe outcome/latency accumulator
  the server (and the load generator, independently) feed per-request;
- :class:`SLOReport` - the schema-versioned artifact ``repro loadgen``
  emits and CI uploads: percentiles (p50/p99/p999) of the
  slowdown-prediction latency, the shed and deadline-expiry rates, and
  the coalesce factor (lanes solved per batch - the whole economic
  argument for the coalescer is this number staying above 1 under
  concurrent load).

Latency percentiles are computed on the *scheduled* start of each
request, not the moment the client got around to sending it - the
wrk2-style correction for coordinated omission, so a stalled server
cannot hide its own queueing delay from the report.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

#: Schema tag on every SLO payload; bump on layout changes.
SLO_SCHEMA = "repro-slo/1"

#: Latency samples retained per outcome; beyond this the recorder
#: keeps a uniform reservoir instead of storing every sample (the
#: report flags how many arrivals are represented only statistically).
MAX_LATENCY_SAMPLE_COUNT = 200_000


def _reservoir_draw(seed: int, arrival: int, space: int) -> int:
    """Deterministic uniform draw in ``[0, space)`` for one arrival.

    Hash-based rather than stateful RNG so a given (seed, arrival
    index) always lands on the same slot regardless of thread
    interleaving of *other* outcomes.
    """
    digest = hashlib.sha256(
        f"slo-reservoir:{seed}:{arrival}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % space

#: The closed outcome vocabulary (mirrors the protocol statuses).
OUTCOMES = ("ok", "shed", "deadline", "draining", "bad_request",
            "error", "transport_error")


def percentile_ms(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (milliseconds)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class LatencyRecorder:
    """Thread-safe per-outcome latency accumulator.

    Past ``max_samples`` ok latencies the recorder switches to seeded
    reservoir sampling (Algorithm R): every arrival - first or last -
    has the same probability of being retained, so a long run's
    p99/p999 describe the whole run rather than its warm-up window.
    ``seed`` pins the replacement draws; the same arrival sequence
    under the same seed reproduces the same reservoir byte for byte.
    """

    def __init__(self, max_samples: int = MAX_LATENCY_SAMPLE_COUNT,
                 seed: int = 0):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self._seed = seed
        self._counts: Dict[str, int] = {}
        self._latencies_ms: List[float] = []
        self._ok_seen = 0
        self.dropped_samples = 0

    def record(self, outcome: str, latency_ms: float) -> None:
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        with self._lock:
            self._counts[outcome] = self._counts.get(outcome, 0) + 1
            if outcome == "ok":
                # Percentiles are over *answered* predictions: shed and
                # expired requests terminate fast by design and would
                # flatter the tail.
                self._ok_seen += 1
                if len(self._latencies_ms) < self._max_samples:
                    self._latencies_ms.append(latency_ms)
                    return
                # Reservoir step: arrival n (1-based) replaces a
                # resident with probability max_samples / n.
                slot = _reservoir_draw(self._seed, self._ok_seen,
                                       self._ok_seen)
                if slot < self._max_samples:
                    self._latencies_ms[slot] = latency_ms
                # Whether replaced or rejected, exactly one sample's
                # value is no longer individually represented.
                self.dropped_samples += 1

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def latency_summary_ms(self) -> Dict[str, float]:
        with self._lock:
            samples = list(self._latencies_ms)
        return {
            "p50": round(percentile_ms(samples, 0.50), 3),
            "p99": round(percentile_ms(samples, 0.99), 3),
            "p999": round(percentile_ms(samples, 0.999), 3),
            "max": round(max(samples), 3) if samples else 0.0,
            "samples": float(len(samples)),
        }


@dataclass
class SLOReport:
    """The committed/uploaded service-level report."""

    rate_rps: float
    duration_s: float
    sent: int
    outcomes: Dict[str, int]
    latency_ms: Dict[str, float]
    #: Server-side counters snapshot (/stats) at the end of the run.
    server: Dict[str, Any] = field(default_factory=dict)
    schema: str = SLO_SCHEMA

    @property
    def ok(self) -> int:
        return self.outcomes.get("ok", 0)

    @property
    def shed_fraction(self) -> float:
        return self.outcomes.get("shed", 0) / max(1, self.sent)

    @property
    def deadline_fraction(self) -> float:
        return self.outcomes.get("deadline", 0) / max(1, self.sent)

    @property
    def failure_count(self) -> int:
        """Responses outside the graceful vocabulary (must be 0)."""
        return (self.outcomes.get("error", 0)
                + self.outcomes.get("transport_error", 0))

    @property
    def coalesce_factor(self) -> float:
        """Query lanes solved per batch, from the server's counters."""
        batches = self.server.get("batches_solved", 0)
        lanes = self.server.get("lanes_solved", 0)
        return lanes / batches if batches else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "rate_rps": self.rate_rps,
            "duration_s": self.duration_s,
            "sent": self.sent,
            "outcomes": dict(self.outcomes),
            "latency_ms": dict(self.latency_ms),
            "shed_fraction": round(self.shed_fraction, 6),
            "deadline_fraction": round(self.deadline_fraction, 6),
            "failures": self.failure_count,
            "coalesce_factor": round(self.coalesce_factor, 4),
            "server": dict(self.server),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SLOReport":
        if data.get("schema") != SLO_SCHEMA:
            raise ValueError(
                f"unsupported SLO schema {data.get('schema')!r}; "
                f"expected {SLO_SCHEMA!r}")
        return cls(rate_rps=float(data["rate_rps"]),
                   duration_s=float(data["duration_s"]),
                   sent=int(data["sent"]),
                   outcomes=dict(data["outcomes"]),
                   latency_ms=dict(data["latency_ms"]),
                   server=dict(data.get("server", {})))

    def render(self) -> str:
        """Deterministic multi-line report (what the CLI prints)."""
        lat = self.latency_ms
        lines = [
            f"slo: {self.sent} requests @ {self.rate_rps:g} rps "
            f"over {self.duration_s:g}s",
            f"  outcomes: " + ", ".join(
                f"{name}={self.outcomes[name]}"
                for name in sorted(self.outcomes)),
            f"  prediction latency ms: p50={lat.get('p50', 0.0):g} "
            f"p99={lat.get('p99', 0.0):g} p999={lat.get('p999', 0.0):g} "
            f"max={lat.get('max', 0.0):g}",
            f"  shed: {self.shed_fraction:.2%}  "
            f"deadline-expired: {self.deadline_fraction:.2%}  "
            f"failures: {self.failure_count}",
            f"  coalesce factor: {self.coalesce_factor:.2f} "
            f"lanes/batch "
            f"({self.server.get('lanes_solved', 0)} lanes, "
            f"{self.server.get('batches_solved', 0)} batches)",
        ]
        breaker = self.server.get("breaker")
        if isinstance(breaker, dict):
            lines.append(
                f"  store breaker: state={breaker.get('state')} "
                f"opens={breaker.get('opens', 0)} "
                f"failures={breaker.get('failures', 0)}")
        return "\n".join(lines)


def load_report(path) -> SLOReport:
    """Read a committed SLO payload back (CI trend checks, tests)."""
    with open(path) as handle:
        return SLOReport.from_dict(json.load(handle))
