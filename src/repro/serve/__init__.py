"""Online prediction service: ``repro serve`` and its clients.

The batch stack (executor, store, sweeps) answers "what is the
slowdown of these thousand configurations" offline.  This package
answers the *online* form of the same question - a placement daemon or
a scheduler asking "what would this workload's slowdown be on that
tier, right now" - with the robustness contract an online caller
needs:

- bounded admission with **explicit load shedding** (never a silent
  drop),
- per-request **deadlines** enforced at every stage (an expired query
  is never solved),
- concurrent queries **coalesced** into one vectorized
  :meth:`~repro.uarch.machine.Machine.run_batch` solve,
- a **circuit breaker** around the result store so an unreachable
  cache degrades to solve-without-cache instead of failing requests,
- **graceful drain** on shutdown.

``docs/SERVE.md`` documents the protocol, the coalescing and deadline
semantics, and the SLO report schema; ``repro chaos --target serve``
asserts the degradation contract against a live server.
"""

from .breaker import (BREAKER_COOLDOWN_S, BREAKER_FAILURE_THRESHOLD,
                      BreakerOpenError, CircuitBreaker)
from .coalescer import Outcome, QueryCoalescer
from .loadgen import run_loadgen, run_loadgen_sync
from .protocol import (DEFAULT_COALESCE_WINDOW_MS, DEFAULT_DEADLINE_MS,
                       DEFAULT_QUEUE_BOUND, MAX_COALESCE_LANES,
                       PredictRequest, ProtocolError, RunQuery,
                       SignatureQuery, parse_predict_request)
from .server import PredictionServer, ServerThread
from .slo import SLO_SCHEMA, LatencyRecorder, SLOReport, load_report

__all__ = [
    "BREAKER_COOLDOWN_S",
    "BREAKER_FAILURE_THRESHOLD",
    "BreakerOpenError",
    "CircuitBreaker",
    "DEFAULT_COALESCE_WINDOW_MS",
    "DEFAULT_DEADLINE_MS",
    "DEFAULT_QUEUE_BOUND",
    "LatencyRecorder",
    "MAX_COALESCE_LANES",
    "Outcome",
    "PredictRequest",
    "PredictionServer",
    "ProtocolError",
    "QueryCoalescer",
    "RunQuery",
    "SLOReport",
    "SLO_SCHEMA",
    "ServerThread",
    "SignatureQuery",
    "load_report",
    "parse_predict_request",
    "run_loadgen",
    "run_loadgen_sync",
]
