"""Cache/prefetch slowdown model (paper section 4.2, Eq. 6).

Prefetchers lose timeliness as memory latency grows; demand accesses
then wait on in-flight LFB/SQ entries, and contention in those buffers
blocks other allocations.  The DRAM-visible precursors are:

- ``R_LFB-hit`` - how much the workload already relies on the LFB for
  data delivery (P5 / (P4 + P5));
- ``R_Mem`` - how much of that delivery is fed by prefetches from
  memory (platform-specific proxy, see
  :func:`repro.core.signature.mem_prefetch_reliance`);
- ``s_Cache / c`` - the baseline cache-level stall intensity.

Eq. 6 multiplies the three with a per-(platform, device) constant:
``S_Cache = k_cache * R_LFB-hit * R_Mem * s_Cache / c``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .signature import Signature


@dataclass(frozen=True)
class CacheModel:
    """Calibrated Eq. 6 predictor."""

    k: float

    def __post_init__(self):
        if self.k < 0:
            raise ValueError("k must be non-negative")

    def predict(self, dram: Signature) -> float:
        """Predicted cache slowdown from a DRAM-only signature."""
        if dram.cycles <= 0:
            return 0.0
        return (self.k * dram.lfb_hit_ratio *
                dram.mem_prefetch_reliance * dram.cache_stall_fraction)

    def predictor_value(self, dram: Signature) -> float:
        """The un-scaled predictor (Eq. 6 without ``k``)."""
        return (dram.lfb_hit_ratio * dram.mem_prefetch_reliance *
                dram.cache_stall_fraction)


def measured_cache_slowdown(dram: Signature, slow: Signature) -> float:
    """Ground-truth ``S_Cache`` via the cache-level stall delta."""
    if dram.cycles <= 0:
        return 0.0
    return (slow.s_cache - dram.s_cache) / dram.cycles
