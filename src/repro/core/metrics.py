"""Baseline performance metrics (Table 1 / Fig. 1).

The scalar proxies prior systems use to guide placement, each computed
from the same DRAM profiling run CAMP uses.  The paper correlates each
with actual slowdown across the 265-workload corpus and shows they all
fall short of CAMP's causal predictor:

================  =====================  ==============================
metric            system                 paper's Pearson (NUMA corpus)
================  =====================  ==============================
MPKI              Memstrata              0.40
stall cycles      X-Mem                  0.84
IPC               Colloid                0.37
bandwidth         BATMAN                 0.66
latency (+IPC)    Caption                0.60
AOL (L/MLP)       SoarAlto               0.88
CAMP predictor    CAMP                   0.97
================  =====================  ==============================

Each metric here returns the raw scalar; correlation studies take
absolute Pearson values, since e.g. IPC correlates negatively by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .counters import Counter, ProfiledRun
from .signature import Signature, signature


def mpki(sig: Signature) -> float:
    """Misses per kilo-instruction (Memstrata's hotness proxy).

    Offcore demand reads per kilo-instruction - what an LLC-miss-based
    MPKI measurement sees.
    """
    if sig.instructions <= 0:
        return 0.0
    return sig.demand_reads / (sig.instructions / 1000.0)


def stall_fraction(sig: Signature) -> float:
    """Memory stall cycles over total cycles (X-Mem-style)."""
    return sig.llc_stall_fraction


def ipc(sig: Signature) -> float:
    """Instructions per cycle (Colloid's performance proxy)."""
    return sig.ipc


def bandwidth_gbps(profile: ProfiledRun) -> float:
    """Memory traffic in GB/s (BATMAN's proxy).

    Measured the way real bandwidth monitors do: uncore CAS counts
    (reads + writes) at 64 B per line over the run's wall-clock
    duration, falling back to offcore reads + prefetch fills when the
    uncore events are unavailable.
    """
    if profile.duration_s <= 0:
        return 0.0
    sample = profile.sample
    lines = sample[Counter.UNC_CAS_RD] + sample[Counter.UNC_CAS_WR]
    if lines <= 0:
        lines = (sample[Counter.OR_DEMAND_RD] +
                 sample[Counter.TOR_INS_IA_PREF])
    return lines * 64.0 / profile.duration_s / 1e9


def latency_ns(sig: Signature) -> float:
    """Mean offcore read latency in ns (Caption/Colloid's signal)."""
    return sig.latency_ns


def aol(sig: Signature) -> float:
    """SoarAlto's AOL: latency amortized over MLP (cycles)."""
    return sig.aol


@dataclass(frozen=True)
class MetricSpec:
    """One baseline metric with its provenance."""

    name: str
    system: str
    paper_pearson: float
    compute: Callable[[ProfiledRun], float]


def _on_signature(fn: Callable[[Signature], float]
                  ) -> Callable[[ProfiledRun], float]:
    def wrapper(profile: ProfiledRun) -> float:
        return fn(signature(profile))
    return wrapper


#: The Table 1 metric inventory (CAMP's own predictor is added by the
#: experiment drivers, since it needs a calibration).
BASELINE_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("mpki", "Memstrata", 0.40, _on_signature(mpki)),
    MetricSpec("bandwidth", "BATMAN", 0.66, bandwidth_gbps),
    MetricSpec("latency", "Caption", 0.60, _on_signature(latency_ns)),
    MetricSpec("ipc", "Colloid", 0.37, _on_signature(ipc)),
    MetricSpec("stalls", "X-Mem", 0.84, _on_signature(stall_fraction)),
    MetricSpec("aol", "SoarAlto", 0.88, _on_signature(aol)),
)


def compute_all(profile: ProfiledRun) -> Dict[str, float]:
    """All baseline metrics for one profiling run, keyed by name."""
    return {spec.name: spec.compute(profile)
            for spec in BASELINE_METRICS}
