"""Performance-counter vocabulary shared by the simulator and CAMP.

This module reproduces Table 5 of the paper: the Intel PMU counters that
CAMP reads (``P1``-``P17``), plus the architectural cycle and instruction
counters that every model normalizes against.

The paper's artifact reads these counters through Linux ``perf``; in this
reproduction the :class:`~repro.uarch.machine.Machine` substrate emits
them from an analytic microarchitectural model.  Either way, CAMP only
ever sees a :class:`CounterSample` - a flat mapping from counter id to an
event count - so the prediction code is oblivious to whether the numbers
came from silicon or from the simulator.

Counter identifiers follow the paper's ``P``-numbering.  Where the paper
names the underlying Intel event (e.g. ``OFFCORE_REQUESTS_OUTSTANDING``),
the :class:`CounterSpec` records it for documentation purposes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple


class Counter(enum.Enum):
    """The PMU counters of Table 5, plus cycles and instructions.

    Members are identified by the paper's ``P`` index.  ``CYCLES`` and
    ``INSTRUCTIONS`` correspond to the fixed architectural counters that
    the paper omits from the table ("including the cycle-count counter").
    """

    CYCLES = "cycles"
    INSTRUCTIONS = "instructions"
    #: #stall cycles on L1-miss demand loads (P1, SKX model).
    STALLS_L1D_MISS = "P1"
    #: #stall cycles on L2-miss demand loads (P2, SPR/EMR model).
    STALLS_L2_MISS = "P2"
    #: #stall cycles on L3-miss demand loads (P3) - the s_LLC proxy.
    STALLS_L3_MISS = "P3"
    #: Load instructions missing L1 (P4).
    L1_MISS = "P4"
    #: Load instructions missing L1 but hitting the Line Fill Buffer (P5).
    LFB_HIT = "P5"
    #: #stall cycles where the Store Buffer was full (P6) - the s_SB proxy.
    BOUND_ON_STORES = "P6"
    #: All L1 prefetch requests to offcore (P7, SKX).
    PF_L1D_ANY_RESPONSE = "P7"
    #: L1 prefetch requests to offcore that hit in L3 (P8, SKX).
    PF_L1D_L3_HIT = "P8"
    #: L2 prefetch data reads, any response type (P9, derivation only).
    PF_L2_ANY_RESPONSE = "P9"
    #: L2 prefetch reads that hit in the L3 (P10, derivation only).
    PF_L2_L3_HIT = "P10"
    #: Outstanding demand data reads, summed per cycle (P11, derivation only).
    ORO_DEMAND_RD = "P11"
    #: Demand data read requests sent to offcore (P12).
    OR_DEMAND_RD = "P12"
    #: #cycles with at least one pending demand read (P13) - memory-active C.
    ORO_CYC_W_DEMAND_RD = "P13"
    #: Uncore CHA LLC lookups, prefetch reads (P14, SPR/EMR).
    LLC_LOOKUP_PF_RD = "P14"
    #: Uncore CHA LLC lookups, all requests (P15, SPR/EMR).
    LLC_LOOKUP_ALL = "P15"
    #: TOR inserts: prefetches missing the snoop filter (P16, SPR/EMR).
    TOR_INS_IA_PREF = "P16"
    #: TOR inserts: prefetches hitting the snoop filter (P17, SPR/EMR).
    TOR_INS_IA_HIT_PREF = "P17"
    #: Uncore DRAM CAS counts (reads / writes).  Not part of the Table 5
    #: model inputs - these are the standard memory-bandwidth monitoring
    #: events (UNC_M_CAS_COUNT.*) every tiering baseline and the
    #: saturation-aware extension use to observe traffic.
    UNC_CAS_RD = "unc_cas_rd"
    UNC_CAS_WR = "unc_cas_wr"

    @property
    def paper_index(self) -> Optional[int]:
        """The ``P`` index from Table 5, or ``None`` for fixed counters."""
        if self.value.startswith("P"):
            return int(self.value[1:])
        return None


@dataclass(frozen=True)
class CounterSpec:
    """Descriptive metadata for one Table 5 counter."""

    counter: Counter
    #: Paper's one-line description.
    description: str
    #: Name of the underlying Intel event family, when the paper gives one.
    intel_event: str = ""
    #: Platforms whose final model uses the counter ("skx", "spr", "emr").
    used_by: Tuple[str, ...] = ()
    #: True for counters that appear only during model derivation and
    #: cancel out of the final predictor (P9-P11 in the paper).
    derivation_only: bool = False


#: Table 5, reproduced as structured metadata.  ``used_by`` mirrors the
#: dagger/double-dagger annotations in the paper.
COUNTER_TABLE: Tuple[CounterSpec, ...] = (
    CounterSpec(Counter.STALLS_L1D_MISS, "#s on L1 miss demand load",
                "CYCLE_ACTIVITY.STALLS_L1D_MISS", used_by=("skx",)),
    CounterSpec(Counter.STALLS_L2_MISS, "#s on L2 miss demand load",
                "CYCLE_ACTIVITY.STALLS_L2_MISS",
                used_by=("skx", "spr", "emr")),
    CounterSpec(Counter.STALLS_L3_MISS, "#s on L3 miss demand load",
                "CYCLE_ACTIVITY.STALLS_L3_MISS",
                used_by=("skx", "spr", "emr")),
    CounterSpec(Counter.L1_MISS, "Load instructions missing L1",
                "MEM_LOAD_RETIRED.L1_MISS", used_by=("skx", "spr", "emr")),
    CounterSpec(Counter.LFB_HIT, "Load instructions missing L1, hitting LFB",
                "MEM_LOAD_RETIRED.FB_HIT", used_by=("skx", "spr", "emr")),
    CounterSpec(Counter.BOUND_ON_STORES, "#s where the Store Buffer was full",
                "EXE_ACTIVITY.BOUND_ON_STORES",
                used_by=("skx", "spr", "emr")),
    CounterSpec(Counter.PF_L1D_ANY_RESPONSE,
                "All L1 prefetch requests to offcore",
                "OCR.HWPF_L1D.ANY_RESPONSE", used_by=("skx",)),
    CounterSpec(Counter.PF_L1D_L3_HIT,
                "L1 prefetch to offcore that hit L3",
                "OCR.HWPF_L1D.L3_HIT", used_by=("skx",)),
    CounterSpec(Counter.PF_L2_ANY_RESPONSE,
                "L2 prefetch data reads, any response type",
                "OCR.HWPF_L2_RD.ANY_RESPONSE", derivation_only=True),
    CounterSpec(Counter.PF_L2_L3_HIT,
                "L2 prefetch reads that hit in the L3",
                "OCR.HWPF_L2_RD.L3_HIT", derivation_only=True),
    CounterSpec(Counter.ORO_DEMAND_RD,
                "Outstanding demand data read per cycle",
                "OFFCORE_REQUESTS_OUTSTANDING.DEMAND_DATA_RD",
                derivation_only=True),
    CounterSpec(Counter.OR_DEMAND_RD,
                "Demand data read requests sent to offcore",
                "OFFCORE_REQUESTS.DEMAND_DATA_RD",
                used_by=("skx", "spr", "emr")),
    CounterSpec(Counter.ORO_CYC_W_DEMAND_RD,
                "#c when demand read request is pending",
                "OFFCORE_REQUESTS_OUTSTANDING.CYCLES_WITH_DEMAND_DATA_RD",
                used_by=("skx", "spr", "emr")),
    CounterSpec(Counter.LLC_LOOKUP_PF_RD,
                "Cache & snoop filter lookups; prefetches",
                "UNC_CHA_LLC_LOOKUP.DATA_READ_PREF", used_by=("spr", "emr")),
    CounterSpec(Counter.LLC_LOOKUP_ALL,
                "Cache & snoop filter lookups; any request",
                "UNC_CHA_LLC_LOOKUP.ALL", used_by=("spr", "emr")),
    CounterSpec(Counter.TOR_INS_IA_PREF,
                "Prefetch that misses in the snoop filter",
                "UNC_CHA_TOR_INSERTS.IA_MISS_PREF", used_by=("spr", "emr")),
    CounterSpec(Counter.TOR_INS_IA_HIT_PREF,
                "Prefetch that hits in the snoop filter",
                "UNC_CHA_TOR_INSERTS.IA_HIT_PREF", used_by=("spr", "emr")),
)

_SPEC_BY_COUNTER: Dict[Counter, CounterSpec] = {
    spec.counter: spec for spec in COUNTER_TABLE
}


def counter_spec(counter: Counter) -> CounterSpec:
    """Return Table 5 metadata for ``counter``.

    Raises :class:`KeyError` for ``CYCLES``/``INSTRUCTIONS``, which are
    architectural fixed counters outside the table.
    """
    return _SPEC_BY_COUNTER[counter]


def counters_for_platform(platform_family: str) -> Tuple[Counter, ...]:
    """The counters the final model reads on a platform family.

    ``platform_family`` is one of ``"skx"``, ``"spr"`` or ``"emr"``.  The
    returned tuple includes ``CYCLES`` and ``INSTRUCTIONS``; the paper
    reports the totals as "11 counters on SKX, 12 on SPR/EMR" counting
    only cycles on top of the Table 5 events.
    """
    family = platform_family.lower()
    if family not in ("skx", "spr", "emr"):
        raise ValueError(f"unknown platform family: {platform_family!r}")
    model_counters = tuple(
        spec.counter for spec in COUNTER_TABLE if family in spec.used_by
    )
    return (Counter.CYCLES, Counter.INSTRUCTIONS) + model_counters


class CounterSample:
    """A single profiling sample: counter id -> event count.

    This is the only data CAMP receives from a profiled execution.  It
    behaves like a read-only mapping, with a few conveniences:

    - item access by :class:`Counter` or by the paper's string id
      (``sample["P3"]``),
    - derived quantities used throughout the models
      (:attr:`latency_cycles`, :attr:`mlp`, :attr:`ipc`, ...),
    - arithmetic helpers for aggregating samples over time windows.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[Counter, float]):
        clean: Dict[Counter, float] = {}
        for key, value in values.items():
            counter = key if isinstance(key, Counter) else Counter(key)
            value = float(value)
            if not math.isfinite(value):
                raise ValueError(f"non-finite count for {counter}: {value}")
            if value < 0:
                raise ValueError(f"negative count for {counter}: {value}")
            clean[counter] = value
        if Counter.CYCLES not in clean:
            raise ValueError("a CounterSample must include CYCLES")
        self._values = clean

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, key) -> float:
        counter = key if isinstance(key, Counter) else Counter(key)
        return self._values.get(counter, 0.0)

    def __contains__(self, key) -> bool:
        counter = key if isinstance(key, Counter) else Counter(key)
        return counter in self._values

    def __iter__(self) -> Iterator[Counter]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> Iterable[Tuple[Counter, float]]:
        return self._values.items()

    def as_dict(self) -> Dict[Counter, float]:
        """A shallow copy of the raw counter values."""
        return dict(self._values)

    def __repr__(self) -> str:
        cycles = self._values.get(Counter.CYCLES, 0.0)
        return (f"CounterSample(cycles={cycles:.3g}, "
                f"n_counters={len(self._values)})")

    # -- derived quantities ------------------------------------------------
    @property
    def cycles(self) -> float:
        """Total core cycles ``c`` - the normalization base of every model."""
        return self._values[Counter.CYCLES]

    @property
    def instructions(self) -> float:
        return self[Counter.INSTRUCTIONS]

    @property
    def ipc(self) -> float:
        """Instructions per cycle; 0 when the sample lacks instructions."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def memory_active_cycles(self) -> float:
        """``C``: cycles with >=1 pending offcore demand read (P13)."""
        return self[Counter.ORO_CYC_W_DEMAND_RD]

    @property
    def demand_reads(self) -> float:
        """``N``: demand data reads sent offcore (P12)."""
        return self[Counter.OR_DEMAND_RD]

    @property
    def outstanding_read_cycles(self) -> float:
        """Integral of outstanding demand reads over cycles (P11)."""
        return self[Counter.ORO_DEMAND_RD]

    @property
    def latency_cycles(self) -> float:
        """Average offcore demand-read latency in cycles (Little's law).

        ``L = P11 / P12``: occupancy integral divided by request count.
        Returns 0 when the workload issued no offcore demand reads.
        """
        reads = self.demand_reads
        if reads <= 0:
            return 0.0
        return self.outstanding_read_cycles / reads

    @property
    def mlp(self) -> float:
        """Average memory-level parallelism while memory-active.

        ``MLP = P11 / P13``: mean number of outstanding demand reads over
        the cycles where at least one is pending.  Returns 1.0 when the
        workload never had a pending read (the neutral value for the
        models, which divide by MLP).
        """
        active = self.memory_active_cycles
        if active <= 0:
            return 1.0
        return max(1.0, self.outstanding_read_cycles / active)

    @property
    def aol(self) -> float:
        """SoarAlto's AOL metric: latency amortized over MLP (``L/MLP``)."""
        return self.latency_cycles / self.mlp

    # -- arithmetic --------------------------------------------------------
    def scaled(self, factor: float) -> "CounterSample":
        """All counts multiplied by ``factor`` (e.g. window weighting)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return CounterSample({k: v * factor for k, v in self._values.items()})

    def merged(self, other: "CounterSample") -> "CounterSample":
        """Counter-wise sum, as if the two windows were profiled as one."""
        merged = dict(self._values)
        for counter, value in other.items():
            merged[counter] = merged.get(counter, 0.0) + value
        return CounterSample(merged)


@dataclass(frozen=True)
class ProfiledRun:
    """A profiling run as CAMP's models consume it.

    Combines the raw :class:`CounterSample` with the contextual facts a
    perf wrapper would record alongside: which platform family produced
    the counters (the S_Cache mapping differs between SKX and SPR/EMR),
    which memory the workload ran on, and the wall-clock duration.
    """

    sample: CounterSample
    #: Platform family: "skx", "spr" or "emr".
    platform_family: str
    #: Memory backing the run: "dram", "numa", "cxl-a", ... (tier name).
    tier: str
    #: Core clock, for cycle<->ns conversions in the models.
    frequency_ghz: float = 2.2
    #: Wall-clock seconds, used only for bandwidth-style diagnostics.
    duration_s: float = 0.0
    #: Optional free-form label (workload name) for reporting.
    label: str = ""
    #: Optional per-window samples for time-series prediction (Fig. 8).
    windows: Tuple[CounterSample, ...] = field(default=())

    def __post_init__(self):
        if self.platform_family.lower() not in ("skx", "spr", "emr"):
            raise ValueError(
                f"unknown platform family: {self.platform_family!r}")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def cycles(self) -> float:
        return self.sample.cycles

    @property
    def latency_ns(self) -> float:
        """Observed mean offcore demand-read latency in nanoseconds."""
        return self.sample.latency_cycles / self.frequency_ghz
