"""Demand-read slowdown model (paper section 4.1, Eq. 2-5).

The chain of reasoning, reproduced from the paper:

1. Demand-read slowdown is the growth of memory-active cycles
   normalized by execution cycles: ``S_DRd ~= (C_CXL - C_DRAM) / c``
   (Eq. 2).
2. Little's law gives ``C = N * L / MLP`` (Eq. 3); with request counts
   stable across tiers (``R_N ~= 1``), the growth collapses to
   ``S_DRd ~= (R_Lat / R_MLP - 1) * C_DRAM / c`` (Eq. 4).
3. The latency-tolerance factor ``R_Lat / R_MLP`` cannot be measured
   from a DRAM-only run, but it is predictable: it follows a hyperbolic
   function of the baseline AOL (``L_DRAM / MLP_DRAM``), fit once per
   (platform, device) from microbenchmarks (Eq. 5, Fig. 4f).

The exported pieces:

- :func:`hyperbolic_tolerance` - the fitted ``f(AOL) = 1/(p + q/AOL)``;
- :class:`DrdModel` - the calibrated Eq. 5 predictor, using the L3-miss
  stall counter ``s_LLC`` (P3) as the intensity proxy for ``C``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .signature import Signature

#: AOL floor (cycles) guarding the hyperbola's 1/AOL term.
_MIN_AOL = 1e-6


def hyperbolic_tolerance(aol_cycles: float, p: float, q: float) -> float:
    """``f(AOL) = 1 / (p + q / AOL)``: the latency-tolerance scaling.

    Approximates the unobservable ``R_Lat / R_MLP - 1`` from the
    DRAM-visible AOL.  Asymptotics (paper 4.1.2): at high AOL
    (serialized workloads) the factor saturates at ``1/p`` - slowdown
    is dominated by the raw latency ratio; at low AOL (abundant MLP)
    the ``q/AOL`` term dominates and tolerance improves.
    """
    aol = max(aol_cycles, _MIN_AOL)
    denominator = p + q / aol
    if denominator <= 0:
        # A degenerate fit; the scaling saturates rather than exploding.
        return 1.0 / max(p, _MIN_AOL)
    return 1.0 / denominator


@dataclass(frozen=True)
class DrdModel:
    """Calibrated Eq. 5: ``S_DRd = k * f(AOL) * s_LLC / c``.

    ``p`` and ``q`` come from the hyperbolic fit of microbenchmark
    latency-tolerance data; ``k`` converts the stall proxy ``s_LLC``
    into memory-active cycles (both are platform+device specific).
    """

    p: float
    q: float
    k: float

    def __post_init__(self):
        if self.k < 0:
            raise ValueError("k must be non-negative")

    def tolerance(self, aol_cycles: float) -> float:
        """The fitted latency-tolerance factor for a baseline AOL."""
        return hyperbolic_tolerance(aol_cycles, self.p, self.q)

    def predict(self, dram: Signature) -> float:
        """Predicted demand-read slowdown from a DRAM-only signature."""
        if dram.s_llc <= 0 or dram.cycles <= 0:
            return 0.0
        return self.k * self.tolerance(dram.aol) * dram.llc_stall_fraction

    def predictor_value(self, dram: Signature) -> float:
        """The un-scaled predictor ``f(AOL) * s_LLC / c``.

        Used by the metric-correlation study (Table 1 / Fig. 1f): the
        CAMP predictor axis is this quantity plus the cache and store
        terms, before the per-device ``k`` scaling.
        """
        return self.tolerance(dram.aol) * dram.llc_stall_fraction


def measured_tolerance(dram: Signature, slow: Signature) -> float:
    """Ground-truth ``R_Lat / R_MLP - 1`` from a DRAM *and* a slow run.

    This is what calibration fits the hyperbola against - it requires
    both runs, which is acceptable for one-time microbenchmark
    calibration but exactly what CAMP avoids per-workload.
    """
    if dram.latency_cycles <= 0 or slow.latency_cycles <= 0:
        return 0.0
    r_lat = slow.latency_cycles / dram.latency_cycles
    r_mlp = max(slow.mlp, 1.0) / max(dram.mlp, 1.0)
    return max(0.0, r_lat / r_mlp - 1.0)


def measured_drd_slowdown(dram: Signature, slow: Signature) -> float:
    """Ground-truth ``S_DRd`` via the L3-miss stall delta (Melody-style)."""
    if dram.cycles <= 0:
        return 0.0
    return (slow.s_llc - dram.s_llc) / dram.cycles
