"""Store slowdown model (paper section 4.3, Eq. 7).

Stores are asynchronous until the Store Buffer fills; then RFO latency
back-pressures retirement.  CXL extends each RFO 2-3x, proportionally
extending the time the SB stays full, so store slowdown is modeled as a
*linear* function of the DRAM-measured SB-full stall cycles:

``S_Store = k_store * s_SB / c``   (Eq. 7)

with ``k_store`` calibrated from memset-style microbenchmarks per
(platform, device).
"""

from __future__ import annotations

from dataclasses import dataclass

from .signature import Signature


@dataclass(frozen=True)
class StoreModel:
    """Calibrated Eq. 7 predictor."""

    k: float

    def __post_init__(self):
        if self.k < 0:
            raise ValueError("k must be non-negative")

    def predict(self, dram: Signature) -> float:
        """Predicted store slowdown from a DRAM-only signature."""
        if dram.cycles <= 0:
            return 0.0
        return self.k * dram.sb_stall_fraction

    def predictor_value(self, dram: Signature) -> float:
        """The un-scaled predictor ``s_SB / c``."""
        return dram.sb_stall_fraction


def measured_store_slowdown(dram: Signature, slow: Signature) -> float:
    """Ground-truth ``S_Store`` via the SB-full stall delta."""
    if dram.cycles <= 0:
        return 0.0
    return (slow.s_sb - dram.s_sb) / dram.cycles
