"""Interleaving performance synthesis (paper section 5, Eq. 8-10).

Predicts per-component slowdown at *any* DRAM:CXL weighted-interleaving
ratio ``x`` from at most two profiling runs, exploiting two empirical
invariants the paper establishes:

- **MLP consistency** (5.2.1): per-core MLP varies negligibly across
  ratios, so memory-active-cycle changes are pure latency accumulation.
- **Quadratic latency-load response** (5.2.2): per-tier latency over
  its load share is well approximated by
  ``L(x') = L_idle + (L_full - L_idle) * x'^2``  (Eq. 8).

From these, each tier's cycle contribution scales with the
**load scaling factor** (Eq. 9)::

    M(x') = x' * L(x') / L_full

and the per-component slowdown at ratio ``x`` is (Eq. 10)::

    S(x) = (M(x) * s_DRAM + M(1-x) * s_CXL - s_DRAM) / c_DRAM

The profiling workflow (Fig. 12) is implemented by :func:`synthesize`:
latency-bound workloads need only the DRAM run (the slow endpoint is
predicted analytically with the section 4 models and the response is
linear); bandwidth-bound workloads need a second run on the slow tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .calibration import Calibration
from .classify import Classification, classify_signature
from .counters import ProfiledRun
from .signature import Signature, signature
from .slowdown import SlowdownPredictor

#: The component keys, in the paper's reporting order.
COMPONENTS: Tuple[str, ...] = ("drd", "cache", "store")


@dataclass(frozen=True)
class TierEndpoint:
    """One endpoint run (x=1 on DRAM, or x=0 on the slow tier).

    ``stalls`` maps each slowdown component to its measured (or
    predicted) stall cycles; ``latency_full_ns`` is the workload's
    loaded latency on this tier (``L_full`` of Eq. 8);
    ``latency_idle_ns`` is the tier's MLC idle latency.
    """

    stalls: Dict[str, float]
    latency_full_ns: float
    latency_idle_ns: float

    def __post_init__(self):
        missing = set(COMPONENTS) - set(self.stalls)
        if missing:
            raise ValueError(f"missing stall components: {sorted(missing)}")
        if self.latency_idle_ns <= 0:
            raise ValueError("idle latency must be positive")

    @property
    def effective_full_ns(self) -> float:
        """``L_full`` floored at idle: measured latency can dip below
        the probe value through LLC-hit dilution, which would flip the
        quadratic's sign; the floor restores the no-contention case."""
        return max(self.latency_full_ns, self.latency_idle_ns)


def load_scaling_factor(load_share: float, latency_idle_ns: float,
                        latency_full_ns: float) -> float:
    """Eq. 9: a tier's relative cycle contribution at ``load_share``.

    ``M(x') = x' * [L_idle + (L_full - L_idle) * x'^2] / L_full``.
    With no contention (``L_full ~= L_idle``) this degrades to the
    linear ``M(x') = x'``; under contention the cubic term produces the
    super-linear relief that explains the bathtub curves.
    """
    if not 0.0 <= load_share <= 1.0:
        raise ValueError("load share must be within [0, 1]")
    full = max(latency_full_ns, latency_idle_ns)
    if full <= 0:
        return load_share
    latency_ns = latency_idle_ns + (full - latency_idle_ns) * load_share ** 2
    return load_share * latency_ns / full


@dataclass(frozen=True)
class InterleavingPrediction:
    """Predicted slowdown at one interleaving ratio."""

    dram_fraction: float
    components: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())


class InterleavingModel:
    """The Eq. 10 synthesis model for one workload on one device pair.

    Parameters
    ----------
    dram, slow:
        The two tier endpoints.  For latency-bound workloads the slow
        endpoint's stalls are *predicted* (1-run path); for
        bandwidth-bound workloads they are measured (2-run path).
    cycles_dram:
        The DRAM-baseline execution cycles ``c`` normalizing Eq. 10.
    label:
        Workload name for reporting.
    """

    def __init__(self, dram: TierEndpoint, slow: TierEndpoint,
                 cycles_dram: float, label: str = "",
                 classification: Optional[Classification] = None):
        if cycles_dram <= 0:
            raise ValueError("cycles_dram must be positive")
        self.dram = dram
        self.slow = slow
        self.cycles_dram = cycles_dram
        self.label = label
        self.classification = classification

    def component_slowdown(self, component: str,
                           dram_fraction: float) -> float:
        """Eq. 10 for one component at ratio ``x``."""
        if component not in COMPONENTS:
            raise KeyError(f"unknown component {component!r}")
        x = dram_fraction
        m_dram = load_scaling_factor(x, self.dram.latency_idle_ns,
                                     self.dram.effective_full_ns)
        m_slow = load_scaling_factor(1.0 - x, self.slow.latency_idle_ns,
                                     self.slow.effective_full_ns)
        s_dram = self.dram.stalls[component]
        s_slow = self.slow.stalls[component]
        return (m_dram * s_dram + m_slow * s_slow -
                s_dram) / self.cycles_dram

    def predict(self, dram_fraction: float) -> InterleavingPrediction:
        """Predicted per-component slowdown at ratio ``x``."""
        if not 0.0 <= dram_fraction <= 1.0:
            raise ValueError("dram_fraction must be within [0, 1]")
        components = {
            component: self.component_slowdown(component, dram_fraction)
            for component in COMPONENTS
        }
        return InterleavingPrediction(dram_fraction=dram_fraction,
                                      components=components)

    def curve(self, ratios: Optional[Sequence[float]] = None
              ) -> List[InterleavingPrediction]:
        """The synthesized performance curve over a ratio grid.

        Defaults to the paper's 101-point sweep (100:0 .. 0:100).
        """
        if ratios is None:
            ratios = np.linspace(1.0, 0.0, 101)
        return [self.predict(float(x)) for x in ratios]

    def optimal_ratio(self, ratios: Optional[Sequence[float]] = None
                      ) -> Tuple[float, float]:
        """The ratio minimizing predicted slowdown, with its slowdown.

        This is the analytical optimum Best-shot jumps to.  For
        latency-bound workloads it is always ``x = 1`` (DRAM-only);
        bandwidth-bound workloads typically optimize below 80% fast
        tier (paper Fig. 14b).
        """
        best = min(self.curve(ratios), key=lambda pred: pred.total)
        return best.dram_fraction, best.total

    @property
    def beneficial(self) -> bool:
        """Does any interleaving ratio beat DRAM-only execution?"""
        _, slowdown = self.optimal_ratio()
        return slowdown < 0.0


def _endpoint_from_signature(sig: Signature, latency_idle_ns: float
                             ) -> TierEndpoint:
    return TierEndpoint(
        stalls={"drd": sig.s_llc, "cache": sig.s_cache, "store": sig.s_sb},
        latency_full_ns=sig.latency_ns,
        latency_idle_ns=latency_idle_ns,
    )


def model_from_two_runs(dram_profile: ProfiledRun,
                        slow_profile: ProfiledRun,
                        calibration: Calibration) -> InterleavingModel:
    """The 2-run (bandwidth-bound) path: both endpoints measured."""
    dram_sig = signature(dram_profile)
    slow_sig = signature(slow_profile)
    return InterleavingModel(
        dram=_endpoint_from_signature(
            dram_sig, calibration.idle_latency_dram_ns),
        slow=_endpoint_from_signature(
            slow_sig, calibration.idle_latency_slow_ns),
        cycles_dram=dram_sig.cycles,
        label=dram_profile.label,
    )


def model_from_dram_only(dram_profile: ProfiledRun,
                         calibration: Calibration) -> InterleavingModel:
    """The 1-run (latency-bound) path: slow endpoint predicted.

    The section 4 models forecast the per-component slowdown on the
    slow tier; endpoint stalls follow from
    ``s_slow = s_dram + S_component * c``.  Latency is taken at idle on
    both tiers (no contention), collapsing Eq. 9 to the linear case.
    """
    dram_sig = signature(dram_profile)
    prediction = SlowdownPredictor(calibration).predict(dram_profile)
    cycles = dram_sig.cycles
    slow_stalls = {
        "drd": dram_sig.s_llc + prediction.drd * cycles,
        "cache": dram_sig.s_cache + prediction.cache * cycles,
        "store": dram_sig.s_sb + prediction.store * cycles,
    }
    dram_endpoint = TierEndpoint(
        stalls={"drd": dram_sig.s_llc, "cache": dram_sig.s_cache,
                "store": dram_sig.s_sb},
        latency_full_ns=calibration.idle_latency_dram_ns,
        latency_idle_ns=calibration.idle_latency_dram_ns,
    )
    slow_endpoint = TierEndpoint(
        stalls=slow_stalls,
        latency_full_ns=calibration.idle_latency_slow_ns,
        latency_idle_ns=calibration.idle_latency_slow_ns,
    )
    return InterleavingModel(dram=dram_endpoint, slow=slow_endpoint,
                             cycles_dram=cycles,
                             label=dram_profile.label)


def synthesize(dram_profile: ProfiledRun, calibration: Calibration,
               slow_profile: Optional[ProfiledRun] = None,
               tolerance: float = 0.05) -> InterleavingModel:
    """The full Fig. 12 workflow: classify, then build the right model.

    Latency-bound workloads are synthesized from the DRAM run alone
    (``slow_profile`` is ignored if given).  Bandwidth-bound workloads
    require ``slow_profile``; a missing one raises - silently falling
    back to the 1-run path would hide the contention the model exists
    to capture.
    """
    dram_sig = signature(dram_profile)
    classification = classify_signature(
        dram_sig, calibration.idle_latency_dram_ns, tolerance)
    if classification.is_bandwidth_bound:
        if slow_profile is None:
            raise ValueError(
                f"{dram_profile.label or 'workload'} is bandwidth-bound "
                f"(latency {classification.measured_latency_ns:.0f} ns vs "
                f"idle {classification.idle_latency_ns:.0f} ns); the "
                f"interleaving model needs a slow-tier profiling run")
        model = model_from_two_runs(dram_profile, slow_profile,
                                    calibration)
    else:
        model = model_from_dram_only(dram_profile, calibration)
    model.classification = classification
    return model
