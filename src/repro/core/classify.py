"""Latency-bound vs bandwidth-bound classification (paper Fig. 12).

CAMP's profiling workflow branches on one question: did the DRAM run
show memory contention?

- **Latency-bound** (measured DRAM latency within ``tau`` of the
  MLC-measured idle latency): one DRAM run suffices.  Per-tier latency
  is constant across interleaving ratios, the interleaving response is
  linear, and the CXL endpoint is predicted analytically (section 4).
- **Bandwidth-bound** (elevated latency): contention exists, latency
  varies non-linearly with load, and a second profiling run on the slow
  tier is required to anchor the interleaving model (section 5).

The measured latency comes from the offcore counters (P11/P12).  Note a
real-hardware subtlety reproduced here: that latency is diluted by
LLC-hit reads and uncore buffering, so it can sit *below* the idle probe
for cache-friendly workloads - which is fine, since the rule only
triggers on elevation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .counters import ProfiledRun
from .signature import Signature, signature

#: The paper's default platform tolerance ("e.g. 5%").
DEFAULT_TOLERANCE = 0.05


class WorkloadClass(enum.Enum):
    LATENCY_BOUND = "latency-bound"
    BANDWIDTH_BOUND = "bandwidth-bound"


@dataclass(frozen=True)
class Classification:
    """The decision plus the evidence it was based on."""

    workload_class: WorkloadClass
    measured_latency_ns: float
    idle_latency_ns: float
    tolerance: float

    @property
    def is_bandwidth_bound(self) -> bool:
        return self.workload_class is WorkloadClass.BANDWIDTH_BOUND

    @property
    def required_profiling_runs(self) -> int:
        """1 for latency-bound, 2 for bandwidth-bound (Fig. 12)."""
        return 2 if self.is_bandwidth_bound else 1

    @property
    def elevation(self) -> float:
        """Relative latency elevation over idle (can be negative)."""
        if self.idle_latency_ns <= 0:
            return 0.0
        return (self.measured_latency_ns / self.idle_latency_ns) - 1.0


def classify_signature(dram: Signature, idle_latency_dram_ns: float,
                       tolerance: float = DEFAULT_TOLERANCE
                       ) -> Classification:
    """Classify from a DRAM signature and the MLC idle latency."""
    if idle_latency_dram_ns <= 0:
        raise ValueError("idle latency must be positive")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    measured = dram.latency_ns
    bandwidth_bound = measured > idle_latency_dram_ns * (1.0 + tolerance)
    workload_class = (WorkloadClass.BANDWIDTH_BOUND if bandwidth_bound
                      else WorkloadClass.LATENCY_BOUND)
    return Classification(
        workload_class=workload_class,
        measured_latency_ns=measured,
        idle_latency_ns=idle_latency_dram_ns,
        tolerance=tolerance,
    )


def classify(profile: ProfiledRun, idle_latency_dram_ns: float,
             tolerance: float = DEFAULT_TOLERANCE) -> Classification:
    """Classify a DRAM profiling run (the Fig. 12 branch point)."""
    if profile.tier != "dram":
        raise ValueError("classification expects the DRAM profiling run")
    return classify_signature(signature(profile), idle_latency_dram_ns,
                              tolerance)
