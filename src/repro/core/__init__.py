"""CAMP's core: counter vocabulary, prediction models, calibration.

The paper's primary contribution, as a library:

- :mod:`~repro.core.counters` - the Table 5 PMU vocabulary and the
  :class:`~repro.core.counters.ProfiledRun` record models consume;
- :mod:`~repro.core.signature` - derived per-run quantities with the
  platform-specific counter mappings;
- :mod:`~repro.core.drd` / :mod:`~repro.core.cache` /
  :mod:`~repro.core.store` - the three component models (Eq. 5-7);
- :mod:`~repro.core.calibration` - one-time microbenchmark fitting;
- :mod:`~repro.core.slowdown` - the combined DRAM-only predictor;
- :mod:`~repro.core.classify` - the Fig. 12 workflow branch;
- :mod:`~repro.core.interleaving` - the Eq. 8-10 synthesis model;
- :mod:`~repro.core.metrics` - the Table 1 baseline proxies.
"""

from .cache import CacheModel, measured_cache_slowdown
from .calibration import (Calibration, CalibrationSample, calibrate,
                          fit_from_samples, fit_hyperbola, roles_for_tags)
from .classify import (Classification, WorkloadClass, classify,
                       classify_signature)
from .contention import (ContentionAwarePredictor, ContentionForecast)
from .counters import (COUNTER_TABLE, Counter, CounterSample, CounterSpec,
                       ProfiledRun, counter_spec, counters_for_platform)
from .drd import (DrdModel, hyperbolic_tolerance, measured_drd_slowdown,
                  measured_tolerance)
from .interleaving import (COMPONENTS, InterleavingModel,
                           InterleavingPrediction, TierEndpoint,
                           load_scaling_factor, model_from_dram_only,
                           model_from_two_runs, synthesize)
from .online import OnlinePredictor, WindowUpdate
from .metrics import BASELINE_METRICS, MetricSpec, compute_all
from .signature import Signature, signature, signature_from_sample
from .slowdown import SlowdownPrediction, SlowdownPredictor
from .store import StoreModel, measured_store_slowdown

__all__ = [
    "CacheModel", "measured_cache_slowdown", "Calibration",
    "CalibrationSample", "calibrate", "fit_from_samples",
    "fit_hyperbola", "roles_for_tags", "Classification", "WorkloadClass",
    "classify", "classify_signature", "COUNTER_TABLE", "Counter",
    "ContentionAwarePredictor", "ContentionForecast",
    "CounterSample", "CounterSpec", "ProfiledRun", "counter_spec",
    "counters_for_platform", "DrdModel", "hyperbolic_tolerance",
    "measured_drd_slowdown", "measured_tolerance", "COMPONENTS",
    "InterleavingModel", "InterleavingPrediction", "TierEndpoint",
    "load_scaling_factor", "model_from_dram_only", "model_from_two_runs",
    "synthesize", "BASELINE_METRICS", "MetricSpec", "compute_all",
    "OnlinePredictor", "WindowUpdate",
    "Signature", "signature", "signature_from_sample",
    "SlowdownPrediction", "SlowdownPredictor", "StoreModel",
    "measured_store_slowdown",
]
