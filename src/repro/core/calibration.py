"""One-time platform calibration (paper section 4.4.1).

CAMP's constants - the hyperbola parameters ``(p, q)`` and the three
per-component scaling factors ``k`` - characterize the *hardware*, not
any workload.  They are learned once per (platform, slow-device) pair by
running the microbenchmark suite (:func:`repro.workloads.microbench.
calibration_suite`) on both DRAM and the slow tier, then fitting:

- ``(p, q)``: :func:`scipy.optimize.curve_fit` of the hyperbola
  ``f(AOL) = 1/(p + q/AOL)`` against each microbenchmark's measured
  latency-tolerance factor ``R_Lat/R_MLP - 1`` (Fig. 4f);
- ``k_drd``: least squares of measured ``S_DRd`` against
  ``f(AOL) * s_LLC/c``;
- ``k_cache``: least squares of measured ``S_Cache`` against
  ``R_LFB-hit * R_Mem * s_Cache/c``;
- ``k_store``: least squares of measured ``S_Store`` against
  ``s_SB/c``.

All "measured" values come from counter deltas between the two runs -
microbenchmark calibration is the one place CAMP is allowed to observe
slow-tier execution.

The fitting functions are pure (they take signature pairs), so they work
with counters from any source; :func:`calibrate` is the convenience
driver that profiles the suite on a :class:`~repro.uarch.machine.
Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cache import CacheModel, measured_cache_slowdown
from .drd import DrdModel, hyperbolic_tolerance, measured_drd_slowdown, \
    measured_tolerance
from .signature import Signature
from .store import StoreModel, measured_store_slowdown

#: Initial guess for the hyperbola fit: p ~= 1 (tolerance saturating at
#: the raw latency ratio), q sized for cycle-scale AOL values.
_HYPERBOLA_P0 = (1.5, 60.0)


@dataclass(frozen=True)
class Calibration:
    """The platform+device constants of CAMP's final model."""

    platform_family: str
    device: str
    drd: DrdModel
    cache: CacheModel
    store: StoreModel
    #: MLC-style idle latencies used by classification / interleaving.
    idle_latency_dram_ns: float
    idle_latency_slow_ns: float
    #: Number of microbenchmarks used for the fit (diagnostics).
    sample_count: int = 0

    def describe(self) -> Dict[str, float]:
        return {
            "p": self.drd.p,
            "q": self.drd.q,
            "k_drd": self.drd.k,
            "k_cache": self.cache.k,
            "k_store": self.store.k,
            "idle_dram_ns": self.idle_latency_dram_ns,
            "idle_slow_ns": self.idle_latency_slow_ns,
        }

    # -- persistence ---------------------------------------------------------
    # Calibration is a once-per-platform artifact; deployments save it
    # next to the machine's config and load it at job-submission time.

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable representation."""
        return {
            "platform_family": self.platform_family,
            "device": self.device,
            "sample_count": self.sample_count,
            "idle_latency_dram_ns": self.idle_latency_dram_ns,
            "idle_latency_slow_ns": self.idle_latency_slow_ns,
            "constants": self.describe(),
        }

    def to_json(self, indent: int = 2) -> str:
        import json
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Calibration":
        constants = data["constants"]
        return cls(
            platform_family=str(data["platform_family"]),
            device=str(data["device"]),
            drd=DrdModel(p=float(constants["p"]),
                         q=float(constants["q"]),
                         k=float(constants["k_drd"])),
            cache=CacheModel(k=float(constants["k_cache"])),
            store=StoreModel(k=float(constants["k_store"])),
            idle_latency_dram_ns=float(data["idle_latency_dram_ns"]),
            idle_latency_slow_ns=float(data["idle_latency_slow_ns"]),
            sample_count=int(data.get("sample_count", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "Calibration":
        import json
        return cls.from_dict(json.loads(text))


def fit_hyperbola(aol_values: Sequence[float],
                  tolerance_values: Sequence[float],
                  p0: Tuple[float, float] = _HYPERBOLA_P0
                  ) -> Tuple[float, float]:
    """Fit ``f(AOL) = 1/(p + q/AOL)`` to measured tolerance factors.

    Returns ``(p, q)``.  Points with non-positive tolerance (no latency
    growth at all) are kept - they anchor the low end of the curve -
    but clipped away from zero to keep the reciprocal finite.
    """
    # Imported lazily: scipy.optimize costs ~0.4 s to import, and the
    # cache-hit paths (warm CLI runs, persisted calibrations) never fit.
    from scipy.optimize import curve_fit

    aol = np.asarray(aol_values, dtype=float)
    tol = np.asarray(tolerance_values, dtype=float)
    if aol.shape != tol.shape or aol.size < 2:
        raise ValueError("need >= 2 matching (AOL, tolerance) points")
    mask = aol > 0
    if mask.sum() < 2:
        raise ValueError("need >= 2 points with positive AOL")
    aol, tol = aol[mask], np.maximum(tol[mask], 1e-3)

    def model(x, p, q):
        return 1.0 / np.maximum(p + q / x, 1e-9)

    params, _ = curve_fit(model, aol, tol, p0=p0, maxfev=20000)
    return float(params[0]), float(params[1])


def _scale_factor(predictor: np.ndarray, measured: np.ndarray) -> float:
    """Non-negative least-squares slope through the origin."""
    denominator = float(np.dot(predictor, predictor))
    if denominator <= 0:
        return 0.0
    return max(0.0, float(np.dot(predictor, measured)) / denominator)


@dataclass(frozen=True)
class CalibrationSample:
    """One microbenchmark's DRAM and slow-tier signatures, with roles.

    ``roles`` says which fits the sample feeds: "drd" (latency
    sensitivity - pointer-chase sweeps), "cache" (prefetch timeliness -
    strided / sequential runs), "store" (SB backpressure - memset
    variants).  Role separation matters: a bandwidth-saturating
    sequential read would poison the hyperbolic latency-tolerance fit,
    because saturation inflates its latency ratio through contention the
    DRd model deliberately does not cover (paper 4.4.6).
    """

    dram: Signature
    slow: Signature
    roles: Tuple[str, ...]


#: Workload-tag -> calibration-role mapping used by :func:`calibrate`.
_TAG_ROLES = {
    "pointer-chase": "drd",
    "strided": "cache",
    "streaming": "cache",
    "store-heavy": "store",
}


def roles_for_tags(tags: Sequence[str]) -> Tuple[str, ...]:
    """Map microbenchmark tags onto calibration roles."""
    return tuple(sorted({_TAG_ROLES[tag] for tag in tags
                         if tag in _TAG_ROLES}))


def fit_from_samples(samples: Sequence[CalibrationSample],
                     platform_family: str, device: str,
                     idle_latency_dram_ns: float,
                     idle_latency_slow_ns: float) -> Calibration:
    """Build a :class:`Calibration` from role-tagged signature pairs."""
    drd_pairs = [(s.dram, s.slow) for s in samples if "drd" in s.roles]
    cache_pairs = [(s.dram, s.slow) for s in samples
                   if "cache" in s.roles]
    store_pairs = [(s.dram, s.slow) for s in samples
                   if "store" in s.roles]
    if len(drd_pairs) < 3:
        raise ValueError("need >= 3 'drd' samples for the hyperbola fit")
    if not cache_pairs:
        raise ValueError("need >= 1 'cache' sample")
    if not store_pairs:
        raise ValueError("need >= 1 'store' sample")

    aol = np.array([dram.aol for dram, _ in drd_pairs])
    tolerance = np.array(
        [measured_tolerance(dram, slow) for dram, slow in drd_pairs])
    p, q = fit_hyperbola(aol, tolerance)

    f_aol = np.array([hyperbolic_tolerance(a, p, q) for a in aol])
    drd_pred = f_aol * np.array(
        [dram.llc_stall_fraction for dram, _ in drd_pairs])
    drd_meas = np.array(
        [measured_drd_slowdown(dram, slow) for dram, slow in drd_pairs])
    k_drd = _scale_factor(drd_pred, drd_meas)

    cache_pred = np.array([
        dram.lfb_hit_ratio * dram.mem_prefetch_reliance *
        dram.cache_stall_fraction for dram, _ in cache_pairs])
    cache_meas = np.array(
        [measured_cache_slowdown(dram, slow)
         for dram, slow in cache_pairs])
    k_cache = _scale_factor(cache_pred, cache_meas)

    store_pred = np.array(
        [dram.sb_stall_fraction for dram, _ in store_pairs])
    store_meas = np.array(
        [measured_store_slowdown(dram, slow)
         for dram, slow in store_pairs])
    k_store = _scale_factor(store_pred, store_meas)

    return Calibration(
        platform_family=platform_family.lower(),
        device=device,
        drd=DrdModel(p=p, q=q, k=k_drd),
        cache=CacheModel(k=k_cache),
        store=StoreModel(k=k_store),
        idle_latency_dram_ns=idle_latency_dram_ns,
        idle_latency_slow_ns=idle_latency_slow_ns,
        sample_count=len(samples),
    )


def calibrate(machine, device: str,
              benchmarks: Optional[Sequence] = None,
              store=None, executor=None) -> Calibration:
    """Run the microbenchmark suite on ``machine`` and fit the constants.

    ``machine`` is a :class:`~repro.uarch.machine.Machine`; ``device``
    names the slow tier to calibrate against ("numa", "cxl-a", ...).
    This is the reproduction of the paper's one-time calibration phase.

    ``store`` (a :class:`~repro.runtime.store.ResultStore`) makes the
    fit persistent: the finished calibration is content-addressed by
    platform, device, microbenchmark suite, and code version, so a
    second call is a cache lookup.  ``executor`` (a
    :class:`~repro.runtime.executor.Executor`) fans the 2x-per-bench
    profiling runs out in parallel; both default to the serial,
    uncached behaviour.
    """
    # Imported here: repro.uarch depends on repro.core.counters, so the
    # top-level import would be circular (same for repro.runtime, which
    # serializes this module's Calibration).
    from ..runtime.executor import Executor
    from ..runtime.spec import CalibrationSpec, RunSpec
    from ..uarch.interleave import Placement
    from ..workloads.microbench import calibration_suite
    from .signature import signature

    benches = list(benchmarks) if benchmarks is not None \
        else calibration_suite()
    if executor is None:
        executor = Executor(jobs=1, store=store)
    telemetry = executor.telemetry

    with telemetry.stage("calibrate", device=device,
                         platform=machine.platform.name,
                         benchmarks=len(benches)):
        key = None
        if store is not None:
            key = CalibrationSpec.from_machine(machine, device,
                                               benches).fingerprint()
            payload = store.get(key)
            if payload is not None:
                return Calibration.from_dict(payload)

        specs = []
        for bench in benches:
            specs.append(RunSpec.from_machine(machine, bench,
                                              Placement.dram_only()))
            specs.append(RunSpec.from_machine(
                machine, bench, Placement.slow_only(device)))
        profiles = executor.profile(specs, label="calibrate")

        samples: List[CalibrationSample] = []
        for index, bench in enumerate(benches):
            dram_sig = signature(profiles[2 * index])
            slow_sig = signature(profiles[2 * index + 1])
            samples.append(CalibrationSample(
                dram=dram_sig, slow=slow_sig,
                roles=roles_for_tags(bench.tags)))

        with telemetry.stage("calibrate.fit", samples=len(samples)):
            calibration = fit_from_samples(
                samples,
                platform_family=machine.platform.family,
                device=device,
                idle_latency_dram_ns=machine.idle_latency_ns("dram"),
                idle_latency_slow_ns=machine.idle_latency_ns(device),
            )
        if store is not None and key is not None:
            store.put(key, calibration.to_dict())
        return calibration
