"""The combined CXL slowdown predictor: ``S = S_DRd + S_Cache + S_Store``.

This is CAMP's headline capability (paper section 4): given *only* a
DRAM profiling run, forecast the workload's slowdown on a slow tier the
workload has never executed on.  The per-component models are composed
with the one-time :class:`~repro.core.calibration.Calibration` for the
target (platform, device) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .calibration import Calibration
from .counters import CounterSample, ProfiledRun
from .signature import Signature, signature, signature_from_sample


@dataclass(frozen=True)
class SlowdownPrediction:
    """A per-component slowdown forecast for one workload on one tier.

    ``degraded``/``confidence`` carry the input-quality verdict from
    the underlying :class:`~repro.core.signature.Signature`: a
    prediction built from a sample with missing counters is still
    emitted (with the documented fallbacks applied) but flagged, so a
    consumer can widen error bars or trigger re-profiling instead of
    crashing (``docs/FAULTS.md``).
    """

    label: str
    device: str
    drd: float
    cache: float
    store: float
    #: True when the source signature was missing expected counters.
    degraded: bool = False
    #: Fraction of expected counters that were present, in [0, 1].
    confidence: float = 1.0

    @property
    def total(self) -> float:
        """Predicted overall slowdown (Eq. 1)."""
        return self.drd + self.cache + self.store

    def as_dict(self) -> Dict[str, float]:
        return {"drd": self.drd, "cache": self.cache,
                "store": self.store, "total": self.total}


class SlowdownPredictor:
    """Predicts CXL/NUMA slowdown from DRAM-only counter samples.

    Parameters
    ----------
    calibration:
        The platform+device constants from one-time calibration.
    """

    def __init__(self, calibration: Calibration):
        self.calibration = calibration

    @property
    def device(self) -> str:
        return self.calibration.device

    def predict_signature(self, dram: Signature) -> SlowdownPrediction:
        """Predict from an already-extracted DRAM signature.

        A degraded signature (missing counters) still yields a
        prediction - the component models see the fallback quantities -
        but the result is flagged ``degraded`` with the signature's
        ``confidence``.
        """
        cal = self.calibration
        return SlowdownPrediction(
            label=dram.label,
            device=cal.device,
            drd=cal.drd.predict(dram),
            cache=cal.cache.predict(dram),
            store=cal.store.predict(dram),
            degraded=dram.degraded,
            confidence=dram.confidence,
        )

    def predict(self, profile: ProfiledRun) -> SlowdownPrediction:
        """Predict from a DRAM profiling run.

        Raises :class:`ValueError` when handed a slow-tier profile -
        the whole point is predicting *without* slow-tier execution,
        and silently accepting one would corrupt evaluations.
        """
        if profile.tier != "dram":
            raise ValueError(
                f"slowdown prediction expects a DRAM profile, got "
                f"tier={profile.tier!r}")
        if profile.platform_family != self.calibration.platform_family:
            raise ValueError(
                f"profile from {profile.platform_family!r} cannot use a "
                f"{self.calibration.platform_family!r} calibration")
        return self.predict_signature(signature(profile))

    def predict_windows(self, profile: ProfiledRun
                        ) -> List[SlowdownPrediction]:
        """Per-window predictions for time-series tracking (Fig. 8).

        Each window of the profile is treated as an independent sample
        (exactly how a per-second perf sampling loop would feed CAMP).
        """
        predictions: List[SlowdownPrediction] = []
        for index, window in enumerate(profile.windows):
            window_sig = signature_from_sample(
                window, profile.platform_family, profile.frequency_ghz,
                tier=profile.tier, label=f"{profile.label}@{index}")
            predictions.append(self.predict_signature(window_sig))
        return predictions

    def predictor_metric(self, dram: Signature) -> float:
        """The scalar "CAMP predictor" used in Table 1 / Fig. 1f.

        The calibrated total prediction itself - this is the quantity
        whose correlation with actual slowdown the paper reports as
        0.97.
        """
        return self.predict_signature(dram).total
