"""Online windowed prediction with phase detection (extends Fig. 8).

The paper demonstrates that CAMP's models hold per sampling window, not
just in aggregate (section 4.4.5).  This module turns that into a
runtime component: an :class:`OnlinePredictor` consumes counter windows
as a perf sampling loop emits them, maintains an exponentially-weighted
signature, forecasts slow-tier slowdown continuously, and flags *phase
changes* - the moments a tiering runtime would want to reconsider
placement.

Phase detection is deliberately simple and counter-native: a window
whose predicted slowdown departs from the running estimate by more than
``phase_threshold`` (absolute) starts a new phase.  The EWMA restarts
on a phase boundary so the estimate re-converges quickly.

Degraded windows (samples that lost counters to perf multiplexing or a
fault injector, see ``docs/FAULTS.md``) still produce a prediction for
every window - flagged via :attr:`WindowUpdate.degraded` - but they
never open a new phase and their EWMA weight is scaled by the sample's
confidence, so transient counter loss cannot masquerade as a workload
phase change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .calibration import Calibration
from .counters import CounterSample, ProfiledRun
from .signature import signature_from_sample
from .slowdown import SlowdownPrediction, SlowdownPredictor


@dataclass(frozen=True)
class WindowUpdate:
    """The predictor's state after consuming one window."""

    window: int
    #: Prediction from this window alone.
    instant: SlowdownPrediction
    #: Smoothed estimate (EWMA over the current phase).
    smoothed_total: float
    #: True when this window started a new phase.
    phase_change: bool
    #: Index of the current phase (0-based).
    phase: int

    @property
    def degraded(self) -> bool:
        """True when this window's sample was missing counters."""
        return self.instant.degraded

    @property
    def confidence(self) -> float:
        return self.instant.confidence


class OnlinePredictor:
    """Streaming slowdown forecasts from per-window counter samples.

    Parameters
    ----------
    calibration:
        Platform+device constants.
    platform_family, frequency_ghz:
        Context a perf wrapper knows about the machine being sampled.
    alpha:
        EWMA weight of the newest window (0 < alpha <= 1).
    phase_threshold:
        Absolute slowdown jump that opens a new phase.
    """

    def __init__(self, calibration: Calibration, platform_family: str,
                 frequency_ghz: float, alpha: float = 0.4,
                 phase_threshold: float = 0.10):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if phase_threshold <= 0:
            raise ValueError("phase threshold must be positive")
        self._predictor = SlowdownPredictor(calibration)
        self.platform_family = platform_family
        self.frequency_ghz = frequency_ghz
        self.alpha = alpha
        self.phase_threshold = phase_threshold
        self._window = 0
        self._phase = 0
        self._smoothed: Optional[float] = None
        self.history: List[WindowUpdate] = []

    def observe(self, sample: CounterSample) -> WindowUpdate:
        """Consume one counter window and return the updated state."""
        sig = signature_from_sample(
            sample, self.platform_family, self.frequency_ghz,
            label=f"window-{self._window}")
        instant = self._predictor.predict_signature(sig)

        phase_change = False
        if self._smoothed is None:
            self._smoothed = instant.total
        elif instant.degraded:
            # A window with missing counters still produces a (flagged)
            # prediction, but its apparent slowdown jump may be an
            # artifact of the fallback quantities: never open a new
            # phase from it, and let its EWMA weight shrink with the
            # sample's confidence so one multiplexing gap cannot yank
            # the estimate.
            self._smoothed += self.alpha * instant.confidence * (
                instant.total - self._smoothed)
        elif abs(instant.total - self._smoothed) > self.phase_threshold:
            phase_change = True
            self._phase += 1
            self._smoothed = instant.total  # restart on the new phase
        else:
            self._smoothed += self.alpha * (instant.total -
                                            self._smoothed)

        update = WindowUpdate(
            window=self._window,
            instant=instant,
            smoothed_total=self._smoothed,
            phase_change=phase_change,
            phase=self._phase,
        )
        self.history.append(update)
        self._window += 1
        return update

    def observe_profile(self, profile: ProfiledRun
                        ) -> List[WindowUpdate]:
        """Feed every window of a windowed profile through the stream."""
        return [self.observe(window) for window in profile.windows]

    @property
    def current_estimate(self) -> Optional[float]:
        """The smoothed slowdown estimate, or None before any window."""
        return self._smoothed

    @property
    def phase_count(self) -> int:
        """Number of phases seen so far (>= 1 once windows arrive)."""
        return self._phase + (1 if self.history else 0)

    @property
    def degraded_fraction(self) -> float:
        """Share of observed windows whose sample missed counters."""
        if not self.history:
            return 0.0
        degraded = sum(1 for update in self.history if update.degraded)
        return degraded / len(self.history)

    def phase_boundaries(self) -> Tuple[int, ...]:
        """Window indices that started a new phase."""
        return tuple(update.window for update in self.history
                     if update.phase_change)
