"""Workload signatures: the model-facing view of a counter sample.

A :class:`Signature` packages the derived quantities every CAMP model
consumes - latency, MLP, AOL, per-component stall fractions, and the two
cache-pressure ratios - with the platform-specific counter mappings of
section 4.4.3 applied:

- cache-level stalls come from ``P1 - P2`` on SKX and ``P2 - P3`` on
  SPR/EMR (the level where each microarchitecture exposes prefetch
  inefficiency);
- the memory-prefetch reliance ``R_Mem`` is ``(P7 - P8) / P7`` on SKX
  and ``(P14/P15) * (P16/(P16+P17))`` on SPR/EMR (uncore proxies,
  because those cores lack the L1-prefetch data-source events).

Signatures are pure functions of a :class:`~repro.core.counters.
ProfiledRun`; they never look at simulator ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import Counter, CounterSample, ProfiledRun


def _safe_ratio(numerator: float, denominator: float,
                default: float = 0.0) -> float:
    if denominator <= 0:
        return default
    return numerator / denominator


@dataclass(frozen=True)
class Signature:
    """Derived per-run quantities used by the prediction models."""

    #: Workload label (for reporting) and run context.
    label: str
    platform_family: str
    tier: str
    frequency_ghz: float

    #: Total cycles ``c`` and instructions.
    cycles: float
    instructions: float

    #: Little's-law triple over offcore demand reads.
    latency_cycles: float
    mlp: float
    memory_active_cycles: float
    demand_reads: float

    #: Component stall cycles: s_LLC (P3), cache-level, SB-full (P6).
    s_llc: float
    s_cache: float
    s_sb: float

    #: Cache-pressure ratios of section 4.2.2.
    lfb_hit_ratio: float
    mem_prefetch_reliance: float

    @property
    def latency_ns(self) -> float:
        return self.latency_cycles / self.frequency_ghz

    @property
    def aol(self) -> float:
        """SoarAlto's AOL: latency amortized over MLP (cycles)."""
        return _safe_ratio(self.latency_cycles, self.mlp)

    @property
    def ipc(self) -> float:
        return _safe_ratio(self.instructions, self.cycles)

    @property
    def llc_stall_fraction(self) -> float:
        """``s_LLC / c``: the demand-read stall intensity."""
        return _safe_ratio(self.s_llc, self.cycles)

    @property
    def cache_stall_fraction(self) -> float:
        return _safe_ratio(self.s_cache, self.cycles)

    @property
    def sb_stall_fraction(self) -> float:
        return _safe_ratio(self.s_sb, self.cycles)

    @property
    def memory_active_fraction(self) -> float:
        """``C / c``: share of cycles with a pending offcore read."""
        return _safe_ratio(self.memory_active_cycles, self.cycles)


def cache_level_stalls(sample: CounterSample, platform_family: str) -> float:
    """Cache-level stall cycles with the per-family counter mapping."""
    family = platform_family.lower()
    if family == "skx":
        return max(0.0, sample[Counter.STALLS_L1D_MISS] -
                   sample[Counter.STALLS_L2_MISS])
    return max(0.0, sample[Counter.STALLS_L2_MISS] -
               sample[Counter.STALLS_L3_MISS])


def mem_prefetch_reliance(sample: CounterSample,
                          platform_family: str) -> float:
    """R_Mem: the fraction of prefetch activity sourced from memory.

    SKX has direct L1-prefetch offcore response events; SPR/EMR use the
    uncore lookup/TOR proxy (section 4.4.3).  Clamped to [0, 1].
    """
    family = platform_family.lower()
    if family == "skx":
        any_response = sample[Counter.PF_L1D_ANY_RESPONSE]
        l3_hits = sample[Counter.PF_L1D_L3_HIT]
        value = _safe_ratio(any_response - l3_hits, any_response)
    else:
        pf_share = _safe_ratio(sample[Counter.LLC_LOOKUP_PF_RD],
                               sample[Counter.LLC_LOOKUP_ALL])
        pref_miss = sample[Counter.TOR_INS_IA_PREF]
        pref_hit = sample[Counter.TOR_INS_IA_HIT_PREF]
        miss_ratio = _safe_ratio(pref_miss, pref_miss + pref_hit)
        value = pf_share * miss_ratio
    return min(1.0, max(0.0, value))


def lfb_hit_ratio(sample: CounterSample) -> float:
    """R_LFB-hit = P5 / (P4 + P5), clamped to [0, 1]."""
    hits = sample[Counter.LFB_HIT]
    misses = sample[Counter.L1_MISS]
    return min(1.0, max(0.0, _safe_ratio(hits, hits + misses)))


def signature_from_sample(sample: CounterSample, platform_family: str,
                          frequency_ghz: float, tier: str = "dram",
                          label: str = "") -> Signature:
    """Build a :class:`Signature` from a raw counter sample."""
    return Signature(
        label=label,
        platform_family=platform_family.lower(),
        tier=tier,
        frequency_ghz=frequency_ghz,
        cycles=sample.cycles,
        instructions=sample.instructions,
        latency_cycles=sample.latency_cycles,
        mlp=sample.mlp,
        memory_active_cycles=sample.memory_active_cycles,
        demand_reads=sample.demand_reads,
        s_llc=sample[Counter.STALLS_L3_MISS],
        s_cache=cache_level_stalls(sample, platform_family),
        s_sb=sample[Counter.BOUND_ON_STORES],
        lfb_hit_ratio=lfb_hit_ratio(sample),
        mem_prefetch_reliance=mem_prefetch_reliance(sample,
                                                    platform_family),
    )


def signature(profile: ProfiledRun) -> Signature:
    """Build a :class:`Signature` from a profiling run."""
    return signature_from_sample(
        profile.sample, profile.platform_family, profile.frequency_ghz,
        tier=profile.tier, label=profile.label)
