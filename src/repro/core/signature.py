"""Workload signatures: the model-facing view of a counter sample.

A :class:`Signature` packages the derived quantities every CAMP model
consumes - latency, MLP, AOL, per-component stall fractions, and the two
cache-pressure ratios - with the platform-specific counter mappings of
section 4.4.3 applied:

- cache-level stalls come from ``P1 - P2`` on SKX and ``P2 - P3`` on
  SPR/EMR (the level where each microarchitecture exposes prefetch
  inefficiency);
- the memory-prefetch reliance ``R_Mem`` is ``(P7 - P8) / P7`` on SKX
  and ``(P14/P15) * (P16/(P16+P17))`` on SPR/EMR (uncore proxies,
  because those cores lack the L1-prefetch data-source events).

Signatures are pure functions of a :class:`~repro.core.counters.
ProfiledRun`; they never look at simulator ground truth.

Missing counters (``docs/FAULTS.md``): real ``perf`` sessions drop
events under counter multiplexing, so a sample is *not* guaranteed to
carry every Table 5 counter.  Extraction never raises for an absent
counter; instead each quantity falls back along a documented chain
(e.g. SKX cache-level stalls: ``P1 - P2`` -> ``P2 - P3`` -> ``0``; SKX
``R_Mem``: offcore events -> uncore proxy -> ``0``), the missing
counter ids are recorded on the signature, and :attr:`Signature.
degraded` / :attr:`Signature.confidence` let downstream consumers flag
predictions built on partial data instead of silently trusting them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .counters import Counter, CounterSample, ProfiledRun

#: Counters whose absence degrades a signature: the full Table 5 event
#: set plus the architectural instruction counter.  CYCLES is excluded
#: only because a :class:`CounterSample` cannot exist without it.
EXPECTED_COUNTERS: Tuple[Counter, ...] = (
    Counter.INSTRUCTIONS,
    Counter.STALLS_L1D_MISS, Counter.STALLS_L2_MISS,
    Counter.STALLS_L3_MISS, Counter.L1_MISS, Counter.LFB_HIT,
    Counter.BOUND_ON_STORES, Counter.PF_L1D_ANY_RESPONSE,
    Counter.PF_L1D_L3_HIT, Counter.PF_L2_ANY_RESPONSE,
    Counter.PF_L2_L3_HIT, Counter.ORO_DEMAND_RD, Counter.OR_DEMAND_RD,
    Counter.ORO_CYC_W_DEMAND_RD, Counter.LLC_LOOKUP_PF_RD,
    Counter.LLC_LOOKUP_ALL, Counter.TOR_INS_IA_PREF,
    Counter.TOR_INS_IA_HIT_PREF,
)


def missing_counters(sample: CounterSample) -> Tuple[str, ...]:
    """Expected counters absent from ``sample`` (paper ids, sorted).

    The simulator always emits the complete set, so a non-empty result
    means the sample passed through perf-style multiplexing loss or a
    fault injector.
    """
    return tuple(counter.value for counter in EXPECTED_COUNTERS
                 if counter not in sample)


def _safe_ratio(numerator: float, denominator: float,
                default: float = 0.0) -> float:
    if denominator <= 0:
        return default
    return numerator / denominator


@dataclass(frozen=True)
class Signature:
    """Derived per-run quantities used by the prediction models."""

    #: Workload label (for reporting) and run context.
    label: str
    platform_family: str
    tier: str
    frequency_ghz: float

    #: Total cycles ``c`` and instructions.
    cycles: float
    instructions: float

    #: Little's-law triple over offcore demand reads.
    latency_cycles: float
    mlp: float
    memory_active_cycles: float
    demand_reads: float

    #: Component stall cycles: s_LLC (P3), cache-level, SB-full (P6).
    s_llc: float
    s_cache: float
    s_sb: float

    #: Cache-pressure ratios of section 4.2.2.
    lfb_hit_ratio: float
    mem_prefetch_reliance: float

    #: Paper ids of expected counters the sample did not carry; empty
    #: for a complete sample.  See the module docstring for the
    #: fallback chains applied when this is non-empty.
    missing: Tuple[str, ...] = field(default=())

    @property
    def degraded(self) -> bool:
        """True when the signature was built on an incomplete sample."""
        return bool(self.missing)

    @property
    def confidence(self) -> float:
        """Fraction of expected counters present, in [0, 1]."""
        return 1.0 - len(self.missing) / len(EXPECTED_COUNTERS)

    @property
    def latency_ns(self) -> float:
        return self.latency_cycles / self.frequency_ghz

    @property
    def aol(self) -> float:
        """SoarAlto's AOL: latency amortized over MLP (cycles)."""
        return _safe_ratio(self.latency_cycles, self.mlp)

    @property
    def ipc(self) -> float:
        return _safe_ratio(self.instructions, self.cycles)

    @property
    def llc_stall_fraction(self) -> float:
        """``s_LLC / c``: the demand-read stall intensity."""
        return _safe_ratio(self.s_llc, self.cycles)

    @property
    def cache_stall_fraction(self) -> float:
        return _safe_ratio(self.s_cache, self.cycles)

    @property
    def sb_stall_fraction(self) -> float:
        return _safe_ratio(self.s_sb, self.cycles)

    @property
    def memory_active_fraction(self) -> float:
        """``C / c``: share of cycles with a pending offcore read."""
        return _safe_ratio(self.memory_active_cycles, self.cycles)


def demand_stalls(sample: CounterSample) -> float:
    """s_LLC: L3-miss demand stall cycles, with missing-counter fallback.

    ``P3`` when present; a sample that lost P3 to multiplexing falls
    back to the tighter ``P2`` band (an over-estimate that keeps the
    DRd component alive), then to ``P1``, then to 0.
    """
    for counter in (Counter.STALLS_L3_MISS, Counter.STALLS_L2_MISS,
                    Counter.STALLS_L1D_MISS):
        if counter in sample:
            return sample[counter]
    return 0.0


def cache_level_stalls(sample: CounterSample, platform_family: str) -> float:
    """Cache-level stall cycles with the per-family counter mapping.

    Fallback chain when the primary band counter is missing: the other
    family's band (both are valid cache-level proxies, just at
    different levels), then 0 - never an exception.
    """
    family = platform_family.lower()
    skx_band = (Counter.STALLS_L1D_MISS in sample and
                Counter.STALLS_L2_MISS in sample)
    spr_band = (Counter.STALLS_L2_MISS in sample and
                Counter.STALLS_L3_MISS in sample)
    if family == "skx":
        if skx_band:
            return max(0.0, sample[Counter.STALLS_L1D_MISS] -
                       sample[Counter.STALLS_L2_MISS])
        if spr_band:
            return max(0.0, sample[Counter.STALLS_L2_MISS] -
                       sample[Counter.STALLS_L3_MISS])
        return 0.0
    if spr_band:
        return max(0.0, sample[Counter.STALLS_L2_MISS] -
                   sample[Counter.STALLS_L3_MISS])
    if skx_band:
        return max(0.0, sample[Counter.STALLS_L1D_MISS] -
                   sample[Counter.STALLS_L2_MISS])
    return 0.0


def mem_prefetch_reliance(sample: CounterSample,
                          platform_family: str) -> float:
    """R_Mem: the fraction of prefetch activity sourced from memory.

    SKX has direct L1-prefetch offcore response events; SPR/EMR use the
    uncore lookup/TOR proxy (section 4.4.3).  Clamped to [0, 1].

    Either formula serves as the fallback for the other when its
    counters are missing; with neither available the reliance degrades
    to 0 (the neutral "prefetches are cache-resident" assumption).
    """
    family = platform_family.lower()
    has_offcore = Counter.PF_L1D_ANY_RESPONSE in sample
    has_uncore = Counter.LLC_LOOKUP_ALL in sample
    use_offcore = (has_offcore if family == "skx"
                   else has_offcore and not has_uncore)
    if use_offcore:
        any_response = sample[Counter.PF_L1D_ANY_RESPONSE]
        l3_hits = sample[Counter.PF_L1D_L3_HIT]
        value = _safe_ratio(any_response - l3_hits, any_response)
    elif has_uncore:
        pf_share = _safe_ratio(sample[Counter.LLC_LOOKUP_PF_RD],
                               sample[Counter.LLC_LOOKUP_ALL])
        pref_miss = sample[Counter.TOR_INS_IA_PREF]
        pref_hit = sample[Counter.TOR_INS_IA_HIT_PREF]
        miss_ratio = _safe_ratio(pref_miss, pref_miss + pref_hit)
        value = pf_share * miss_ratio
    else:
        value = 0.0
    return min(1.0, max(0.0, value))


def lfb_hit_ratio(sample: CounterSample) -> float:
    """R_LFB-hit = P5 / (P4 + P5), clamped to [0, 1].

    A sample missing either load-source counter degrades to 0 (no
    observed fill-buffer absorption).
    """
    hits = sample[Counter.LFB_HIT]
    misses = sample[Counter.L1_MISS]
    return min(1.0, max(0.0, _safe_ratio(hits, hits + misses)))


def signature_from_sample(sample: CounterSample, platform_family: str,
                          frequency_ghz: float, tier: str = "dram",
                          label: str = "") -> Signature:
    """Build a :class:`Signature` from a raw counter sample.

    Never raises for missing counters: every derived quantity has a
    documented fallback, and the absences are recorded in
    :attr:`Signature.missing` so predictions can be flagged degraded.
    """
    return Signature(
        label=label,
        platform_family=platform_family.lower(),
        tier=tier,
        frequency_ghz=frequency_ghz,
        cycles=sample.cycles,
        instructions=sample.instructions,
        latency_cycles=sample.latency_cycles,
        mlp=sample.mlp,
        memory_active_cycles=sample.memory_active_cycles,
        demand_reads=sample.demand_reads,
        s_llc=demand_stalls(sample),
        s_cache=cache_level_stalls(sample, platform_family),
        s_sb=sample[Counter.BOUND_ON_STORES],
        lfb_hit_ratio=lfb_hit_ratio(sample),
        mem_prefetch_reliance=mem_prefetch_reliance(sample,
                                                    platform_family),
        missing=missing_counters(sample),
    )


def signature(profile: ProfiledRun) -> Signature:
    """Build a :class:`Signature` from a profiling run."""
    return signature_from_sample(
        profile.sample, profile.platform_family, profile.frequency_ghz,
        tier=profile.tier, label=profile.label)
