"""Bandwidth-saturation-aware prediction (paper section 4.4.6).

The paper's stated limitation and future-work direction: the DRAM-only
slowdown model "applies to regimes where device bandwidth is not
saturated.  Once bandwidth saturates, access latency can increase
non-linearly, cascading into amplified demand-read, cache-induced, and
store-induced slowdowns."

This module implements that extension.  The DRAM profiling run already
reveals the workload's memory traffic (offcore reads + prefetch fills
over the run's duration); projecting that traffic onto the *target*
device's published bandwidth and queueing curve predicts how much the
device's latency will inflate beyond idle - and the section 4 models
assume idle-anchored latency, so every component amplifies by the
latency-excess ratio.

The projection is a small fixed point: amplified slowdown stretches the
runtime, which lowers the offered bandwidth, which relaxes the
amplification.  A dozen damped iterations converge for every workload
in the suite.

This is *not* part of the paper's evaluated system - benchmarks
comparing it against the base predictor live in
``benchmarks/test_ablation_contention.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..uarch.config import MemoryDeviceConfig, get_device
from ..uarch.memory import loaded_latency_ns
from .calibration import Calibration
from .counters import ProfiledRun
from .metrics import bandwidth_gbps
from .slowdown import SlowdownPrediction, SlowdownPredictor

_ITERATIONS = 40
_DAMPING = 0.5
#: Projection keeps utilization within the same ceiling the devices do.
_MAX_PROJECTED_UTILIZATION = 0.97


@dataclass(frozen=True)
class ContentionForecast:
    """Diagnostics of the saturation projection for one workload."""

    #: Traffic measured on DRAM (GB/s).
    dram_traffic_gbps: float
    #: Projected traffic and utilization on the target device.
    projected_gbps: float
    projected_utilization: float
    #: Projected loaded latency vs the device's idle latency (ns).
    projected_latency_ns: float
    idle_latency_ns: float
    #: The resulting component amplification factor (>= 1).
    amplification: float


class ContentionAwarePredictor(SlowdownPredictor):
    """The base predictor plus the saturation-projection correction.

    Parameters
    ----------
    calibration:
        A regular :class:`~repro.core.calibration.Calibration`.
    device:
        The target device's configuration; defaults to the preset
        registered under the calibration's device name.  The queueing
        curve and peak bandwidth are exactly the figures a datasheet
        (or an MLC loaded-latency sweep) publishes.
    """

    def __init__(self, calibration: Calibration,
                 device: Optional[MemoryDeviceConfig] = None):
        super().__init__(calibration)
        self.device_config = device if device is not None \
            else get_device(calibration.device)

    def forecast_contention(self, profile: ProfiledRun,
                            base_total: float) -> ContentionForecast:
        """Project the workload's traffic onto the target device."""
        traffic = bandwidth_gbps(profile)
        device = self.device_config
        idle = device.idle_latency_ns
        idle_dram = self.calibration.idle_latency_dram_ns

        amplification = 1.0
        projected = traffic
        utilization = 0.0
        loaded = idle
        for _ in range(_ITERATIONS):
            # Slowdown stretches the runtime: the same line count over
            # (1 + S) times the duration.
            total = base_total * amplification
            projected = traffic / max(1.0 + total, 1e-6)
            utilization = min(projected / device.peak_bandwidth_gbps,
                              _MAX_PROJECTED_UTILIZATION)
            loaded = loaded_latency_ns(device, utilization)
            # The section 4 models are anchored at idle slow-tier
            # latency; components scale with the *excess over DRAM*.
            target = max(1.0, (loaded - idle_dram) /
                         max(idle - idle_dram, 1.0))
            amplification += _DAMPING * (target - amplification)
        return ContentionForecast(
            dram_traffic_gbps=traffic,
            projected_gbps=projected,
            projected_utilization=utilization,
            projected_latency_ns=loaded,
            idle_latency_ns=idle,
            amplification=amplification,
        )

    def bandwidth_floor(self, profile: ProfiledRun) -> float:
        """The throughput-conservation lower bound on slowdown.

        A device cannot serve more than its peak bandwidth: if the
        workload moved ``traffic`` GB/s on DRAM, its runtime on the
        slow tier must stretch by at least ``traffic / capacity`` -
        regardless of any latency modeling.
        """
        traffic = bandwidth_gbps(profile)
        capacity = (self.device_config.peak_bandwidth_gbps *
                    _MAX_PROJECTED_UTILIZATION)
        if capacity <= 0:
            return 0.0
        return max(0.0, traffic / capacity - 1.0)

    #: Floor slowdowns above this mark the device as outright saturated.
    SATURATION_THRESHOLD = 0.05
    #: Projected utilization below which no correction is applied.
    CONTENTION_KNEE = 0.55

    def predict(self, profile: ProfiledRun) -> SlowdownPrediction:
        base = super().predict(profile)
        floor = self.bandwidth_floor(profile)
        if floor > self.SATURATION_THRESHOLD and base.total > 0:
            # The device saturates outright: the runtime equals the
            # bandwidth-limited time (bytes / capacity) - queueing
            # latency escalates exactly far enough to throttle the
            # cores to the service rate, and the latency stalls live
            # *inside* that runtime.  The slowdown is the throughput
            # floor, whatever the latency models say.
            factor = floor / base.total
        else:
            # Contended but below saturation: amplify the idle-anchored
            # components by the projected latency-excess ratio.  Below
            # the contention knee the correction self-disables - the
            # base model is already accurate there, and mid-range
            # projection noise would only erode it.
            forecast = self.forecast_contention(profile, base.total)
            factor = (forecast.amplification
                      if forecast.projected_utilization >
                      self.CONTENTION_KNEE else 1.0)
        return SlowdownPrediction(
            label=base.label,
            device=base.device,
            drd=base.drd * factor,
            cache=base.cache * factor,
            store=base.store * factor,
            degraded=base.degraded,
            confidence=base.confidence,
        )
