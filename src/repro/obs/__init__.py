"""Structured observability: span tracing, exporters, bench harness.

``repro.obs`` is the layer that answers "where did the time go?" -
inside one run (hierarchical spans, Chrome-trace/JSONL exporters,
``python -m repro trace``) and across the repository's history (the
pinned bench micro-suite, ``python -m repro bench``, whose
``BENCH_runtime.json`` artifact CI accumulates PR over PR).

The package is import-light on purpose: :mod:`repro.obs.tracer` is
pure stdlib, because clock-forbidden simulation modules
(:mod:`repro.uarch.machine`) import :func:`maybe_span` from it, and
importing the tracer must not drag the runtime stack along.  The bench
harness (:mod:`repro.obs.bench`) does depend on the runtime and is
imported lazily by the CLI.

See ``docs/OBSERVABILITY.md`` for the trace and bench file formats.
"""

from .export import (TRACE_SCHEMA, chrome_trace_dict, jsonl_lines,
                     write_chrome_trace, write_jsonl)
from .report import render_report
from .tracer import (Span, SpanRecord, SpanStats, Tracer, active_tracer,
                     maybe_span, trace_session)

__all__ = [
    "Span",
    "SpanRecord",
    "SpanStats",
    "TRACE_SCHEMA",
    "Tracer",
    "active_tracer",
    "chrome_trace_dict",
    "jsonl_lines",
    "maybe_span",
    "render_report",
    "trace_session",
    "write_chrome_trace",
    "write_jsonl",
]
