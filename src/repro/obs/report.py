"""The compact text report the CLI prints under ``--progress``.

Rebuilt on span data: each line shows a span name's **self** time
(excluding children), **cumulative** time (once per name, reentrancy
collapsed), and invocation count.  The printed total is the sum of
self-times, which partitions the traced wall-clock - it can never
exceed what a stopwatch around the run would measure, unlike the old
flat stage counters that double-billed nested stages.
"""

from __future__ import annotations

from typing import Dict, Optional

from .tracer import Tracer


def render_report(tracer: Tracer,
                  counters: Optional[Dict[str, int]] = None) -> str:
    """Multi-line span + counter report (empty string when idle)."""
    lines = []
    if tracer.stats:
        lines.append("span timings (self / cumulative):")
        ordered = sorted(tracer.stats.items(),
                         key=lambda kv: -kv[1].self_s)
        for name, stats in ordered:
            lines.append(
                f"  {name:<16s} {stats.self_s:8.3f}s "
                f"{stats.cumulative_s:8.3f}s  x{stats.count}")
        lines.append(
            f"  {'total (self)':<16s} {tracer.total_self_s():8.3f}s")
        if tracer.dropped:
            lines.append(f"  ({tracer.dropped} span(s) dropped past "
                         f"the event cap)")
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<18s} {value:8d}")
    return "\n".join(lines)
