"""Trace exporters: Chrome trace-event JSON and JSONL event logs.

Two formats, one source of truth (:class:`~repro.obs.tracer.Tracer`
events):

- **Chrome trace-event JSON** (``write_chrome_trace``): the object
  form of the trace-event format - ``{"traceEvents": [...]}`` with one
  complete (``"ph": "X"``) event per span - loadable directly in
  ``about://tracing`` or https://ui.perfetto.dev.  Timestamps and
  durations are microseconds, as the format requires.
- **JSONL** (``write_jsonl``): one JSON object per line, a schema
  header first, then one line per span in close order.  Greppable,
  streamable, and stable for tooling.

Schema details and how to read the result in Perfetto:
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Union

from .tracer import SpanRecord, Tracer

#: Version tag embedded in both export formats.
TRACE_SCHEMA = "repro-trace/1"

_PathLike = Union[str, pathlib.Path]


def _jsonable(value: Any) -> Any:
    """Clamp attribute values to JSON scalars (repr anything exotic)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _event_attrs(record: SpanRecord) -> Dict[str, Any]:
    return {key: _jsonable(value) for key, value in record.attrs.items()}


def chrome_trace_dict(tracer: Tracer, process_name: str = "repro"
                      ) -> Dict[str, Any]:
    """The trace as a Chrome trace-event JSON object."""
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": process_name},
    }]
    for record in tracer.events:
        events.append({
            "name": record.name,
            "cat": "repro",
            "ph": "X",
            "ts": record.start_us,
            "dur": record.duration_us,
            "pid": 1,
            "tid": 1,
            "args": dict(_event_attrs(record),
                         span_id=record.span_id,
                         parent_id=record.parent_id,
                         depth=record.depth),
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA,
                      "dropped_spans": tracer.dropped},
    }


def write_chrome_trace(tracer: Tracer, path: _PathLike) -> pathlib.Path:
    """Write the Chrome trace-event JSON file; returns the path."""
    target = pathlib.Path(path)
    target.write_text(json.dumps(chrome_trace_dict(tracer)) + "\n")
    return target


def jsonl_lines(tracer: Tracer) -> List[str]:
    """The JSONL export as a list of serialized lines."""
    lines = [json.dumps({"schema": TRACE_SCHEMA,
                         "spans": len(tracer.events),
                         "dropped_spans": tracer.dropped},
                        sort_keys=True)]
    for record in tracer.events:
        lines.append(json.dumps({
            "name": record.name,
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "depth": record.depth,
            "start_us": record.start_us,
            "duration_us": record.duration_us,
            "attrs": _event_attrs(record),
        }, sort_keys=True))
    return lines


def write_jsonl(tracer: Tracer, path: _PathLike) -> pathlib.Path:
    """Write the JSONL event log; returns the path."""
    target = pathlib.Path(path)
    target.write_text("\n".join(jsonl_lines(tracer)) + "\n")
    return target
