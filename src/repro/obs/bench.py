"""The bench-regression harness behind ``python -m repro bench``.

A pinned micro-suite of runtime hot paths, each timed over N repeats
and reported as the **median** (medians shrug off one-off scheduler
hiccups that would whipsaw a mean).  The output is a schema-versioned
JSON payload (``BENCH_SCHEMA``) whose *identity* fields - bench names,
spec counts, seeds - are fully deterministic, and which contains **no
wall-clock timestamps** (the DET01 discipline): two runs of the same
code differ only in the measured seconds.  CI runs this non-blocking
and uploads ``BENCH_runtime.json`` as an artifact, so the repository
finally accumulates a performance trajectory PR over PR.

The pinned cases cover the layers a regression could hide in:

=======================  ================================================
``machine_simulate``     one ``Machine.run`` solve (the inner loop)
``store_roundtrip``      ``ResultStore.put`` + ``get`` for 64 entries
``executor_cold``        a 6-spec batch, empty store (simulate + persist)
``executor_warm``        the same batch against a warm store (lookup only)
``suite_slice``          end-to-end: runs + predictions + accuracy summary
``solver_sweep_loop``    101-ratio sweep, one scalar ``run`` per point
``solver_sweep_batch``   the same sweep, one accelerated ``run_batch``
``solver_sweep_warm``    the same sweep, accelerated + warm-start cache
``solver_suite_loop``    16 workloads x {dram, cxl-a}, scalar loop
``solver_suite_batch``   the same pairs, one accelerated ``run_batch``
``suite_groups``         population solved per-(platform, seed) group
``suite_onebatch``       the same population, one cross-machine batch
``suite_accel``          a 3-platform suite population, accelerated f64
``solver_f32``           the same population, f32 pre-pass + f64 polish
``warm_persist_cold``    cold-process sweep seeded from the persisted
                         warm-start snapshot (``runtime/warmstore``)
``store_roundtrip_100k`` ``put_many`` + ``get_many``, 100k entries [*]
``store_scan_1m``        ``get_many`` over a 1M-entry store [*]
``fleet_pairwise_loop``  per-node ``run_colocated`` over a few nodes
``fleet_shard``          one pack-once ``run_colocated_groups`` shard
``fleet_tournament``     a tiny end-to-end two-policy tournament
=======================  ================================================

[*] scale cases: only with ``--scale`` (they build ~100 MB stores);
the committed baseline and CI include them.

The ``solver`` summary block reports the batch/loop speedups the
vectorized solver is held to (docs/SOLVER.md): >= 5x on the ratio
sweep, >= 3x on the cold suite shape.  The ``store`` block holds the
segment store (docs/STORE.md) to its acceptance floor: >= 10x faster
per entry than the retired per-entry-JSON layout's committed
``store_roundtrip`` baseline.  ``compare_bench`` diffs two payloads
for the CI trajectory check.

Schema and how to read the trajectory: ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import statistics
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Version of the bench payload layout; bump on any field change.
#: 2: solver section (five ``solver_*`` cases + the ``solver`` block).
#: 3: store section (``store`` block + the two ``--scale`` cases) for
#: the segment-backed ResultStore.
#: 4: lint section (``lint_cold``/``lint_warm`` cases + the ``lint``
#: block) tracking the camp-lint v2 whole-program passes and their
#: content-hash cache.
#: 5: fleet section (``fleet_pairwise_loop``/``fleet_shard``/
#: ``fleet_tournament`` cases + the ``fleet`` block) tracking the
#: grouped colocation solver and the tournament end-to-end
#: (docs/FLEET.md).
#: 6: population section (``suite_groups``/``suite_onebatch``/
#: ``suite_accel``/``solver_f32``/``warm_persist_cold`` cases + the
#: ``population`` block) tracking cross-machine one-shot solving, the
#: float32 fast path, and the persistent warm-start store
#: (docs/SOLVER.md).
BENCH_SCHEMA = "repro-bench/6"

#: Machine seed for every benched simulation (pinned => comparable).
BENCH_SEED = 0

#: Workloads the executor/suite cases run (named-suite members, so the
#: population generator never runs).
BENCH_WORKLOADS = ("605.mcf", "557.xz", "603.bwaves")
SUITE_SLICE_WORKLOADS = 4
STORE_ROUNDTRIP_ENTRIES = 64

#: The ``--scale`` store cases: the 100k-entry roundtrip the 10x
#: acceptance criterion is measured at, and the million-entry
#: ``get_many`` scan.
STORE_SCALE_ENTRIES = 100_000
STORE_SCAN_ENTRIES = 1_000_000

#: Per-entry median the retired per-entry-JSON store posted for
#: ``store_roundtrip`` in the committed repro-bench/2 baseline
#: (0.0195 s / 64 entries).  Pinned so the ``store`` block can report
#: the segment store's speedup against it long after the old layout
#: is gone.
JSON_STORE_BASELINE_US_PER_ENTRY = 305.0

#: Defaults for the solver section: the paper's 101-point ratio sweep
#: and a 16-workload suite shape (both overridable for quick runs).
SOLVER_SWEEP_POINTS = 101
SOLVER_SUITE_WORKLOADS = 16
SOLVER_SWEEP_WORKLOAD = "603.bwaves"
SOLVER_SWEEP_DEVICE = "cxl-a"

#: Population section shapes: the one-batch cases solve
#: ``solver_workloads`` workloads x {dram, slow} x 3 platforms x
#: ``POPULATION_SEEDS`` seeds - 9 per-(platform, seed) groups - in
#: replay mode; the f32 pair solves the full evaluation suite x
#: {dram, slow} x 3 platforms accelerated, wide enough that array
#: arithmetic (not per-iteration overhead) dominates.
POPULATION_PLATFORMS = ("skx2s", "spr2s", "emr2s")
POPULATION_SEEDS = 3

#: Fleet section shapes: one pinned shard (pack-once grouped solve)
#: against a small per-node loop, plus a tiny end-to-end tournament.
FLEET_SHARD_NODES = 50
FLEET_LOOP_NODES = 6
FLEET_TOURNAMENT_NODES = 16
FLEET_BENCH_POPULATION = 12


@dataclass
class BenchCase:
    """One pinned micro-benchmark: a setup-once, time-many callable."""

    name: str
    repeats: int
    median_s: float
    min_s: float
    max_s: float
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "repeats": self.repeats,
            "median_s": self.median_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "meta": dict(self.meta),
        }


def _timed(fn: Callable[[], None], repeats: int) -> List[float]:
    # Cyclic GC pauses are suspended while the clock runs - the same
    # hygiene :mod:`timeit` applies by default - so cases measure the
    # code under test, not collector sweeps over the bench harness's
    # own garbage.  (The scale store cases hold ~100k payload dicts
    # live; generational sweeps over those would otherwise dominate.)
    # One untimed warm-up call absorbs first-call effects - lazy
    # imports, allocator arena growth, cold page cache - so medians
    # track the steady state the trajectory is meant to watch.
    samples = []
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        fn()
        for _ in range(repeats):
            start_s = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start_s)
    finally:
        if was_enabled:
            gc.enable()
    return samples


def _case(name: str, fn: Callable[[], None], repeats: int,
          **meta: Any) -> BenchCase:
    samples = _timed(fn, repeats)
    return BenchCase(
        name=name, repeats=repeats,
        median_s=statistics.median(samples),
        min_s=min(samples), max_s=max(samples), meta=meta)


def _bench_specs(machine):
    from ..runtime.spec import RunSpec
    from ..uarch.interleave import Placement
    from ..workloads.suites import get_workload
    specs = []
    for name in BENCH_WORKLOADS:
        workload = get_workload(name)
        specs.append(RunSpec.from_machine(machine, workload,
                                          Placement.dram_only()))
        specs.append(RunSpec.from_machine(
            machine, workload, Placement.slow_only("cxl-a")))
    return specs


def run_bench(repeats: int = 5, out: Optional[pathlib.Path] = None,
              *, sweep_points: int = SOLVER_SWEEP_POINTS,
              solver_workloads: int = SOLVER_SUITE_WORKLOADS,
              scale: bool = False) -> Dict[str, Any]:
    """Run the pinned micro-suite; optionally write the JSON payload.

    Returns the payload dict.  ``repeats`` must be >= 1; 3-5 is enough
    for stable medians on a quiet machine.  ``sweep_points`` and
    ``solver_workloads`` shrink the solver section for quick local
    runs; CI and the committed baseline use the defaults.  ``scale``
    adds the big store cases (100k roundtrip, 1M scan): tens of
    seconds and ~100 MB of temporary disk, so they are opt-in.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if sweep_points < 2 or solver_workloads < 1:
        raise ValueError("solver section needs >= 2 sweep points and "
                         ">= 1 workload")
    # Imported lazily so `repro.obs` stays import-light (the tracer is
    # imported from DET01-scoped modules, which must not drag the whole
    # runtime stack in at import time).
    from ..analysis.stats import accuracy_summary
    from ..core.slowdown import SlowdownPredictor
    from ..runtime.executor import Executor
    from ..runtime.store import ResultStore
    from ..uarch.config import get_platform
    from ..uarch.interleave import Placement
    from ..uarch.machine import Machine, WarmStartCache, slowdown
    from ..workloads.suites import get_workload, named_workloads

    machine = Machine(get_platform("skx2s"), seed=BENCH_SEED)
    specs = _bench_specs(machine)
    cases: List[BenchCase] = []

    # -- machine_simulate: the solver's inner loop, one placement ----------
    sim_workload = specs[1].workload
    sim_placement = specs[1].placement

    def machine_simulate() -> None:
        machine.run(sim_workload, sim_placement)

    cases.append(_case("machine_simulate", machine_simulate, repeats,
                       workload=sim_workload.name,
                       placement=sim_placement.describe()))

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        root = pathlib.Path(tmp)

        # -- store_roundtrip: put + get, atomic-write path ------------------
        payload = {"cycles": 123456.0,
                   "values": {f"v{i}": float(i) for i in range(32)}}
        keys = [f"{i:02x}" + "0" * 62
                for i in range(STORE_ROUNDTRIP_ENTRIES)]
        rounds = [0]

        def store_roundtrip() -> None:
            store = ResultStore(root / f"store-{rounds[0]}")
            rounds[0] += 1
            for key in keys:
                store.put(key, payload)
            for key in keys:
                assert store.get(key) is not None
        cases.append(_case("store_roundtrip", store_roundtrip, repeats,
                           entries=STORE_ROUNDTRIP_ENTRIES))

        # -- store scale cases (--scale): the ISSUE-6 acceptance shapes -----
        if scale:
            scale_keys = [format(index, "064x")
                          for index in range(STORE_SCALE_ENTRIES)]
            scale_rounds = [0]

            def store_roundtrip_100k() -> None:
                store = ResultStore(root / f"scale-{scale_rounds[0]}")
                scale_rounds[0] += 1
                store.put_many((key, payload) for key in scale_keys)
                found = store.get_many(scale_keys)
                assert len(found) == STORE_SCALE_ENTRIES
            # Each repeat writes a fresh ~45 MB store; cap the wall
            # time without giving up the median.
            cases.append(_case("store_roundtrip_100k",
                               store_roundtrip_100k,
                               max(1, min(repeats, 3)),
                               entries=STORE_SCALE_ENTRIES))

            scan_keys = [format(index, "064x")
                         for index in range(STORE_SCAN_ENTRIES)]
            scan_store = ResultStore(root / "scan")
            scan_store.put_many((key, {"cycles": float(index)})
                                for index, key in enumerate(scan_keys))

            def store_scan_1m() -> None:
                found = scan_store.get_many(scan_keys)
                assert len(found) == STORE_SCAN_ENTRIES
            # Setup (the million puts) is deliberately untimed; one
            # repeat - a full-store get_many is self-averaging.
            cases.append(_case("store_scan_1m", store_scan_1m, 1,
                               entries=STORE_SCAN_ENTRIES,
                               segments=len(scan_store.segment_paths())))

        # -- executor_cold: simulate + persist ------------------------------
        cold_rounds = [0]

        def executor_cold() -> None:
            store = ResultStore(root / f"cold-{cold_rounds[0]}")
            cold_rounds[0] += 1
            Executor(jobs=1, store=store).run(specs, label="bench")
        cases.append(_case("executor_cold", executor_cold, repeats,
                           specs=len(specs)))

        # -- executor_warm: pure lookup + decode ----------------------------
        warm_store = ResultStore(root / "warm")
        Executor(jobs=1, store=warm_store).run(specs, label="bench")

        def executor_warm() -> None:
            Executor(jobs=1, store=warm_store).run(specs, label="bench")
        cases.append(_case("executor_warm", executor_warm, repeats,
                           specs=len(specs)))

        # -- suite_slice: end-to-end prediction-accuracy slice --------------
        cal_store = ResultStore(root / "cal")
        calibration = Executor(jobs=1, store=cal_store).calibration(
            machine, "cxl-a")
        predictor = SlowdownPredictor(calibration)
        from ..runtime.spec import RunSpec
        from ..workloads.suites import named_workloads
        slice_workloads = list(named_workloads().values())[
            :SUITE_SLICE_WORKLOADS]
        slice_specs = []
        for workload in slice_workloads:
            slice_specs.append(RunSpec.from_machine(
                machine, workload, Placement.dram_only()))
            slice_specs.append(RunSpec.from_machine(
                machine, workload, Placement.slow_only("cxl-a")))

        def suite_slice() -> None:
            results = Executor(jobs=1).run(slice_specs, label="bench")
            predicted, actual = [], []
            for index in range(len(slice_workloads)):
                dram = results[2 * index]
                slow = results[2 * index + 1]
                predicted.append(predictor.predict(
                    dram.profiled()).total)
                actual.append(slowdown(dram, slow))
            accuracy_summary(predicted, actual)
        cases.append(_case("suite_slice", suite_slice, repeats,
                           workloads=len(slice_workloads)))

    # -- solver: the vectorized batch solver against the scalar loop -------
    sweep_spec = get_workload(SOLVER_SWEEP_WORKLOAD)
    sweep_pairs = []
    for index in range(sweep_points):
        x = 1.0 - index / (sweep_points - 1)
        if x >= 1.0:
            placement = Placement.dram_only()
        elif x <= 0.0:
            placement = Placement.slow_only(SOLVER_SWEEP_DEVICE)
        else:
            placement = Placement.interleaved(x, SOLVER_SWEEP_DEVICE)
        sweep_pairs.append((sweep_spec, placement))

    def solver_sweep_loop() -> None:
        for workload, placement in sweep_pairs:
            machine.run(workload, placement)
    cases.append(_case("solver_sweep_loop", solver_sweep_loop, repeats,
                       points=sweep_points, workload=sweep_spec.name,
                       device=SOLVER_SWEEP_DEVICE))

    sweep_stats: Dict[str, Any] = {}

    def solver_sweep_batch() -> None:
        machine.run_batch(sweep_pairs, accelerate=True,
                          stats=sweep_stats)
    cases.append(_case("solver_sweep_batch", solver_sweep_batch, repeats,
                       points=sweep_points, workload=sweep_spec.name,
                       device=SOLVER_SWEEP_DEVICE))

    warm_cache = WarmStartCache()
    machine.run_batch(sweep_pairs, accelerate=True,
                      warm_cache=warm_cache)  # seed the cache
    warm_stats: Dict[str, Any] = {}

    def solver_sweep_warm() -> None:
        machine.run_batch(sweep_pairs, accelerate=True,
                          warm_cache=warm_cache, stats=warm_stats)
    cases.append(_case("solver_sweep_warm", solver_sweep_warm, repeats,
                       points=sweep_points, workload=sweep_spec.name,
                       device=SOLVER_SWEEP_DEVICE))

    suite_specs = list(named_workloads().values())[:solver_workloads]
    suite_pairs = []
    for workload in suite_specs:
        suite_pairs.append((workload, Placement.dram_only()))
        suite_pairs.append(
            (workload, Placement.slow_only(SOLVER_SWEEP_DEVICE)))

    def solver_suite_loop() -> None:
        for workload, placement in suite_pairs:
            machine.run(workload, placement)
    cases.append(_case("solver_suite_loop", solver_suite_loop, repeats,
                       workloads=len(suite_specs),
                       pairs=len(suite_pairs)))

    suite_stats: Dict[str, Any] = {}

    def solver_suite_batch() -> None:
        machine.run_batch(suite_pairs, accelerate=True,
                          stats=suite_stats)
    cases.append(_case("solver_suite_batch", solver_suite_batch, repeats,
                       workloads=len(suite_specs),
                       pairs=len(suite_pairs)))

    # -- population: cross-machine one-shot solving (docs/SOLVER.md) -------
    from ..runtime import serde, warmstore
    from ..runtime.spec import RunSpec
    from ..workloads.suites import evaluation_suite

    population_specs: List[Any] = []
    for platform_name in POPULATION_PLATFORMS:
        for seed in range(POPULATION_SEEDS):
            seeded = Machine(get_platform(platform_name), seed=seed)
            for workload in suite_specs:
                population_specs.append(RunSpec.from_machine(
                    seeded, workload, Placement.dram_only()))
                population_specs.append(RunSpec.from_machine(
                    seeded, workload,
                    Placement.slow_only(SOLVER_SWEEP_DEVICE)))
    population_groups: Dict[Any, List[Any]] = {}
    for spec in population_specs:
        population_groups.setdefault(
            (spec.platform.name, spec.noise, spec.seed),
            []).append(spec)
    pop_repeats = max(1, min(repeats, 3))   # the grouped path is slow

    def suite_groups() -> None:
        for members in population_groups.values():
            members[0].machine().run_batch(
                [(spec.workload, spec.placement) for spec in members])
    cases.append(_case("suite_groups", suite_groups, pop_repeats,
                       lanes=len(population_specs),
                       groups=len(population_groups)))

    def suite_onebatch() -> None:
        Machine.run_batch_multi(population_specs)
    cases.append(_case("suite_onebatch", suite_onebatch, repeats,
                       lanes=len(population_specs),
                       platforms=len(POPULATION_PLATFORMS),
                       seeds=POPULATION_SEEDS))

    # Replay byte-identity of the merged batch against the grouped
    # path, checked once (untimed) on the full population.
    onebatch_lookup = dict(zip(
        population_specs, Machine.run_batch_multi(population_specs)))
    replay_identical = all(
        serde.run_result_to_dict(onebatch_lookup[spec]) ==
        serde.run_result_to_dict(result)
        for members in population_groups.values()
        for spec, result in zip(members, members[0].machine().run_batch(
            [(s.workload, s.placement) for s in members])))

    f32_population: List[Any] = []
    for platform_name in POPULATION_PLATFORMS:
        seeded = Machine(get_platform(platform_name), seed=BENCH_SEED)
        for workload in evaluation_suite(seed=2026):
            f32_population.append(RunSpec.from_machine(
                seeded, workload, Placement.dram_only()))
            f32_population.append(RunSpec.from_machine(
                seeded, workload,
                Placement.slow_only(SOLVER_SWEEP_DEVICE)))
    accel_stats: Dict[str, Any] = {}
    f32_stats: Dict[str, Any] = {}

    def suite_accel() -> None:
        Machine.run_batch_multi(f32_population, accelerate=True,
                                stats=accel_stats)
    cases.append(_case("suite_accel", suite_accel, pop_repeats,
                       lanes=len(f32_population)))

    def solver_f32() -> None:
        Machine.run_batch_multi(f32_population, accelerate=True,
                                float32=True, stats=f32_stats)
    cases.append(_case("solver_f32", solver_f32, pop_repeats,
                       lanes=len(f32_population)))

    # -- warm_persist_cold: a cold process seeded from the snapshot --------
    # Setup persists a sweep-seeded cache; each timed call then does
    # exactly what a cold process does - rebuild the cache from the
    # store and solve the sweep warm.
    persist_stats: Dict[str, Any] = {}
    warm_loaded = [0]
    with tempfile.TemporaryDirectory(prefix="repro-bench-warm-") as tmp:
        warm_snap_store = ResultStore(pathlib.Path(tmp) / "snap")
        seed_cache = WarmStartCache()
        machine.run_batch(sweep_pairs, accelerate=True,
                          warm_cache=seed_cache)
        warmstore.save_warm_cache(warm_snap_store, seed_cache)

        def warm_persist_cold() -> None:
            cache, warm_loaded[0] = warmstore.load_warm_cache(
                warm_snap_store)
            machine.run_batch(sweep_pairs, accelerate=True,
                              warm_cache=cache, stats=persist_stats)
        cases.append(_case("warm_persist_cold", warm_persist_cold,
                           repeats, points=sweep_points))

    # -- lint_cold / lint_warm: camp-lint whole-repo, cache off/on ---------
    # Cold rebuilds the program graph and runs every rule from a fresh
    # cache file each call; warm re-uses one cache so an unchanged tree
    # is pure hash-and-load.  (The harness's untimed warm-up call is
    # what fills the warm case's cache.)
    from ..lint import ALL_RULES, LintCache, default_root, run_lint
    from ..lint.cache import rules_token

    lint_root = default_root()
    lint_token = rules_token([rule.id for rule in ALL_RULES])
    lint_repeats = max(1, min(repeats, 3))   # ~1.5 s per cold pass
    lint_files = [0]
    with tempfile.TemporaryDirectory(prefix="repro-bench-lint-") as tmp:
        lint_tmp = pathlib.Path(tmp)
        cold_round = [0]

        def lint_cold() -> None:
            cold_round[0] += 1
            cache = LintCache(
                lint_tmp / f"cold-{cold_round[0]}.json", lint_token)
            lint_files[0] = run_lint(
                root=lint_root, cache=cache).files_checked

        cases.append(_case("lint_cold", lint_cold, lint_repeats))

        def lint_warm() -> None:
            cache = LintCache(lint_tmp / "warm.json", lint_token)
            run_lint(root=lint_root, cache=cache)

        cases.append(_case("lint_warm", lint_warm, lint_repeats))
    for case_name in ("lint_cold", "lint_warm"):
        next(case for case in cases
             if case.name == case_name).meta.update(
            files=lint_files[0], rules=len(ALL_RULES))

    # -- fleet: the grouped colocation solver and the tournament -----------
    from ..fleet import TournamentConfig, draw_fleet, run_tournament
    from ..workloads.suites import evaluation_suite

    fleet_population = list(evaluation_suite(
        seed=2026))[:FLEET_BENCH_POPULATION]
    fleet_by_name = {spec.name: spec for spec in fleet_population}
    fleet_nodes = draw_fleet(fleet_population, FLEET_SHARD_NODES,
                             seed=BENCH_SEED)

    def fleet_jobs(node):
        return [(fleet_by_name[name],
                 Placement.interleaved(0.5, SOLVER_SWEEP_DEVICE))
                for name in node.workloads]

    loop_nodes = fleet_nodes[:FLEET_LOOP_NODES]

    def fleet_pairwise_loop() -> None:
        for node in loop_nodes:
            machine.run_colocated(fleet_jobs(node), tolerance=1e-4)
    cases.append(_case("fleet_pairwise_loop", fleet_pairwise_loop,
                       repeats, nodes=FLEET_LOOP_NODES))

    shard_jobs: List[Any] = []
    shard_groups = []
    for node in fleet_nodes:
        base = len(shard_jobs)
        shard_jobs.extend(fleet_jobs(node))
        shard_groups.append(tuple(range(base, len(shard_jobs))))

    def fleet_shard() -> None:
        machine.run_colocated_groups(shard_jobs, shard_groups,
                                     tolerance=1e-4)
    cases.append(_case("fleet_shard", fleet_shard, repeats,
                       nodes=FLEET_SHARD_NODES, lanes=len(shard_jobs)))

    fleet_config = TournamentConfig(
        nodes=FLEET_TOURNAMENT_NODES, seed=BENCH_SEED,
        schedule="flat", shard_nodes=FLEET_TOURNAMENT_NODES // 2,
        policies=("best-shot", "static"),
        population_limit=FLEET_BENCH_POPULATION)
    fleet_executor = Executor(jobs=1)

    def fleet_tournament() -> None:
        run_tournament(machine, calibration, fleet_executor,
                       fleet_config)
    cases.append(_case("fleet_tournament", fleet_tournament,
                       max(1, min(repeats, 3)),
                       nodes=FLEET_TOURNAMENT_NODES,
                       policies=len(fleet_config.policies)))

    by_name = {case.name: case for case in cases}

    def _speedup(loop_name: str, batch_name: str) -> float:
        loop_s = by_name[loop_name].median_s
        batch_s = max(by_name[batch_name].median_s, 1e-12)
        return round(loop_s / batch_s, 2)

    solver = {
        "sweep_points": sweep_points,
        "suite_workloads": len(suite_specs),
        "sweep_speedup": _speedup("solver_sweep_loop",
                                  "solver_sweep_batch"),
        "sweep_warm_speedup": _speedup("solver_sweep_loop",
                                       "solver_sweep_warm"),
        "suite_speedup": _speedup("solver_suite_loop",
                                  "solver_suite_batch"),
        "sweep_outer_iterations": int(
            sweep_stats.get("outer_iterations", 0)),
        "sweep_warm_outer_iterations": int(
            warm_stats.get("outer_iterations", 0)),
        "nonconverged": int(sweep_stats.get("nonconverged", 0)) +
        int(warm_stats.get("nonconverged", 0)) +
        int(suite_stats.get("nonconverged", 0)),
    }
    by_name["solver_sweep_batch"].meta["speedup_vs_loop"] = \
        solver["sweep_speedup"]
    by_name["solver_sweep_warm"].meta["speedup_vs_loop"] = \
        solver["sweep_warm_speedup"]
    by_name["solver_suite_batch"].meta["speedup_vs_loop"] = \
        solver["suite_speedup"]

    population = {
        "lanes": len(population_specs),
        "groups": len(population_groups),
        "onebatch_speedup": _speedup("suite_groups", "suite_onebatch"),
        "onebatch_replay_identical": replay_identical,
        "f32_lanes": len(f32_population),
        "f32_speedup": _speedup("suite_accel", "solver_f32"),
        "f32_iterations": int(f32_stats.get("f32_iterations", 0)),
        "f32_polish_iterations": int(
            f32_stats.get("outer_iterations", 0)),
        "warm_cold_points_loaded": warm_loaded[0],
        "warm_cold_seeds_used": int(
            persist_stats.get("warm_seeded", 0)),
        "nonconverged": int(accel_stats.get("nonconverged", 0)) +
        int(f32_stats.get("nonconverged", 0)) +
        int(persist_stats.get("nonconverged", 0)),
    }
    by_name["suite_onebatch"].meta.update(
        speedup_vs_groups=population["onebatch_speedup"],
        replay_identical=replay_identical)
    by_name["solver_f32"].meta.update(
        speedup_vs_f64=population["f32_speedup"],
        f32_iterations=population["f32_iterations"],
        polish_iterations=population["f32_polish_iterations"])
    by_name["warm_persist_cold"].meta.update(
        points_loaded=warm_loaded[0],
        warm_seeded=population["warm_cold_seeds_used"])

    def _us_per_entry(case_name: str, entries: int) -> float:
        return round(by_name[case_name].median_s / entries * 1e6, 3)

    store_block: Dict[str, Any] = {
        "roundtrip_entries": STORE_ROUNDTRIP_ENTRIES,
        "json_baseline_us_per_entry": JSON_STORE_BASELINE_US_PER_ENTRY,
        "roundtrip_us_per_entry": _us_per_entry(
            "store_roundtrip", STORE_ROUNDTRIP_ENTRIES),
    }
    store_block["roundtrip_speedup_vs_json"] = round(
        JSON_STORE_BASELINE_US_PER_ENTRY /
        max(store_block["roundtrip_us_per_entry"], 1e-9), 1)
    if scale:
        store_block["scale_entries"] = STORE_SCALE_ENTRIES
        store_block["scale_us_per_entry"] = _us_per_entry(
            "store_roundtrip_100k", STORE_SCALE_ENTRIES)
        store_block["scale_speedup_vs_json"] = round(
            JSON_STORE_BASELINE_US_PER_ENTRY /
            max(store_block["scale_us_per_entry"], 1e-9), 1)
        store_block["scan_entries"] = STORE_SCAN_ENTRIES
        store_block["scan_us_per_entry"] = _us_per_entry(
            "store_scan_1m", STORE_SCAN_ENTRIES)

    lint_block = {
        "files": lint_files[0],
        "rules": len(ALL_RULES),
        "warm_speedup": _speedup("lint_cold", "lint_warm"),
    }
    by_name["lint_warm"].meta["speedup_vs_cold"] = \
        lint_block["warm_speedup"]

    fleet_block = {
        "shard_nodes": FLEET_SHARD_NODES,
        "shard_lanes": len(shard_jobs),
        "loop_nodes": FLEET_LOOP_NODES,
        "loop_ms_per_node": round(
            by_name["fleet_pairwise_loop"].median_s
            / FLEET_LOOP_NODES * 1e3, 3),
        "shard_ms_per_node": round(
            by_name["fleet_shard"].median_s
            / FLEET_SHARD_NODES * 1e3, 3),
        "tournament_nodes": FLEET_TOURNAMENT_NODES,
        "tournament_policies": len(fleet_config.policies),
    }
    fleet_block["shard_speedup_per_node"] = round(
        fleet_block["loop_ms_per_node"] /
        max(fleet_block["shard_ms_per_node"], 1e-9), 1)
    by_name["fleet_shard"].meta["speedup_per_node_vs_loop"] = \
        fleet_block["shard_speedup_per_node"]

    result = {
        "schema": BENCH_SCHEMA,
        "seed": BENCH_SEED,
        "repeats": repeats,
        "environment": {
            "cpu_count": os.cpu_count() or 1,
        },
        "benches": [case.as_dict() for case in cases],
        "solver": solver,
        "population": population,
        "store": store_block,
        "lint": lint_block,
        "fleet": fleet_block,
    }
    if out is not None:
        pathlib.Path(out).write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n")
    return result


def render_bench(result: Dict[str, Any]) -> str:
    """The stdout table for ``python -m repro bench``."""
    lines = [f"bench schema {result['schema']} "
             f"(median of {result['repeats']} repeat(s))"]
    for case in result["benches"]:
        lines.append(f"  {case['name']:<20s} {case['median_s']*1e3:9.3f} ms"
                     f"   [{case['min_s']*1e3:.3f} .. "
                     f"{case['max_s']*1e3:.3f}]")
    solver = result.get("solver")
    if solver:
        lines.append(
            f"  solver speedups: sweep {solver['sweep_speedup']:.1f}x, "
            f"warm {solver['sweep_warm_speedup']:.1f}x, "
            f"suite {solver['suite_speedup']:.1f}x "
            f"(targets >= 5x / - / 3x)")
    population = result.get("population")
    if population:
        lines.append(
            f"  population: {population['lanes']} lanes in one batch, "
            f"{population['onebatch_speedup']:.1f}x vs "
            f"{population['groups']} per-machine groups (target >= 5x, "
            f"replay identical: "
            f"{population['onebatch_replay_identical']}); "
            f"f32 {population['f32_speedup']:.1f}x on "
            f"{population['f32_lanes']} lanes; cold warm-start seeded "
            f"{population['warm_cold_seeds_used']} lane(s) from "
            f"{population['warm_cold_points_loaded']} stored point(s)")
    store = result.get("store")
    if store:
        line = (f"  store: {store['roundtrip_us_per_entry']:.1f} us/entry "
                f"({store['roundtrip_speedup_vs_json']:.0f}x vs JSON "
                f"baseline; target >= 10x")
        if "scale_us_per_entry" in store:
            line += (f"; {store['scale_entries'] // 1000}k: "
                     f"{store['scale_us_per_entry']:.1f} us/entry, "
                     f"{store['scale_speedup_vs_json']:.0f}x")
        lines.append(line + ")")
    lint = result.get("lint")
    if lint:
        lines.append(
            f"  lint: {lint['files']} file(s), {lint['rules']} rules, "
            f"warm cache {lint['warm_speedup']:.1f}x faster than cold "
            f"(target >= 2x)")
    fleet = result.get("fleet")
    if fleet:
        lines.append(
            f"  fleet: shard {fleet['shard_ms_per_node']:.2f} ms/node "
            f"vs loop {fleet['loop_ms_per_node']:.2f} ms/node "
            f"({fleet['shard_speedup_per_node']:.1f}x per node); "
            f"tournament {fleet['tournament_nodes']} nodes x "
            f"{fleet['tournament_policies']} policies")
    return "\n".join(lines)


#: Median-seconds growth beyond which ``compare_bench`` flags a case.
REGRESSION_THRESHOLD = 0.20


def compare_bench(previous: Dict[str, Any], current: Dict[str, Any],
                  threshold: float = REGRESSION_THRESHOLD) -> List[str]:
    """Diff two bench payloads; return warning lines (non-blocking).

    A case present in both payloads whose median grew by more than
    ``threshold`` (relative) is flagged.  Cases that appear or vanish
    are noted, not flagged - schema evolution is expected PR over PR.
    Wall-clock medians are noisy on shared CI runners, which is why
    the caller (the CI bench job) only *warns* on the result.
    """
    warnings: List[str] = []
    before = {case["name"]: case for case in previous.get("benches", [])}
    after = {case["name"]: case for case in current.get("benches", [])}
    for name, case in after.items():
        prior = before.get(name)
        if prior is None:
            warnings.append(f"note: new bench case {name!r} "
                            "(no baseline yet)")
            continue
        old_s = prior["median_s"]
        new_s = case["median_s"]
        if old_s > 0 and new_s > old_s * (1.0 + threshold):
            growth = (new_s / old_s - 1.0) * 100.0
            warnings.append(
                f"regression: {name} median {new_s*1e3:.3f} ms vs "
                f"{old_s*1e3:.3f} ms baseline (+{growth:.0f}%, "
                f"threshold +{threshold*100:.0f}%)")
    for name in before:
        if name not in after:
            warnings.append(f"note: bench case {name!r} removed")
    return warnings
