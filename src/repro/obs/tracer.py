"""Hierarchical span tracing: where the wall-clock actually went.

A :class:`Tracer` records *spans* - named, nested, attributed slices of
wall-clock time - and aggregates them two ways at once:

- **cumulative** seconds: total time any span of that name was open,
  counted once per name even when a span re-enters itself (a memoized
  ``Lab.run`` inside ``Lab.warm`` never double-bills the name);
- **self** seconds: time spent in a span *excluding* its children.

Self-time is what makes the report honest: the old flat stage counters
summed ``persist`` and ``lookup`` into the same total as the enclosing
``simulate``/``executor.run`` regions, so the printed total exceeded
the measured wall-clock.  Self-times of strictly nested spans partition
the traced time, so their sum can never exceed it.

The tracer is deliberately clock-isolated: simulation code
(:mod:`repro.uarch`, :mod:`repro.core`) never reads the clock itself -
camp-lint's DET01 forbids it - it calls :func:`maybe_span`, which is a
no-op unless a trace session (:func:`trace_session`) is active, and the
clock read happens here, outside the simulated world.  Traced or not,
simulated results are byte-identical; spans only ever observe.

Exporters (Chrome trace-event JSON, JSONL) live in
:mod:`repro.obs.export`; the compact text report in
:mod:`repro.obs.report`.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: Attribute value types a span may carry (JSON-serializable scalars).
AttrValue = Any

#: Default cap on retained span events; aggregation continues past it.
DEFAULT_MAX_EVENTS = 200_000


@dataclass
class SpanRecord:
    """One closed span, ready for export.

    ``start_us``/``duration_us`` are microseconds relative to the
    tracer's epoch (its construction time), which is what the Chrome
    trace-event format wants in its ``ts``/``dur`` fields.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_us: int
    duration_us: int
    depth: int
    attrs: Dict[str, AttrValue] = field(default_factory=dict)


@dataclass
class SpanStats:
    """Aggregate timings for one span name."""

    count: int = 0
    cumulative_s: float = 0.0
    self_s: float = 0.0


class Span:
    """A live (open) span handle; ``annotate`` adds attributes."""

    __slots__ = ("name", "attrs", "start_s", "child_s", "span_id",
                 "parent_id", "depth", "outermost")

    def __init__(self, name: str, attrs: Dict[str, AttrValue],
                 start_s: float, span_id: int,
                 parent_id: Optional[int], depth: int,
                 outermost: bool):
        self.name = name
        self.attrs = attrs
        self.start_s = start_s
        self.child_s = 0.0
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.outermost = outermost

    def annotate(self, **attrs: AttrValue) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)


class Tracer:
    """Collects nested spans on one thread of execution.

    Reentrant and allocation-light: opening a span pushes a handle on a
    stack; closing it pops, charges self-time, and (up to
    ``max_events``) appends a :class:`SpanRecord` for the exporters.
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        self.max_events = max_events
        self.events: List[SpanRecord] = []
        self.stats: Dict[str, SpanStats] = {}
        self.dropped = 0
        self._epoch_s = time.perf_counter()
        self._stack: List[Span] = []
        self._next_id = 1
        self._active_names: Dict[str, int] = {}

    # -- recording -----------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: AttrValue) -> Iterator[Span]:
        """Time a named region; nests and re-enters safely."""
        handle = self._open(name, dict(attrs))
        try:
            yield handle
        finally:
            self._close(handle)

    def _open(self, name: str, attrs: Dict[str, AttrValue]) -> Span:
        parent = self._stack[-1] if self._stack else None
        active = self._active_names.get(name, 0)
        handle = Span(
            name=name, attrs=attrs, start_s=time.perf_counter(),
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack), outermost=active == 0)
        self._next_id += 1
        self._active_names[name] = active + 1
        self._stack.append(handle)
        return handle

    def _close(self, handle: Span) -> None:
        end_s = time.perf_counter()
        # Unwind to the handle even if an inner span leaked (an
        # exception path skipped a __exit__): the stack stays sound.
        while self._stack and self._stack[-1] is not handle:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        elapsed_s = end_s - handle.start_s
        self._active_names[handle.name] -= 1

        stats = self.stats.setdefault(handle.name, SpanStats())
        stats.count += 1
        stats.self_s += max(0.0, elapsed_s - handle.child_s)
        if handle.outermost:
            stats.cumulative_s += elapsed_s
        if self._stack:
            self._stack[-1].child_s += elapsed_s

        if len(self.events) < self.max_events:
            self.events.append(SpanRecord(
                span_id=handle.span_id, parent_id=handle.parent_id,
                name=handle.name,
                start_us=int(round(
                    (handle.start_s - self._epoch_s) * 1e6)),
                duration_us=int(round(elapsed_s * 1e6)),
                depth=handle.depth, attrs=handle.attrs))
        else:
            self.dropped += 1

    # -- introspection -------------------------------------------------------
    def elapsed_s(self) -> float:
        """Wall-clock seconds since this tracer was created."""
        return time.perf_counter() - self._epoch_s

    def total_self_s(self) -> float:
        """Sum of self-times: never exceeds the traced wall-clock."""
        return sum(stats.self_s for stats in self.stats.values())

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's aggregates into this one.

        Used by drivers that run several executors but report once
        (the chaos harness).  Events are not migrated - their epochs
        differ - only the per-name statistics; during a trace session
        every :class:`~repro.runtime.telemetry.Telemetry` shares the
        one active tracer, so events are already unified there.
        """
        if other is self:
            return
        for name, theirs in other.stats.items():
            mine = self.stats.setdefault(name, SpanStats())
            mine.count += theirs.count
            mine.cumulative_s += theirs.cumulative_s
            mine.self_s += theirs.self_s
        self.dropped += other.dropped


# ---------------------------------------------------------------------------
# The active trace session.  ``python -m repro trace <cmd>`` installs a
# tracer here; instrumentation points in clock-forbidden modules
# (Machine.run) go through maybe_span so they stay no-ops otherwise.
# ---------------------------------------------------------------------------

_ACTIVE_TRACER: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The tracer installed by the current trace session, if any."""
    return _ACTIVE_TRACER


@contextmanager
def trace_session(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the process-wide active tracer."""
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER = previous


@contextmanager
def maybe_span(name: str, **attrs: AttrValue) -> Iterator[Optional[Span]]:
    """A span on the active tracer, or a free no-op without a session.

    This is the only instrumentation entry point simulation code may
    use: it reads no clock when no session is active, so DET01-scoped
    modules stay pure and untraced runs pay nothing.
    """
    tracer = _ACTIVE_TRACER
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as handle:
        yield handle
