"""Epoch-based dynamics of reactive tiering (section 6.2.3's mechanism).

The static policy classes in this package charge reactive systems a
parametric runtime overhead.  This module derives those costs from
first principles by actually *simulating the migration loop*: execution
proceeds in epochs; after each epoch the policy observes the machine
(per-tier latencies, placement) and migrates pages, paying for the
copies with real bandwidth.

This reproduces the paper's two structural critiques of reactive
tiering:

- **warm-up**: epochs run at suboptimal placements until the loop
  converges, while Best-shot starts at its analytically-chosen ratio;
- **migration traffic**: every moved page is a read + a write through
  the same memory system the workload needs.

The simulation is deliberately policy-agnostic: a
:class:`DynamicPolicy` sees only what its real counterpart sees
(latency samples for Colloid, hotness/capacity for NBT) and answers
with a new target placement, rate-limited by the migration budget.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.calibration import Calibration
from ..core.interleaving import synthesize
from ..uarch.interleave import Placement
from ..uarch.machine import Machine, RunResult
from ..workloads.spec import WorkloadSpec

#: Sustained page-migration copy bandwidth (GB/s).  Kernel migration
#: (4 KiB copies + page-table fixups + TLB shootdowns) moves far less
#: than memcpy speed; a few GB/s matches published numbers for
#: NUMA-balancing-style migration.
MIGRATION_BANDWIDTH_GBPS = 4.0

#: Largest footprint fraction a reactive loop migrates per epoch.
DEFAULT_MIGRATION_RATE = 0.10


@dataclass(frozen=True)
class EpochObservation:
    """What a reactive policy can see at the end of an epoch."""

    epoch: int
    placement_x: float
    dram_latency_ns: float
    slow_latency_ns: float
    dram_utilization: float
    slow_utilization: float


@dataclass(frozen=True)
class EpochRecord:
    """One epoch of the trace: placement, work, and migration cost."""

    epoch: int
    placement_x: float
    cycles: float
    migration_cycles: float
    observation: EpochObservation

    @property
    def total_cycles(self) -> float:
        return self.cycles + self.migration_cycles


@dataclass(frozen=True)
class TieringTrace:
    """A full dynamic-tiering execution."""

    policy: str
    workload: str
    records: Tuple[EpochRecord, ...]
    #: DRAM-only total cycles over the same work, for normalization.
    dram_only_cycles: float

    @property
    def total_cycles(self) -> float:
        return sum(record.total_cycles for record in self.records)

    @property
    def migration_cycles(self) -> float:
        return sum(record.migration_cycles for record in self.records)

    @property
    def normalized_performance(self) -> float:
        """DRAM-only time over policy time (Fig. 15 metric)."""
        return self.dram_only_cycles / self.total_cycles

    @property
    def final_x(self) -> float:
        return self.records[-1].placement_x

    def convergence_epoch(self, tolerance: float = 0.02) -> int:
        """First epoch from which the placement stays within
        ``tolerance`` of its final value."""
        final = self.final_x
        for record in self.records:
            if abs(record.placement_x - final) <= tolerance:
                return record.epoch
        return self.records[-1].epoch


class DynamicPolicy(abc.ABC):
    """A reactive (or proactive) placement loop."""

    name: str = "dynamic-policy"

    @abc.abstractmethod
    def initial_x(self, machine: Machine, workload: WorkloadSpec,
                  device: str, capacity_fraction: float) -> float:
        """Placement before the first epoch."""

    def adjust(self, observation: EpochObservation,
               capacity_fraction: float) -> float:
        """Target placement for the next epoch (default: hold)."""
        return observation.placement_x


class FirstTouchDynamics(DynamicPolicy):
    """Fill the fast tier at allocation time, never migrate."""

    name = "first-touch"

    def initial_x(self, machine, workload, device,
                  capacity_fraction) -> float:
        return capacity_fraction


class ColloidDynamics(DynamicPolicy):
    """Latency equalization, one proportional step per epoch.

    Moves pages toward the lower-latency tier, as the real system's
    per-quantum decision does; the step is proportional to the relative
    latency gap, capped by the migration rate.
    """

    name = "colloid"

    def __init__(self, gain: float = 0.6,
                 migration_rate: float = DEFAULT_MIGRATION_RATE):
        self.gain = gain
        self.migration_rate = migration_rate

    def initial_x(self, machine, workload, device,
                  capacity_fraction) -> float:
        # Real deployments start from the first-touch layout.
        return capacity_fraction

    #: Relative latency gap below which Colloid holds still (real
    #: implementations damp around equality to avoid ping-ponging).
    deadband = 0.05

    def adjust(self, observation, capacity_fraction) -> float:
        gap = (observation.slow_latency_ns -
               observation.dram_latency_ns)
        scale = max(observation.dram_latency_ns, 1.0)
        relative = gap / scale
        if abs(relative) < self.deadband:
            return observation.placement_x
        step = max(-self.migration_rate,
                   min(self.migration_rate, self.gain * relative))
        return min(capacity_fraction,
                   max(0.0, observation.placement_x + step))


class NBTDynamics(DynamicPolicy):
    """Hot-page promotion: rate-limited climb toward the capacity fill.

    NUMA-balancing tiering promotes recently-touched pages into the
    fast tier; with our (mostly uniform) page popularity that converges
    on filling the fast tier, at the kernel's promotion pace.
    """

    name = "nbt"

    def __init__(self, promotion_rate: float = 0.06,
                 start_fraction: float = 0.3):
        self.promotion_rate = promotion_rate
        self.start_fraction = start_fraction

    def initial_x(self, machine, workload, device,
                  capacity_fraction) -> float:
        # Pages land interleaved-ish before promotion kicks in.
        return min(capacity_fraction, self.start_fraction)

    def adjust(self, observation, capacity_fraction) -> float:
        target = capacity_fraction * 0.95  # promotion watermark
        step = min(self.promotion_rate,
                   abs(target - observation.placement_x))
        direction = 1.0 if target > observation.placement_x else -1.0
        return min(capacity_fraction,
                   max(0.0, observation.placement_x + direction * step))


class BestShotDynamics(DynamicPolicy):
    """CAMP's proactive policy: profile, predict, jump, never migrate."""

    name = "best-shot"

    def __init__(self, calibration: Calibration):
        self.calibration = calibration

    def initial_x(self, machine, workload, device,
                  capacity_fraction) -> float:
        from ..core.classify import classify
        dram_profile = machine.profile(workload, Placement.dram_only())
        slow_profile = None
        if classify(dram_profile,
                    self.calibration.idle_latency_dram_ns
                    ).is_bandwidth_bound:
            slow_profile = machine.profile(
                workload, Placement.slow_only(device))
        model = synthesize(dram_profile, self.calibration, slow_profile)
        import numpy as np
        ratios = np.linspace(min(1.0, capacity_fraction), 0.0, 101)
        x_best, _ = model.optimal_ratio(ratios)
        return x_best


def simulate_tiering(machine: Machine, workload: WorkloadSpec,
                     device: str, fast_capacity_gib: float,
                     policy: DynamicPolicy, epochs: int = 20,
                     hotness_bias: float = 0.0,
                     epoch_seconds: float = 1.0) -> TieringTrace:
    """Run the epoch loop and return the full trace.

    The workload is rescaled so one epoch is ``epoch_seconds`` of
    DRAM-only execution (migration costs are wall-clock, so the
    work-to-footprint ratio must be realistic), then split across
    ``epochs``.  Each epoch executes at the policy's current placement;
    the policy observes and adjusts; moved pages cost
    ``bytes / MIGRATION_BANDWIDTH_GBPS`` of wall-clock, charged to the
    epoch that performs the move.
    """
    if epochs < 1:
        raise ValueError("need at least one epoch")
    capacity_fraction = min(1.0, fast_capacity_gib /
                            workload.footprint_gib)
    # Rescale to epoch_seconds of DRAM-only time per epoch.
    probe = machine.run(workload, Placement.dram_only())
    scale = epoch_seconds * epochs / max(probe.runtime_s, 1e-9)
    workload = workload.evolved(
        instructions=workload.instructions * scale)
    slice_spec = workload.evolved(
        instructions=workload.instructions / epochs)

    def placement(x: float) -> Placement:
        if x >= 1.0:
            return Placement.dram_only()
        return Placement(dram_fraction=x, device=device,
                         hotness_bias=hotness_bias)

    x = policy.initial_x(machine, workload, device, capacity_fraction)
    records: List[EpochRecord] = []
    for epoch in range(epochs):
        result = machine.run(slice_spec, placement(x))
        slow_latency_ns = (result.slow_latency_ns
                           if result.slow_latency_ns is not None else
                           machine.idle_latency_ns(device))
        observation = EpochObservation(
            epoch=epoch,
            placement_x=x,
            dram_latency_ns=result.dram_latency_ns,
            slow_latency_ns=slow_latency_ns,
            dram_utilization=result.dram_utilization,
            slow_utilization=result.slow_utilization,
        )
        new_x = min(capacity_fraction,
                    max(0.0, policy.adjust(observation,
                                           capacity_fraction)))
        moved_gib = abs(new_x - x) * workload.footprint_gib
        migration_seconds = (moved_gib * 1.074) / \
            MIGRATION_BANDWIDTH_GBPS  # GiB -> GB, read+write amortized
        migration_cycles = migration_seconds * \
            machine.platform.frequency_ghz * 1e9
        records.append(EpochRecord(
            epoch=epoch,
            placement_x=x,
            cycles=result.cycles,
            migration_cycles=migration_cycles,
            observation=observation,
        ))
        x = new_x

    dram_only = machine.run(workload, Placement.dram_only())
    return TieringTrace(
        policy=policy.name,
        workload=workload.name,
        records=tuple(records),
        dram_only_cycles=dram_only.cycles,
    )
