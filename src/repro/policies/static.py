"""Static placement baselines: Linux 1:1 interleaving and first-touch.

- **Interleave 1:1** (``MPOL_INTERLEAVE``): stripe pages evenly across
  DRAM and the slow tier regardless of workload behaviour.  Good for
  some bandwidth-bound workloads, harmful for latency-bound ones.
- **First-touch**: pages land on DRAM until the fast budget is
  exhausted, then spill to the slow tier; no migrations ever happen.
  Allocation order is roughly access order for most programs, so the
  spilled tail is slightly colder than average - a small hotness bias.
"""

from __future__ import annotations

from ..uarch.interleave import Placement
from .base import PolicyDecision, TieringContext, TieringPolicy

#: Mild hotness skew of first-touch spill (early allocations are a bit
#: hotter than the late tail that spills).
FIRST_TOUCH_BIAS = 0.10


class Interleave11(TieringPolicy):
    """Linux default 1:1 page interleaving."""

    name = "interleave-1:1"

    def decide(self, context: TieringContext) -> PolicyDecision:
        x = min(0.5, context.capacity_fraction)
        return PolicyDecision(
            placement=Placement.interleaved(x, context.device),
            note="static 1:1 stripe",
        )


class FirstTouch(TieringPolicy):
    """First-touch allocation without proactive migration."""

    name = "first-touch"

    def decide(self, context: TieringContext) -> PolicyDecision:
        x = context.capacity_fraction
        if x >= 1.0:
            return PolicyDecision(placement=Placement.dram_only(),
                                  note="fits in fast tier")
        return PolicyDecision(
            placement=Placement(dram_fraction=x, device=context.device,
                                hotness_bias=FIRST_TOUCH_BIAS),
            note=f"filled fast tier at x={x:.2f}",
        )
