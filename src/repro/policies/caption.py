"""Caption: coarse-grained interleaving-ratio search (MICRO'23 [46]).

Caption tunes the DRAM:CXL page-interleaving ratio by *probing* a small
set of candidate ratios online and keeping the one its latency/IPC
heuristics score best.  Two structural limitations the paper exploits
(section 6.2.3):

- the search space is coarse (a handful of candidate ratios), so the
  true optimum usually falls between grid points;
- every probe executes a slice of the workload at a suboptimal ratio,
  which costs real runtime.

We reproduce both: the policy measures candidate ratios with short
probe runs on the machine, picks the best *measured* candidate, and
charges the probe slices' excess runtime as decision overhead.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..uarch.interleave import Placement
from .base import PolicyDecision, TieringContext, TieringPolicy

#: Caption's candidate DRAM shares (coarse, as in the paper's critique).
DEFAULT_CANDIDATES: Tuple[float, ...] = (1.0, 0.9, 0.8, 0.7, 0.5)

#: Fraction of the run spent probing each candidate before converging.
PROBE_SHARE = 0.04


class Caption(TieringPolicy):
    """Coarse online ratio search with probing overhead."""

    name = "caption"

    def __init__(self,
                 candidates: Sequence[float] = DEFAULT_CANDIDATES,
                 probe_share: float = PROBE_SHARE):
        if not candidates:
            raise ValueError("need at least one candidate ratio")
        if not 0.0 <= probe_share < 1.0:
            raise ValueError("probe share must be within [0, 1)")
        self.candidates = tuple(sorted(set(candidates), reverse=True))
        self.probe_share = probe_share

    def decide(self, context: TieringContext) -> PolicyDecision:
        machine, workload = context.machine, context.workload
        cap = context.capacity_fraction

        # A handful of probes is below the batch solver's profitable
        # size (docs/SOLVER.md "when to batch"), so the candidates stay
        # on the scalar path.
        measured = []
        for ratio in self.candidates:
            x = min(ratio, cap)
            placement = (Placement.dram_only() if x >= 1.0 else
                         Placement.interleaved(x, context.device))
            cycles = machine.run(workload, placement).cycles
            measured.append((x, placement, cycles))

        best_x, best_placement, best_cycles = min(measured,
                                                  key=lambda t: t[2])
        # Each probe slice runs `probe_share` of the work at its
        # candidate's speed; the overhead is the excess over running
        # those slices at the chosen ratio.
        overhead = sum(
            self.probe_share * max(0.0, cycles / best_cycles - 1.0)
            for _, _, cycles in measured)
        return PolicyDecision(
            placement=best_placement,
            runtime_overhead=overhead,
            note=f"probed {len(measured)} ratios, kept x={best_x:.2f}",
        )
