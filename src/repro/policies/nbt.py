"""NUMA Balancing Tiering (NBT): Linux's hotness-recency tiering.

Recent Linux memory tiering (hot-page promotion + demotion, [7, 8])
promotes recently-accessed pages into the fast tier and demotes cold
pages.  The equilibrium is hotness-ordered: the fast tier fills with
the hottest pages up to capacity.  Relative to Colloid it migrates less
aggressively under contention (promotion is rate-limited and driven by
recency, not latency), which the paper notes makes it *better* than
Colloid on several bandwidth-bound workloads - but it still cannot
exploit aggregate bandwidth, and the promotion/demotion churn costs
runtime.
"""

from __future__ import annotations

from ..uarch.interleave import Placement
from .base import PolicyDecision, TieringContext, TieringPolicy

#: Promotion/demotion churn overhead (page faults, copies, scans).
NBT_OVERHEAD = 0.04

#: Hotness skew: recency tracking concentrates truly-hot pages well.
NBT_BIAS = 0.30

#: NBT's promotion rate limiting leaves a slice of the fast tier
#: unfilled in steady state (promotion lags the working set).
FILL_EFFICIENCY = 0.95


class NBT(TieringPolicy):
    """Linux NUMA Balancing Tiering (hot-page promotion)."""

    name = "nbt"

    def decide(self, context: TieringContext) -> PolicyDecision:
        x = context.capacity_fraction * FILL_EFFICIENCY
        if x >= 1.0:
            return PolicyDecision(placement=Placement.dram_only(),
                                  runtime_overhead=NBT_OVERHEAD,
                                  note="fits in fast tier")
        return PolicyDecision(
            placement=Placement(dram_fraction=x, device=context.device,
                                hotness_bias=NBT_BIAS),
            runtime_overhead=NBT_OVERHEAD,
            note=f"hotness-filled fast tier at x={x:.2f}",
        )
