"""Tiering-policy framework: the common decision/evaluation harness.

A tiering policy answers one question for one workload on one machine:
*where should the pages live?*  The answer is a :class:`PolicyDecision` -
a :class:`~repro.uarch.interleave.Placement` plus the costs incurred
reaching it (profiling runs, online probing, migration traffic).

The evaluation harness (:func:`evaluate_policy`) mirrors the paper's
section 6.2 methodology: run the workload under the decided placement,
apply the decision overheads, and report performance normalized to
DRAM-only execution (Fig. 15's y-axis; higher is better).

Capacity: policies receive the *fast-tier budget* available to the
workload.  The paper provisions baselines with a 4:1 fast:slow ratio
(80% of the footprint fits in fast memory), while Best-shot typically
chooses to use only 62-74% of it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..uarch.interleave import Placement
from ..uarch.machine import Machine, RunResult
from ..workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class TieringContext:
    """What a policy may look at when deciding a placement."""

    machine: Machine
    workload: WorkloadSpec
    #: Slow tier backing the spill ("numa", "cxl-a", ...).
    device: str
    #: Fast-tier capacity available to this workload, in GiB.
    fast_capacity_gib: float

    @property
    def capacity_fraction(self) -> float:
        """Largest DRAM footprint fraction that fits the fast budget."""
        return min(1.0, self.fast_capacity_gib /
                   self.workload.footprint_gib)


@dataclass(frozen=True)
class PolicyDecision:
    """A policy's placement plus the cost of reaching it."""

    placement: Placement
    #: Fractional runtime overhead from migrations / online probing
    #: (0.05 = the run takes 5% longer than the placement alone would).
    runtime_overhead: float = 0.0
    #: Profiling runs consumed before deployment (offline cost).
    profiling_runs: int = 0
    #: Free-form notes for reports ("equalized at x=0.71", ...).
    note: str = ""

    def __post_init__(self):
        if self.runtime_overhead < 0:
            raise ValueError("runtime overhead must be non-negative")


class TieringPolicy(abc.ABC):
    """Interface all tiering/interleaving policies implement."""

    #: Reporting name (Fig. 15 legend).
    name: str = "policy"

    @abc.abstractmethod
    def decide(self, context: TieringContext) -> PolicyDecision:
        """Choose a placement for the workload."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(frozen=True)
class PolicyOutcome:
    """One (policy, workload) evaluation."""

    policy: str
    workload: str
    decision: PolicyDecision
    result: RunResult
    #: Effective cycles including decision overhead.
    effective_cycles: float
    #: Cycles of the DRAM-only reference execution.
    dram_cycles: float

    @property
    def normalized_performance(self) -> float:
        """Fig. 15's metric: DRAM-only time over policy time (>1 means
        the policy beats DRAM-only execution)."""
        return self.dram_cycles / self.effective_cycles

    @property
    def slowdown(self) -> float:
        return self.effective_cycles / self.dram_cycles - 1.0


def evaluate_policy(policy: TieringPolicy, context: TieringContext,
                    dram_reference: Optional[RunResult] = None
                    ) -> PolicyOutcome:
    """Decide, execute, and score one policy on one workload."""
    machine = context.machine
    if dram_reference is None:
        dram_reference = machine.run(context.workload,
                                     Placement.dram_only())
    decision = policy.decide(context)
    if (decision.placement.dram_fraction *
            context.workload.footprint_gib >
            context.fast_capacity_gib * (1.0 + 1e-9)):
        raise ValueError(
            f"{policy.name} exceeded its fast-tier budget: "
            f"{decision.placement.describe()} with footprint "
            f"{context.workload.footprint_gib} GiB vs budget "
            f"{context.fast_capacity_gib} GiB")
    result = machine.run(context.workload, decision.placement)
    effective = result.cycles * (1.0 + decision.runtime_overhead)
    return PolicyOutcome(
        policy=policy.name,
        workload=context.workload.name,
        decision=decision,
        result=result,
        effective_cycles=effective,
        dram_cycles=dram_reference.cycles,
    )


def compare_policies(policies: Sequence[TieringPolicy],
                     context: TieringContext) -> List[PolicyOutcome]:
    """Evaluate several policies on the same workload (one Fig. 15
    cluster).  The DRAM reference run is shared."""
    reference = context.machine.run(context.workload,
                                    Placement.dram_only())
    return [evaluate_policy(policy, context, reference)
            for policy in policies]
