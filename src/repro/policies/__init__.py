"""Placement policies: Best-shot and the section 6 baselines.

- :class:`~repro.policies.bestshot.BestShot` - CAMP's predictive
  interleaving (section 6.1);
- baselines: :class:`~repro.policies.static.Interleave11`,
  :class:`~repro.policies.static.FirstTouch`,
  :class:`~repro.policies.caption.Caption`,
  :class:`~repro.policies.nbt.NBT`,
  :class:`~repro.policies.colloid.Colloid`,
  :class:`~repro.policies.colloid.Alto`,
  :class:`~repro.policies.soar.Soar`;
- colocation scheduling (section 6.3) in
  :mod:`~repro.policies.colocation`.
"""

from .base import (PolicyDecision, PolicyOutcome, TieringContext,
                   TieringPolicy, compare_policies, evaluate_policy)
from .bestshot import BestShot
from .caption import Caption
from .colloid import Alto, Colloid
from .dynamics import (BestShotDynamics, ColloidDynamics,
                       DynamicPolicy, FirstTouchDynamics, NBTDynamics,
                       TieringTrace, simulate_tiering)
from .colocation import (ColocationOutcome, MixedColocationOutcome,
                         contention_amplification, mixed_colocation,
                         predicted_pair_slowdowns, schedule_by_camp,
                         schedule_by_mpki)
from .fleet import FleetAssignment, FleetPlan, FleetPlanner
from .nbt import NBT
from .soar import Soar
from .static import FirstTouch, Interleave11

#: The Fig. 15 policy lineup, in reporting order.
def fig15_policies(calibration=None):
    """Best-shot plus the seven baselines, ready to evaluate."""
    return [
        BestShot(calibration),
        Interleave11(),
        Caption(),
        FirstTouch(),
        NBT(),
        Colloid(),
        Alto(),
        Soar(),
    ]

__all__ = [
    "PolicyDecision", "PolicyOutcome", "TieringContext", "TieringPolicy",
    "compare_policies", "evaluate_policy", "BestShot", "Caption", "Alto",
    "Colloid", "ColocationOutcome", "MixedColocationOutcome",
    "contention_amplification",
    "mixed_colocation", "predicted_pair_slowdowns", "schedule_by_camp",
    "schedule_by_mpki", "NBT", "Soar", "FirstTouch", "Interleave11",
    "BestShotDynamics", "ColloidDynamics", "DynamicPolicy",
    "FirstTouchDynamics", "NBTDynamics", "TieringTrace",
    "simulate_tiering",
    "FleetAssignment", "FleetPlan", "FleetPlanner",
    "fig15_policies",
]
