"""Best-shot: CAMP's predictive interleaving policy (paper section 6.1).

Best-shot uses the interleaving synthesis model (section 5) to jump
directly to the analytically-optimal DRAM:CXL ratio - no online search,
no reactive migration:

1. profile the workload on DRAM (one run);
2. classify; bandwidth-bound workloads get one extra profiling run on
   the slow tier (Fig. 12);
3. synthesize the full performance curve and pick the ratio minimizing
   predicted slowdown, subject to the fast-tier capacity budget;
4. deploy at that ratio under weighted interleaving.

For workloads that cannot benefit from CXL bandwidth the predicted
optimum is simply the largest ``x`` the capacity allows - Best-shot
also protects against *harmful* configurations (section 6.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.calibration import Calibration, calibrate
from ..core.interleaving import synthesize
from ..uarch.interleave import Placement
from .base import PolicyDecision, TieringContext, TieringPolicy

#: Default ratio grid: the paper sweeps percent granularity.
_DEFAULT_GRID = 101


class BestShot(TieringPolicy):
    """The Best-shot predictive interleaving policy.

    Parameters
    ----------
    calibration:
        The one-time platform calibration.  When omitted, the policy
        calibrates on first use against the context's machine+device
        (convenient for experiments; a deployment would reuse one).
    grid_points:
        Resolution of the ratio search over the synthesized curve.
    """

    name = "best-shot"

    def __init__(self, calibration: Optional[Calibration] = None,
                 grid_points: int = _DEFAULT_GRID):
        if grid_points < 2:
            raise ValueError("grid needs at least 2 points")
        self.calibration = calibration
        self.grid_points = grid_points

    def _calibration_for(self, context: TieringContext) -> Calibration:
        if (self.calibration is not None and
                self.calibration.device == context.device):
            return self.calibration
        self.calibration = calibrate(context.machine, context.device)
        return self.calibration

    def decide(self, context: TieringContext) -> PolicyDecision:
        calibration = self._calibration_for(context)
        machine, workload = context.machine, context.workload

        dram_profile = machine.profile(workload, Placement.dram_only())
        model = synthesize(dram_profile, calibration, slow_profile=None
                           if not _needs_slow_run(dram_profile,
                                                  calibration)
                           else machine.profile(
                               workload,
                               Placement.slow_only(context.device)))
        runs = 2 if model.classification.is_bandwidth_bound else 1

        cap = context.capacity_fraction
        ratios = np.linspace(min(1.0, cap), 0.0, self.grid_points)
        best_x, best_slowdown = model.optimal_ratio(ratios)

        placement = (Placement.dram_only() if best_x >= 1.0 else
                     Placement.interleaved(best_x, context.device))
        return PolicyDecision(
            placement=placement,
            runtime_overhead=0.0,
            profiling_runs=runs,
            note=(f"predicted S({best_x:.2f}) = {best_slowdown:+.3f}, "
                  f"{model.classification.workload_class.value}"),
        )


def _needs_slow_run(dram_profile, calibration) -> bool:
    """Peek at the classification to know whether to profile the slow
    tier (mirrors Fig. 12 without building the model twice)."""
    from ..core.classify import classify
    return classify(dram_profile,
                    calibration.idle_latency_dram_ns).is_bandwidth_bound
