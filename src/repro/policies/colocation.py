"""Colocated workload scheduling (paper section 6.3).

When two workloads share a machine whose fast tier can only hold one of
them, the scheduler must pick which one to banish to the slow tier.
Section 6.3 contrasts two signals:

- **MPKI-guided** (conventional hotness): keep the high-MPKI workload
  in fast memory - it "touches memory more", so it looks like it needs
  DRAM.  The paper's counter-examples (gpt-2 vs tc-road) show MPKI
  does not measure latency *tolerance*.
- **CAMP-guided**: keep the workload with the higher *predicted
  slowdown* in fast memory - placement by modeled performance impact.

Both run under genuine interference: the colocated pair shares the
tiers' bandwidth, so each workload's latency reflects the other's
traffic (:meth:`repro.uarch.machine.Machine.run_colocated`).

The mixed scenario of Fig. 16c - a bandwidth-bound workload interleaved
at its Best-shot ratio next to a latency-bound workload holding the
remaining fast memory - is implemented by :func:`mixed_colocation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.calibration import Calibration
from ..core.interleaving import synthesize
from ..core.metrics import mpki
from ..core.signature import signature
from ..core.slowdown import SlowdownPredictor
from ..uarch.interleave import Placement
from ..uarch.machine import Machine, RunResult
from ..workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class ColocationOutcome:
    """One scheduled pair: who got DRAM, and how everyone fared."""

    scheduler: str
    #: Workload names in (fast-tier, slow-tier) order.
    fast_workload: str
    slow_workload: str
    results: Tuple[RunResult, RunResult]
    #: Solo DRAM-only cycles for normalization, same order as results.
    solo_cycles: Tuple[float, float]

    @property
    def slowdowns(self) -> Tuple[float, float]:
        return tuple(
            result.cycles / solo - 1.0
            for result, solo in zip(self.results, self.solo_cycles))

    @property
    def mean_slowdown(self) -> float:
        pair = self.slowdowns
        return sum(pair) / len(pair)

    @property
    def weighted_speedup(self) -> float:
        """Sum of per-workload normalized performance (higher better)."""
        return sum(solo / result.cycles
                   for result, solo in zip(self.results,
                                           self.solo_cycles))


def _run_pair(machine: Machine, fast: WorkloadSpec, slow: WorkloadSpec,
              device: str, scheduler: str) -> ColocationOutcome:
    """Execute a pair with ``fast`` on DRAM and ``slow`` on the device."""
    jobs = [(fast, Placement.dram_only()),
            (slow, Placement.slow_only(device))]
    results = machine.run_colocated(jobs)
    solo = tuple(machine.run(w, Placement.dram_only()).cycles
                 for w, _ in jobs)
    return ColocationOutcome(
        scheduler=scheduler,
        fast_workload=fast.name,
        slow_workload=slow.name,
        results=(results[0], results[1]),
        solo_cycles=solo,
    )


def schedule_by_mpki(machine: Machine, pair: Sequence[WorkloadSpec],
                     device: str) -> ColocationOutcome:
    """Conventional placement: high-MPKI workload keeps fast memory."""
    first, second = pair
    scores = []
    for workload in (first, second):
        profile = machine.profile(workload, Placement.dram_only())
        scores.append(mpki(signature(profile)))
    fast, slow = ((first, second) if scores[0] >= scores[1]
                  else (second, first))
    return _run_pair(machine, fast, slow, device, scheduler="mpki")


def schedule_by_camp(machine: Machine, pair: Sequence[WorkloadSpec],
                     device: str, calibration: Calibration
                     ) -> ColocationOutcome:
    """CAMP placement: the workload predicted to suffer more on the
    slow tier keeps fast memory."""
    predictor = SlowdownPredictor(calibration)
    first, second = pair
    predicted = []
    for workload in (first, second):
        profile = machine.profile(workload, Placement.dram_only())
        predicted.append(predictor.predict(profile).total)
    fast, slow = ((first, second) if predicted[0] >= predicted[1]
                  else (second, first))
    return _run_pair(machine, fast, slow, device, scheduler="camp")


def predicted_pair_slowdowns(machine: Machine,
                             pair: Sequence[WorkloadSpec], device: str,
                             calibration: Calibration
                             ) -> Dict[str, float]:
    """CAMP's per-workload slow-tier slowdown forecasts (Fig. 16a)."""
    predictor = SlowdownPredictor(calibration)
    forecasts: Dict[str, float] = {}
    for workload in pair:
        profile = machine.profile(workload, Placement.dram_only())
        forecasts[workload.name] = predictor.predict(profile).total
    return forecasts


@dataclass(frozen=True)
class MixedColocationOutcome:
    """Fig. 16c: one policy's placement of a BW-bound + latency-bound
    pair at a given fast:slow capacity split."""

    policy: str
    fast_capacity_gib: float
    bw_placement: Placement
    lat_placement: Placement
    results: Tuple[RunResult, RunResult]
    solo_cycles: Tuple[float, float]

    @property
    def weighted_speedup(self) -> float:
        return sum(solo / result.cycles
                   for result, solo in zip(self.results,
                                           self.solo_cycles))


def _is_bw_bound(dram_profile, calibration: Calibration) -> bool:
    from ..core.classify import classify
    return classify(dram_profile,
                    calibration.idle_latency_dram_ns).is_bandwidth_bound


def contention_amplification(machine: Machine, device: str,
                             calibration: Calibration,
                             spill_gbps: float) -> float:
    """Excess-latency amplification a spill stream inflicts on ``device``.

    A colocated partner's slow-tier penalty scales with the *excess*
    latency over DRAM, which contention amplifies.  The denominator is
    the idle excess of the device actually being shared - probed via
    :meth:`Machine.idle_latency_ns` - not the calibration's device:
    calibrating against cxl-a and colocating on cxl-b must use cxl-b's
    idle latency or the amplification is computed against the wrong
    baseline.
    """
    from ..uarch.memory import loaded_latency_ns

    slow_device = machine.device(device)
    idle_dram_ns = calibration.idle_latency_dram_ns
    idle_slow_ns = machine.idle_latency_ns(device)
    utilization = min(spill_gbps / slow_device.peak_bandwidth_gbps, 0.95)
    loaded_ns = loaded_latency_ns(slow_device, utilization)
    return max(1.0, (loaded_ns - idle_dram_ns) /
               max(idle_slow_ns - idle_dram_ns, 1.0))


def mixed_colocation(machine: Machine, bw_workload: WorkloadSpec,
                     lat_workload: WorkloadSpec, device: str,
                     fast_capacity_gib: float,
                     calibration: Calibration,
                     policy: str = "best-shot"
                     ) -> MixedColocationOutcome:
    """Colocate a bandwidth-bound and a latency-bound workload.

    ``policy`` selects the placement rule:

    - ``"best-shot"``: the BW-bound workload gets its predicted-optimal
      interleave ratio (capacity permitting); the latency-bound one
      takes the remaining fast memory.
    - ``"first-touch"``: both fill fast memory in order (BW first),
      spilling the remainder.
    - ``"nbt"`` / ``"colloid"``: hotness/latency-driven splits of the
      fast tier, approximated by proportional capacity sharing with
      the corresponding hotness bias.
    """
    bw_fp = bw_workload.footprint_gib
    lat_fp = lat_workload.footprint_gib

    if policy == "best-shot":
        # CAMP-guided joint placement: synthesize both workloads'
        # predicted performance curves, then pick the fast-memory split
        # that maximizes the *pair's* predicted throughput.  The
        # latency-bound partner's forecast is contention-adjusted: the
        # BW-bound workload's spill traffic loads the shared slow tier,
        # inflating its latency per the device's queueing curve -
        # analytics an operator can do from the same profiling data.
        from ..core.metrics import bandwidth_gbps

        bw_dram = machine.profile(bw_workload, Placement.dram_only())
        bw_slow = machine.profile(bw_workload,
                                  Placement.slow_only(device))
        bw_model = synthesize(bw_dram, calibration, bw_slow)
        lat_dram = machine.profile(lat_workload, Placement.dram_only())
        lat_model = synthesize(lat_dram, calibration,
                               machine.profile(
                                   lat_workload,
                                   Placement.slow_only(device))
                               if _is_bw_bound(lat_dram, calibration)
                               else None)
        x_cap = min(1.0, fast_capacity_gib / bw_fp)
        bw_traffic = bandwidth_gbps(bw_dram)

        best = None
        for step in range(0, 21):
            x_bw_candidate = x_cap * step / 20.0
            remaining = max(0.0,
                            fast_capacity_gib - x_bw_candidate * bw_fp)
            x_lat_candidate = min(1.0, remaining / lat_fp)

            spill_gbps = (1.0 - x_bw_candidate) * bw_traffic
            amplification = contention_amplification(
                machine, device, calibration, spill_gbps)
            s_lat = (lat_model.predict(x_lat_candidate).total *
                     amplification)
            predicted = (
                1.0 / (1.0 + bw_model.predict(x_bw_candidate).total) +
                1.0 / (1.0 + max(s_lat, -0.5)))
            if best is None or predicted > best[0]:
                best = (predicted, x_bw_candidate, x_lat_candidate)
        _, x_bw, x_lat = best
        bias = 0.0
    elif policy == "first-touch":
        x_bw = min(1.0, fast_capacity_gib / bw_fp)
        remaining = max(0.0, fast_capacity_gib - x_bw * bw_fp)
        x_lat = min(1.0, remaining / lat_fp)
        bias = 0.10
    elif policy in ("nbt", "colloid"):
        # Reactive policies converge to a proportional share of the
        # fast tier (both workloads' hot pages compete for promotion).
        share = fast_capacity_gib / (bw_fp + lat_fp)
        x_bw = min(1.0, share)
        x_lat = min(1.0, share)
        bias = 0.30 if policy == "nbt" else 0.25
    else:
        raise ValueError(f"unknown mixed-colocation policy {policy!r}")

    def _placement(x: float) -> Placement:
        if x >= 1.0:
            return Placement.dram_only()
        return Placement(dram_fraction=x, device=device,
                         hotness_bias=bias)

    jobs = [(bw_workload, _placement(x_bw)),
            (lat_workload, _placement(x_lat))]
    results = machine.run_colocated(jobs)
    solo = tuple(machine.run(w, Placement.dram_only()).cycles
                 for w, _ in jobs)
    return MixedColocationOutcome(
        policy=policy,
        fast_capacity_gib=fast_capacity_gib,
        bw_placement=jobs[0][1],
        lat_placement=jobs[1][1],
        results=(results[0], results[1]),
        solo_cycles=solo,
    )
