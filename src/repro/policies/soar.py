"""Soar: profile-guided critical-object placement (OSDI'25 [38]).

Soar profiles a workload offline, ranks allocation sites by performance
criticality, and pins the most critical objects in the fast tier at
allocation time.  Criticality ranking is the best hotness signal of the
baselines (it directly targets stall-generating objects), so its
placement has the strongest request-share skew - but precisely because
it crams every critical object into DRAM, it recreates the contention
problem under bandwidth pressure and leaves CXL bandwidth idle
(section 6.2.3: 654.roms runs 13% worse than Best-shot).
"""

from __future__ import annotations

from ..uarch.interleave import Placement
from .base import PolicyDecision, TieringContext, TieringPolicy

#: Criticality-ranked placement: strongest hotness concentration.
SOAR_BIAS = 0.45


class Soar(TieringPolicy):
    """Profile-guided critical-object allocation."""

    name = "soar"

    def decide(self, context: TieringContext) -> PolicyDecision:
        x = context.capacity_fraction
        if x >= 1.0:
            return PolicyDecision(placement=Placement.dram_only(),
                                  profiling_runs=1,
                                  note="fits in fast tier")
        return PolicyDecision(
            placement=Placement(dram_fraction=x, device=context.device,
                                hotness_bias=SOAR_BIAS),
            profiling_runs=1,
            note=f"critical objects pinned; x={x:.2f}",
        )
