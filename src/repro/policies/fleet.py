"""Fleet placement: CAMP-guided capacity planning (paper section 6.4).

The paper's discussion points at CAMP's models enabling "offline
capacity planning and resource management".  This module implements
that use case: given a *fleet* of workloads and a machine with fixed
fast-tier capacity, choose every workload's DRAM fraction to maximize
predicted fleet throughput.

Each workload's placement quality is summarized by its synthesized
slowdown curve (section 5), evaluated at a discrete grid of DRAM
fractions.  The assignment problem - pick one grid point per workload,
subject to the shared fast-capacity budget - is a multiple-choice
knapsack; since the per-workload value curves are monotone in capacity,
a greedy marginal-utility algorithm is near-optimal and transparent:
repeatedly grant one capacity quantum to whichever workload's predicted
throughput gains most from it.

Everything the planner consumes is DRAM-side profiling plus (for
bandwidth-bound members) one slow-tier run - the same inputs Best-shot
needs; no trial placement of the fleet ever executes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.calibration import Calibration
from ..core.classify import classify
from ..core.interleaving import InterleavingModel, synthesize
from ..uarch.interleave import Placement
from ..uarch.machine import Machine
from ..workloads.spec import WorkloadSpec

#: Capacity granularity: fraction of a workload's footprint granted
#: per planning step.
DEFAULT_QUANTUM = 0.05


@dataclass(frozen=True)
class FleetAssignment:
    """One workload's planned placement."""

    workload: str
    footprint_gib: float
    dram_fraction: float
    predicted_slowdown: float
    bandwidth_bound: bool

    @property
    def dram_gib(self) -> float:
        return self.dram_fraction * self.footprint_gib

    @property
    def predicted_throughput(self) -> float:
        """Normalized predicted throughput (1 = DRAM-only speed)."""
        return 1.0 / (1.0 + max(self.predicted_slowdown, -0.5))


@dataclass(frozen=True)
class FleetPlan:
    """The planner's output for a whole fleet."""

    assignments: Tuple[FleetAssignment, ...]
    fast_capacity_gib: float

    @property
    def dram_used_gib(self) -> float:
        return sum(a.dram_gib for a in self.assignments)

    @property
    def predicted_fleet_throughput(self) -> float:
        """Sum of normalized throughputs (weighted-speedup style)."""
        return sum(a.predicted_throughput for a in self.assignments)

    def by_workload(self) -> Dict[str, FleetAssignment]:
        return {a.workload: a for a in self.assignments}


class FleetPlanner:
    """Greedy marginal-utility capacity planner.

    Parameters
    ----------
    machine, calibration:
        Where profiling runs execute and the platform constants.
    quantum:
        Planning granularity as a footprint fraction per step.
    profiler:
        Optional ``(workload, placement) -> ProfiledRun`` override for
        the profiling runs; defaults to ``machine.profile``.  The CLI
        passes an :meth:`~repro.runtime.executor.Executor.profiler`
        here so fleet planning shares the persistent result cache.
    model_cache:
        Optional dict mapping workload name to the synthesized
        ``(model, is_bandwidth_bound)`` pair.  Passing a shared dict
        lets many :meth:`plan` calls over the same population - one
        per fleet node in a tournament - profile and synthesize each
        workload exactly once.
    """

    def __init__(self, machine: Machine, calibration: Calibration,
                 quantum: float = DEFAULT_QUANTUM, profiler=None,
                 model_cache: Optional[Dict[str, Tuple[
                     InterleavingModel, bool]]] = None):
        if not 0.0 < quantum <= 0.5:
            raise ValueError("quantum must be in (0, 0.5]")
        self.machine = machine
        self.calibration = calibration
        self.quantum = quantum
        self.profiler = profiler if profiler is not None \
            else machine.profile
        self.model_cache = model_cache

    def _model_for(self, workload: WorkloadSpec
                   ) -> Tuple[InterleavingModel, bool]:
        if self.model_cache is not None and \
                workload.name in self.model_cache:
            return self.model_cache[workload.name]
        dram_profile = self.profiler(workload, Placement.dram_only())
        decision = classify(dram_profile,
                            self.calibration.idle_latency_dram_ns)
        slow_profile = None
        if decision.is_bandwidth_bound:
            slow_profile = self.profiler(
                workload, Placement.slow_only(self.calibration.device))
        entry = (synthesize(dram_profile, self.calibration,
                            slow_profile),
                 decision.is_bandwidth_bound)
        if self.model_cache is not None:
            self.model_cache[workload.name] = entry
        return entry

    def plan(self, workloads: Sequence[WorkloadSpec],
             fast_capacity_gib: float) -> FleetPlan:
        """Plan placements for ``workloads`` under the capacity budget.

        Raises :class:`ValueError` for an empty fleet or non-positive
        capacity.  If capacity exceeds the fleet's total footprint,
        every workload simply gets its *predicted-optimal* fraction
        (which may be below 1.0 for bandwidth-bound members).
        """
        if not workloads:
            raise ValueError("fleet must not be empty")
        if fast_capacity_gib <= 0:
            raise ValueError("fast capacity must be positive")

        models: List[InterleavingModel] = []
        bandwidth_flags: List[bool] = []
        levels: List[np.ndarray] = []       # per-workload x grid
        slowdowns: List[np.ndarray] = []    # predicted S at each level
        for workload in workloads:
            model, is_bw = self._model_for(workload)
            models.append(model)
            bandwidth_flags.append(is_bw)
            grid = np.arange(0.0, 1.0 + 1e-9, self.quantum)
            levels.append(grid)
            slowdowns.append(np.array(
                [model.predict(float(x)).total for x in grid]))

        # Greedy marginal utility: start everyone at x = 0 and grant
        # quanta to the workload whose next step gains the most
        # predicted throughput per GiB.
        index = [0] * len(workloads)
        remaining = fast_capacity_gib

        def throughput(i: int, level: int) -> float:
            return 1.0 / (1.0 + max(slowdowns[i][level], -0.5))

        def gain_per_gib(i: int) -> Optional[Tuple[float, float]]:
            level = index[i]
            if level + 1 >= len(levels[i]):
                return None
            cost = self.quantum * workloads[i].footprint_gib
            if cost > remaining + 1e-9:
                return None
            gain = throughput(i, level + 1) - throughput(i, level)
            return gain / cost, cost

        heap: List[Tuple[float, int]] = []
        for i in range(len(workloads)):
            entry = gain_per_gib(i)
            if entry is not None:
                heapq.heappush(heap, (-entry[0], i))

        while heap:
            negative_gain, i = heapq.heappop(heap)
            entry = gain_per_gib(i)
            if entry is None:
                continue
            rate, cost = entry
            if -negative_gain - rate > 1e-12:
                # Stale heap entry; reinsert with the current rate.
                heapq.heappush(heap, (-rate, i))
                continue
            if rate <= 0:
                # No workload gains from more DRAM (bandwidth-bound
                # members past their optima): stop granting.
                break
            index[i] += 1
            remaining -= cost
            refreshed = gain_per_gib(i)
            if refreshed is not None:
                heapq.heappush(heap, (-refreshed[0], i))

        assignments = tuple(
            FleetAssignment(
                workload=w.name,
                footprint_gib=w.footprint_gib,
                dram_fraction=float(levels[i][index[i]]),
                predicted_slowdown=float(slowdowns[i][index[i]]),
                bandwidth_bound=bandwidth_flags[i],
            )
            for i, w in enumerate(workloads))
        return FleetPlan(assignments=assignments,
                         fast_capacity_gib=fast_capacity_gib)
