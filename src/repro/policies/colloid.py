"""Colloid and Alto: latency-equalizing reactive tiering.

**Colloid** (SOSP'24 [51]) migrates pages so that observed access
latency is equal across tiers.  The paper's section 6.2.3 dissects why
this is suboptimal under bandwidth pressure: equalizing latency pulls
pages *into* DRAM until DRAM contention raises its latency to CXL's
level - the opposite of what minimizes stalls.  (For 654.roms the paper
measures Colloid at ~168/189 ns DRAM/CXL vs Best-shot's 139/191 ns.)

We implement the decision rule faithfully: a bisection on the machine's
steady-state per-tier latencies to find the request split where they
match, plus continuous-migration overhead.  Hot pages migrate first, so
the placement carries a hotness bias.

**Alto** (OSDI'25 [38]) runs on top of Colloid but suppresses migration
during high-MLP intervals, which damps the over-migration into DRAM and
reduces migration traffic - slightly better than Colloid, still blind
to aggregate bandwidth (section 6.2.3).
"""

from __future__ import annotations

from typing import Tuple

from ..uarch.interleave import Placement
from .base import PolicyDecision, TieringContext, TieringPolicy

#: Migration/monitoring runtime overhead of the reactive loop.
COLLOID_OVERHEAD = 0.05
ALTO_OVERHEAD = 0.03

#: Hotness skew of migration-based placements (hot pages move first).
MIGRATION_BIAS = 0.25

#: Bisection iterations (latency difference is monotone in x).
_BISECT_STEPS = 12


def _latency_gap(context: TieringContext, x: float) -> Tuple[float, float]:
    """(L_dram - L_slow, achieved x) at a candidate request split."""
    placement = (Placement.dram_only() if x >= 1.0 else
                 Placement(dram_fraction=x, device=context.device,
                           hotness_bias=MIGRATION_BIAS))
    result = context.machine.run(context.workload, placement)
    slow_latency_ns = result.slow_latency_ns
    if slow_latency_ns is None:
        slow_latency_ns = context.machine.idle_latency_ns(context.device)
    return result.dram_latency_ns - slow_latency_ns, x


class Colloid(TieringPolicy):
    """Latency-equalization tiering."""

    name = "colloid"
    runtime_overhead = COLLOID_OVERHEAD

    def decide(self, context: TieringContext) -> PolicyDecision:
        cap = context.capacity_fraction
        hi = cap  # most-DRAM placement allowed
        gap_hi, _ = _latency_gap(context, hi)
        if gap_hi <= 0.0:
            # DRAM latency below CXL even with everything local: the
            # equilibrium is "all pages in DRAM (up to capacity)".
            placement = (Placement.dram_only() if hi >= 1.0 else
                         Placement(dram_fraction=hi,
                                   device=context.device,
                                   hotness_bias=MIGRATION_BIAS))
            return PolicyDecision(
                placement=placement,
                runtime_overhead=self.runtime_overhead,
                note=f"DRAM never slower; settled at x={hi:.2f}")

        # DRAM is slower than CXL at max occupancy: back off until the
        # latencies meet.
        lo = 0.0
        for _ in range(_BISECT_STEPS):
            mid = 0.5 * (lo + hi)
            gap, _ = _latency_gap(context, mid)
            if gap > 0.0:
                hi = mid
            else:
                lo = mid
        x = 0.5 * (lo + hi)
        return PolicyDecision(
            placement=Placement(dram_fraction=x, device=context.device,
                                hotness_bias=MIGRATION_BIAS),
            runtime_overhead=self.runtime_overhead,
            note=f"latency equalized at x={x:.2f}")


class Alto(Colloid):
    """Colloid with MLP-gated migration (less aggressive, cheaper).

    Alto suppresses migrations while MLP is high, so under bandwidth
    pressure it stops short of Colloid's full pull into DRAM: the
    settled split lands between Colloid's equalization point and the
    capacity-filling placement it started from, with lower overhead.
    """

    name = "alto"
    runtime_overhead = ALTO_OVERHEAD

    #: How far from Colloid's point toward the capacity fill Alto stops.
    damping = 0.5

    def decide(self, context: TieringContext) -> PolicyDecision:
        colloid_decision = super().decide(context)
        x_colloid = colloid_decision.placement.dram_fraction
        cap = context.capacity_fraction
        if x_colloid >= cap:
            return colloid_decision
        x = x_colloid + self.damping * (cap - x_colloid)
        return PolicyDecision(
            placement=Placement(dram_fraction=x, device=context.device,
                                hotness_bias=MIGRATION_BIAS),
            runtime_overhead=self.runtime_overhead,
            note=(f"MLP-gated: settled at x={x:.2f} between colloid "
                  f"{x_colloid:.2f} and capacity {cap:.2f}"))
