"""The schema-versioned fleet-tournament report (``docs/FLEET.md``).

``repro fleet --nodes N`` emits one of these; the committed
``FLEET_tournament.json`` at the repo root (like ``SLO_serve.json``)
is the pinned reference artifact CI re-generates and uploads.  The
payload ranks every policy on the fleet SLO metrics - p99 slowdown,
migration churn, stranded fast-tier capacity, weighted speedup - and
carries enough solver telemetry to audit how the numbers were made.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

#: Schema tag on every fleet payload; bump on layout changes.
FLEET_SCHEMA = "repro-fleet/1"


@dataclass(frozen=True)
class PolicyStanding:
    """One policy's fleet-level scorecard."""

    policy: str
    rank: int
    #: Percentiles of per-(node, job, phase) slowdown samples, via the
    #: seeded-reservoir recorder: p50/p99/p999/max/samples.
    slowdown: Dict[str, float]
    #: Slowdown samples represented only statistically (reservoir).
    dropped_samples: int
    #: Mean per-node weighted speedup (sum of solo/colocated cycles).
    weighted_speedup: float
    #: Total migration traffic over the schedule, GiB per node.
    migration_gib_per_node: float
    #: Phase-weighted mean fast-tier capacity left unused, GiB/node.
    stranded_gib_per_node: float
    #: Stranded GiB as a fraction of mean node capacity.
    stranded_fraction: float
    #: Summed shard-solver telemetry (shards, joint/outer iterations,
    #: nonconverged lanes, replay resolves).
    solver: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "rank": self.rank,
            "slowdown": {k: round(float(v), 6)
                         for k, v in self.slowdown.items()},
            "dropped_samples": self.dropped_samples,
            "weighted_speedup": round(self.weighted_speedup, 6),
            "migration_gib_per_node":
                round(self.migration_gib_per_node, 6),
            "stranded_gib_per_node":
                round(self.stranded_gib_per_node, 6),
            "stranded_fraction": round(self.stranded_fraction, 6),
            "solver": {k: int(v) for k, v in sorted(
                self.solver.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicyStanding":
        return cls(
            policy=str(data["policy"]),
            rank=int(data["rank"]),
            slowdown=dict(data["slowdown"]),
            dropped_samples=int(data.get("dropped_samples", 0)),
            weighted_speedup=float(data["weighted_speedup"]),
            migration_gib_per_node=float(data["migration_gib_per_node"]),
            stranded_gib_per_node=float(data["stranded_gib_per_node"]),
            stranded_fraction=float(data["stranded_fraction"]),
            solver=dict(data.get("solver", {})),
        )


@dataclass(frozen=True)
class FleetReport:
    """The committed/uploaded fleet-tournament artifact."""

    config: Dict[str, Any]
    policies: Tuple[PolicyStanding, ...]
    schema: str = FLEET_SCHEMA

    @property
    def ranking(self) -> Tuple[str, ...]:
        """Policy names, best (rank 1) first."""
        return tuple(s.policy for s in
                     sorted(self.policies, key=lambda s: s.rank))

    def standing(self, policy: str) -> PolicyStanding:
        for entry in self.policies:
            if entry.policy == policy:
                return entry
        raise KeyError(f"no standing for policy {policy!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "config": dict(self.config),
            "ranking": list(self.ranking),
            "policies": [s.to_dict() for s in self.policies],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetReport":
        if data.get("schema") != FLEET_SCHEMA:
            raise ValueError(
                f"unsupported fleet schema {data.get('schema')!r}; "
                f"expected {FLEET_SCHEMA!r}")
        return cls(
            config=dict(data["config"]),
            policies=tuple(PolicyStanding.from_dict(entry)
                           for entry in data["policies"]),
        )

    def render(self) -> str:
        """Deterministic multi-line report (what the CLI prints)."""
        config = self.config
        lines = [
            f"fleet tournament: {config.get('nodes')} nodes x "
            f"{config.get('group_size')} jobs, "
            f"schedule={config.get('schedule')} "
            f"seed={config.get('seed')} "
            f"device={config.get('device')}",
            "  rank  policy       p99 S    p50 S    w-speedup  "
            "churn GiB/node  stranded",
        ]
        for standing in sorted(self.policies, key=lambda s: s.rank):
            lines.append(
                f"  {standing.rank:>4}  "
                f"{standing.policy:<12} "
                f"{standing.slowdown.get('p99', 0.0):>7.3f}  "
                f"{standing.slowdown.get('p50', 0.0):>7.3f}  "
                f"{standing.weighted_speedup:>9.3f}  "
                f"{standing.migration_gib_per_node:>14.2f}  "
                f"{standing.stranded_fraction:>7.1%}")
        return "\n".join(lines)


def load_report(path) -> FleetReport:
    """Read a committed fleet payload back (CI checks, tests)."""
    with open(path) as handle:
        return FleetReport.from_dict(json.load(handle))
