"""Fleet population: node configurations and arrival schedules.

A *fleet* is thousands of nodes, each colocating a small group of
workloads drawn from the 265-workload evaluation population, behind a
fixed fast-tier capacity "SKU".  Demand is not constant: nodes go
active and idle through a schedule of arrival phases - the diurnal /
bursty load shapes that make tail slowdown, stranded fast capacity,
and migration churn visible only at cluster scale ("Dissecting CXL
Memory Performance at Scale", CXL-ClusterSim; see ``docs/FLEET.md``).

The phase idiom mirrors :mod:`repro.workloads.phases`: a schedule is
an ordered tuple of weighted phases, each contributing its weight
share of the simulated horizon, exactly how a
:class:`~repro.workloads.phases.PhasedWorkload` splits an instruction
budget across behavior phases.  Here the per-phase knob is *arrival
intensity* - the fraction of nodes active - instead of a per-phase
:class:`~repro.workloads.spec.WorkloadSpec`.

Everything is hash-seeded: the same ``(population, nodes, seed)``
triple always draws byte-identical fleets and activity patterns.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..workloads.spec import WorkloadSpec

#: Fast-tier capacity SKUs: fraction of a node's group footprint that
#: fits in local DRAM.  Drawn per node, like heterogeneous machine
#: generations in a real fleet.
DEFAULT_FAST_SHARES: Tuple[float, ...] = (0.35, 0.5, 0.65)

#: Workloads colocated per node by default (the paper's pairwise
#: scenario, section 6.3, scaled out).
DEFAULT_GROUP_SIZE = 2


def _fleet_draw(seed: int, tag: str, index: int, space: int) -> int:
    """Deterministic uniform draw in ``[0, space)``.

    sha256-keyed (like the load generator's mix draw) so draws are
    independent across tags/indices and identical across runs and
    platforms for the same seed.
    """
    digest = hashlib.sha256(
        f"fleet:{seed}:{tag}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % space


def _fleet_unit(seed: int, tag: str, index: int) -> float:
    """Deterministic uniform draw in ``[0, 1)``."""
    digest = hashlib.sha256(
        f"fleet:{seed}:{tag}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FleetPhase:
    """One arrival phase: a named intensity holding for ``weight``.

    ``intensity`` is the fraction of fleet nodes active during the
    phase; ``weight`` is its share of the schedule's horizon (same
    weight semantics as :class:`~repro.workloads.phases.Phase`).
    """

    name: str
    intensity: float
    weight: float

    def __post_init__(self):
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError("phase intensity must be within [0, 1]")
        if self.weight <= 0:
            raise ValueError("phase weight must be positive")


#: Named arrival schedules.  ``diurnal`` is a day: overnight trough,
#: morning ramp, sustained peak with a short full-load burst, evening
#: tail.  ``bursty`` alternates a modest baseline with short
#: full-intensity spikes.  ``flat`` pins one steady phase (fast CI
#: smoke runs).
ARRIVAL_SCHEDULES: Dict[str, Tuple[FleetPhase, ...]] = {
    "diurnal": (
        FleetPhase("night", 0.25, 2.0),
        FleetPhase("morning", 0.60, 1.0),
        FleetPhase("peak", 0.90, 2.0),
        FleetPhase("burst", 1.00, 0.5),
        FleetPhase("evening", 0.55, 1.0),
    ),
    "bursty": (
        FleetPhase("baseline", 0.40, 2.0),
        FleetPhase("spike", 1.00, 0.5),
        FleetPhase("lull", 0.30, 1.0),
        FleetPhase("spike-2", 1.00, 0.5),
    ),
    "flat": (
        FleetPhase("steady", 0.80, 1.0),
    ),
}


def schedule_weights(phases: Sequence[FleetPhase]) -> Tuple[float, ...]:
    """Normalized phase weights (sum to 1), PhasedWorkload-style."""
    total = sum(phase.weight for phase in phases)
    return tuple(phase.weight / total for phase in phases)


@dataclass(frozen=True)
class NodeConfig:
    """One fleet node: its colocated group and fast-tier capacity."""

    node_id: int
    workloads: Tuple[str, ...]
    fast_share: float
    fast_capacity_gib: float

    def __post_init__(self):
        if not self.workloads:
            raise ValueError("a node must colocate at least one workload")
        if self.fast_capacity_gib <= 0:
            raise ValueError("fast capacity must be positive")


def draw_fleet(population: Sequence[WorkloadSpec], nodes: int,
               seed: int,
               group_size: int = DEFAULT_GROUP_SIZE,
               fast_shares: Sequence[float] = DEFAULT_FAST_SHARES
               ) -> Tuple[NodeConfig, ...]:
    """Draw ``nodes`` node configurations from the population.

    Each node draws ``group_size`` distinct workloads (uniformly, with
    per-node rejection of duplicates) and one capacity SKU; its fast
    capacity is that share of the group's total footprint.
    Deterministic under ``seed``.
    """
    if nodes < 1:
        raise ValueError("need at least one node")
    if group_size < 1:
        raise ValueError("group size must be >= 1")
    if len(population) < group_size:
        raise ValueError(
            f"population of {len(population)} cannot fill groups "
            f"of {group_size}")
    if not fast_shares:
        raise ValueError("need at least one fast-capacity share")

    configs = []
    for node_id in range(nodes):
        picks: list = []
        attempt = 0
        while len(picks) < group_size:
            draw = _fleet_draw(seed, "member",
                               node_id * 64 + attempt, len(population))
            attempt += 1
            if draw not in picks:
                picks.append(draw)
        members = tuple(population[i].name for i in picks)
        share = fast_shares[_fleet_draw(seed, "sku", node_id,
                                        len(fast_shares))]
        total_gib = sum(population[i].footprint_gib for i in picks)
        configs.append(NodeConfig(
            node_id=node_id,
            workloads=members,
            fast_share=share,
            fast_capacity_gib=share * total_gib,
        ))
    return tuple(configs)


def node_active(seed: int, node_id: int, phase_index: int,
                intensity: float) -> bool:
    """Whether a node is active during one arrival phase.

    A per-(node, phase) uniform draw against the phase intensity; the
    same seed reproduces the same activity matrix.
    """
    return _fleet_unit(seed, f"active:{phase_index}",
                       node_id) < intensity
