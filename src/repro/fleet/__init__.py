"""Fleet-scale colocation tournaments (``docs/FLEET.md``).

- :mod:`~repro.fleet.population` - node draws and arrival schedules;
- :mod:`~repro.fleet.tournament` - the sharded policy tournament;
- :mod:`~repro.fleet.report` - the ``repro-fleet/1`` report artifact.
"""

from .population import (ARRIVAL_SCHEDULES, DEFAULT_FAST_SHARES,
                         DEFAULT_GROUP_SIZE, FleetPhase, NodeConfig,
                         draw_fleet, node_active, schedule_weights)
from .report import (FLEET_SCHEMA, FleetReport, PolicyStanding,
                     load_report)
from .tournament import (DEFAULT_SHARD_NODES, POLICY_HOTNESS_BIAS,
                         SHARD_JOINT_TOLERANCE, TOURNAMENT_POLICIES,
                         TournamentConfig, run_tournament)

__all__ = [
    "ARRIVAL_SCHEDULES", "DEFAULT_FAST_SHARES", "DEFAULT_GROUP_SIZE",
    "FleetPhase", "NodeConfig", "draw_fleet", "node_active",
    "schedule_weights",
    "FLEET_SCHEMA", "FleetReport", "PolicyStanding", "load_report",
    "DEFAULT_SHARD_NODES", "POLICY_HOTNESS_BIAS",
    "SHARD_JOINT_TOLERANCE", "TOURNAMENT_POLICIES",
    "TournamentConfig", "run_tournament",
]
