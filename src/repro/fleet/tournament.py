"""Fleet-scale colocation policy tournaments (``docs/FLEET.md``).

Pipeline:

1. draw the fleet (:func:`~repro.fleet.population.draw_fleet`) from
   the 265-workload evaluation population;
2. profile + synthesize each distinct workload **once** (batched and
   cached through the executor) into a shared model cache;
3. per policy, plan every node's placements analytically - Best-shot
   through :class:`~repro.policies.fleet.FleetPlanner`, the baselines
   through their section-6 placement rules;
4. shard the fleet and solve every shard's node groups in one
   pack-once joint batch
   (:meth:`~repro.uarch.machine.Machine.run_colocated_groups`),
   fanned out over the executor's worker pool;
5. score each policy on fleet SLO metrics - p99 slowdown (seeded
   reservoir percentiles), migration churn, stranded fast-tier
   capacity, weighted speedup - through the arrival schedule, and
   rank them into a :class:`~repro.fleet.report.FleetReport`.

Placements are planned from profiles; only the joint colocated runs
execute, which is the paper's whole operating model scaled out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.calibration import Calibration
from ..core.classify import classify
from ..core.interleaving import InterleavingModel, synthesize
from ..policies.caption import DEFAULT_CANDIDATES as CAPTION_CANDIDATES
from ..policies.fleet import FleetPlanner
from ..runtime.executor import Executor
from ..runtime.spec import RunSpec
from ..serve.slo import LatencyRecorder
from ..uarch.interleave import Placement
from ..uarch.machine import Machine
from ..workloads.spec import WorkloadSpec
from ..workloads.suites import evaluation_suite
from .population import (ARRIVAL_SCHEDULES, DEFAULT_GROUP_SIZE,
                         FleetPhase, NodeConfig, draw_fleet,
                         node_active, schedule_weights)
from .report import FLEET_SCHEMA, FleetReport, PolicyStanding

#: The tournament lineup, reporting every policy the paper's section 6
#: compares, scaled to fleet groups.
TOURNAMENT_POLICIES: Tuple[str, ...] = (
    "best-shot", "static", "first-touch", "caption", "nbt", "colloid")

#: Nodes solved per shard (each shard is one pack-once joint batch;
#: one executor.map item).
DEFAULT_SHARD_NODES = 250

#: Joint fixed-point tolerance for shard solves.  Looser than the
#: pairwise default (1e-6): fleet metrics aggregate thousands of
#: groups, where 1e-4 relative traffic error is far below the
#: phase-sampling noise floor.
SHARD_JOINT_TOLERANCE = 1e-4

#: Hotness bias each policy's placement carries (matches
#: ``policies/colocation.py``: reactive promoters concentrate hot
#: pages on DRAM, static striping does not).
POLICY_HOTNESS_BIAS: Dict[str, float] = {
    "best-shot": 0.0,
    "static": 0.0,
    "first-touch": 0.10,
    "caption": 0.0,
    "nbt": 0.30,
    "colloid": 0.25,
}

# -- migration-churn model (documented in docs/FLEET.md) -------------
#: First-touch pays one fault-in fill of its planned fast GiB when a
#: node first activates; the placement then persists.
FIRST_TOUCH_FILL_FRACTION = 1.0
#: Reactive policies re-promote their hot set after an idle gap, and
#: keep sampling/migrating while active.  NBT's page-table scanning
#: churns harder than Colloid's latency-gated promotion.
NBT_REACTIVATION_FRACTION = 1.0
NBT_SAMPLING_FRACTION = 0.10
COLLOID_REACTIVATION_FRACTION = 0.6
COLLOID_SAMPLING_FRACTION = 0.04


@dataclass(frozen=True)
class TournamentConfig:
    """Everything a tournament run depends on (all seeded)."""

    nodes: int = 1000
    seed: int = 2026
    device: str = "cxl-a"
    schedule: str = "diurnal"
    group_size: int = DEFAULT_GROUP_SIZE
    shard_nodes: int = DEFAULT_SHARD_NODES
    policies: Tuple[str, ...] = TOURNAMENT_POLICIES
    joint_tolerance: float = SHARD_JOINT_TOLERANCE
    #: Draw from only the first N population workloads (smoke runs).
    population_limit: Optional[int] = None

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.schedule not in ARRIVAL_SCHEDULES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; "
                f"pick one of {sorted(ARRIVAL_SCHEDULES)}")
        if self.shard_nodes < 1:
            raise ValueError("shard size must be >= 1")
        if len(self.policies) < 2:
            raise ValueError("a tournament needs >= 2 policies")
        for policy in self.policies:
            if policy not in POLICY_HOTNESS_BIAS:
                raise ValueError(
                    f"unknown tournament policy {policy!r}; pick "
                    f"from {sorted(POLICY_HOTNESS_BIAS)}")


def _solve_fleet_shard(task):
    """Pool worker: one shard's pack-once joint solve.

    Pure function of its arguments (machine, jobs, groups, tolerance);
    returns compact per-job cycles plus the solver telemetry, so a 10k
    node fleet ships floats - not RunResults - back over the pipe.
    """
    machine, jobs, groups, tolerance = task
    stats: Dict[str, object] = {}
    results = machine.run_colocated_groups(
        jobs, groups, tolerance=tolerance, stats=stats)
    return ([result.cycles for result in results],
            {"joint_iterations": int(stats["joint_iterations"]),
             "outer_iterations": int(stats["outer_iterations"]),
             "nonconverged": int(stats["nonconverged"]),
             "replay_resolves": int(stats.get("replay_resolves", 0)),
             "joint_converged": bool(stats["joint_converged"])})


def _build_models(machine: Machine, calibration: Calibration,
                  executor: Executor,
                  specs: Sequence[WorkloadSpec]
                  ) -> Dict[str, Tuple[InterleavingModel, bool]]:
    """Profile + synthesize every distinct workload once, batched."""
    dram_profiles = executor.profile(
        [RunSpec.from_machine(machine, spec, Placement.dram_only())
         for spec in specs], label="fleet:dram")
    flags = [classify(profile,
                      calibration.idle_latency_dram_ns
                      ).is_bandwidth_bound
             for profile in dram_profiles]
    bandwidth_bound = [spec for spec, is_bw in zip(specs, flags)
                       if is_bw]
    slow_profiles = {}
    if bandwidth_bound:
        profiled = executor.profile(
            [RunSpec.from_machine(
                machine, spec, Placement.slow_only(calibration.device))
             for spec in bandwidth_bound], label="fleet:slow")
        slow_profiles = {spec.name: profile for spec, profile
                         in zip(bandwidth_bound, profiled)}
    models: Dict[str, Tuple[InterleavingModel, bool]] = {}
    for spec, dram_profile, is_bw in zip(specs, dram_profiles, flags):
        models[spec.name] = (
            synthesize(dram_profile, calibration,
                       slow_profiles.get(spec.name)),
            is_bw)
    return models


def _node_fractions(policy: str, specs: Sequence[WorkloadSpec],
                    capacity_gib: float,
                    models: Dict[str, Tuple[InterleavingModel, bool]],
                    planner: FleetPlanner) -> List[float]:
    """Per-workload DRAM fractions under one policy's placement rule."""
    total_gib = sum(spec.footprint_gib for spec in specs)
    if policy == "best-shot":
        plan = planner.plan(specs, capacity_gib)
        return [assignment.dram_fraction
                for assignment in plan.assignments]
    if policy == "static":
        # 1:1 weighted interleave, scaled down only when even a 50:50
        # split of every footprint exceeds the node's fast tier.
        return [min(0.5, capacity_gib / total_gib)] * len(specs)
    if policy == "first-touch":
        fractions = []
        remaining = capacity_gib
        for spec in specs:
            x = min(1.0, remaining / spec.footprint_gib)
            remaining = max(0.0, remaining - x * spec.footprint_gib)
            fractions.append(x)
        return fractions
    if policy == "caption":
        # Coarse per-workload ratio probe (policies/caption.py's
        # candidate grid) on each member's own predicted curve, then a
        # proportional scale-down if the picks overcommit the node.
        fractions = []
        for spec in specs:
            model, _ = models[spec.name]
            cap = min(1.0, capacity_gib / spec.footprint_gib)
            candidates = [min(ratio, cap)
                          for ratio in CAPTION_CANDIDATES]
            fractions.append(min(
                candidates,
                key=lambda x: model.predict(float(x)).total))
        planned_gib = sum(x * spec.footprint_gib
                          for x, spec in zip(fractions, specs))
        if planned_gib > capacity_gib:
            fractions = [x * capacity_gib / planned_gib
                         for x in fractions]
        return fractions
    if policy in ("nbt", "colloid"):
        # Reactive promotion converges to a proportional share of the
        # fast tier (policies/colocation.py's approximation).
        share = min(1.0, capacity_gib / total_gib)
        return [share] * len(specs)
    raise ValueError(f"unknown tournament policy {policy!r}")


def _placement(x: float, device: str, bias: float) -> Placement:
    if x >= 1.0:
        return Placement.dram_only()
    if x <= 0.0:
        return Placement.slow_only(device)
    return Placement(dram_fraction=x, device=device, hotness_bias=bias)


def _churn_gib(policy: str, fast_gib: float,
               activity: Sequence[bool]) -> float:
    """Migration traffic one node generates over the schedule (GiB).

    Planned placements (best-shot, static, caption) pin pages and
    never migrate.  First-touch faults its fast share in once.
    Reactive policies (nbt, colloid) re-promote their hot set on every
    idle-to-active transition and keep sampling while active.
    """
    if policy in ("best-shot", "static", "caption"):
        return 0.0
    if policy == "first-touch":
        return (FIRST_TOUCH_FILL_FRACTION * fast_gib
                if any(activity) else 0.0)
    if policy == "nbt":
        react, sample = (NBT_REACTIVATION_FRACTION,
                         NBT_SAMPLING_FRACTION)
    elif policy == "colloid":
        react, sample = (COLLOID_REACTIVATION_FRACTION,
                         COLLOID_SAMPLING_FRACTION)
    else:
        raise ValueError(f"unknown tournament policy {policy!r}")
    churn = 0.0
    previously_active = False
    for active in activity:
        if active and not previously_active:
            churn += react * fast_gib
        if active:
            churn += sample * fast_gib
        previously_active = active
    return churn


@dataclass
class _PolicyAccumulator:
    recorder: LatencyRecorder
    speedups: List[float] = field(default_factory=list)
    churn_gib: float = 0.0
    stranded_gib: float = 0.0
    solver: Dict[str, int] = field(default_factory=lambda: {
        "shards": 0, "joint_iterations": 0, "outer_iterations": 0,
        "nonconverged": 0, "replay_resolves": 0,
        "joint_nonconverged_shards": 0})


def run_tournament(machine: Machine, calibration: Calibration,
                   executor: Executor,
                   config: TournamentConfig) -> FleetReport:
    """Run the full tournament and return the ranked report."""
    population = list(evaluation_suite(seed=2026))
    if config.population_limit is not None:
        population = population[:config.population_limit]
    fleet = draw_fleet(population, config.nodes, config.seed,
                       group_size=config.group_size)
    by_name = {spec.name: spec for spec in population}
    used_names = sorted({name for node in fleet
                         for name in node.workloads})
    used_specs = [by_name[name] for name in used_names]

    models = _build_models(machine, calibration, executor, used_specs)
    planner = FleetPlanner(machine, calibration,
                           profiler=executor.profiler(machine),
                           model_cache=models)

    # Solo DRAM-only baselines (slowdown denominators), one batched
    # cached pass over the distinct members.
    solo_results = executor.run(
        [RunSpec.from_machine(machine, spec, Placement.dram_only())
         for spec in used_specs], label="fleet:solo")
    solo_cycles = {spec.name: result.cycles
                   for spec, result in zip(used_specs, solo_results)}

    phases: Tuple[FleetPhase, ...] = ARRIVAL_SCHEDULES[config.schedule]
    weights = schedule_weights(phases)
    activity: List[Tuple[bool, ...]] = [
        tuple(node_active(config.seed, node.node_id, phase_index,
                          phase.intensity)
              for phase_index, phase in enumerate(phases))
        for node in fleet]

    mean_capacity_gib = (sum(node.fast_capacity_gib for node in fleet)
                         / len(fleet))
    standings: List[PolicyStanding] = []
    for policy in config.policies:
        bias = POLICY_HOTNESS_BIAS[policy]
        accumulator = _PolicyAccumulator(
            recorder=LatencyRecorder(seed=config.seed))

        node_jobs: List[List[Tuple[WorkloadSpec, Placement]]] = []
        node_fast_gib: List[float] = []
        for node in fleet:
            specs = [by_name[name] for name in node.workloads]
            fractions = _node_fractions(
                policy, specs, node.fast_capacity_gib, models, planner)
            node_jobs.append([
                (spec, _placement(x, config.device, bias))
                for spec, x in zip(specs, fractions)])
            node_fast_gib.append(sum(
                x * spec.footprint_gib
                for spec, x in zip(specs, fractions)))

        # Shard and solve: each task is one pack-once joint batch.
        tasks = []
        for start in range(0, len(fleet), config.shard_nodes):
            shard = range(start, min(start + config.shard_nodes,
                                     len(fleet)))
            jobs: List[Tuple[WorkloadSpec, Placement]] = []
            groups: List[Tuple[int, ...]] = []
            for node_index in shard:
                base = len(jobs)
                jobs.extend(node_jobs[node_index])
                groups.append(tuple(
                    range(base, base + len(node_jobs[node_index]))))
            tasks.append((machine, jobs, groups,
                          config.joint_tolerance))
        shard_outputs = executor.map(_solve_fleet_shard, tasks,
                                     label=f"fleet:{policy}")

        for _, solver_stats in shard_outputs:
            accumulator.solver["shards"] += 1
            for key in ("joint_iterations", "outer_iterations",
                        "nonconverged", "replay_resolves"):
                accumulator.solver[key] += int(solver_stats[key])
            if not solver_stats["joint_converged"]:
                accumulator.solver["joint_nonconverged_shards"] += 1
        flat_cycles = [cycles for shard_cycles, _ in shard_outputs
                       for cycles in shard_cycles]
        cursor = 0
        per_node_cycles: List[List[float]] = []
        for node_index in range(len(fleet)):
            width = len(node_jobs[node_index])
            per_node_cycles.append(flat_cycles[cursor:cursor + width])
            cursor += width

        # Score through the arrival schedule.
        for node_index, node in enumerate(fleet):
            names = node.workloads
            cycles = per_node_cycles[node_index]
            slowdowns = [cycle / solo_cycles[name] - 1.0
                         for name, cycle in zip(names, cycles)]
            accumulator.speedups.append(sum(
                solo_cycles[name] / cycle
                for name, cycle in zip(names, cycles)))
            accumulator.churn_gib += _churn_gib(
                policy, node_fast_gib[node_index],
                activity[node_index])
            for phase_index, weight in enumerate(weights):
                if activity[node_index][phase_index]:
                    for value in slowdowns:
                        accumulator.recorder.record("ok", value)
                    stranded = max(0.0, node.fast_capacity_gib -
                                   node_fast_gib[node_index])
                else:
                    stranded = node.fast_capacity_gib
                accumulator.stranded_gib += weight * stranded

        summary = accumulator.recorder.latency_summary_ms()
        standings.append(PolicyStanding(
            policy=policy,
            rank=0,  # assigned below
            slowdown=summary,
            dropped_samples=accumulator.recorder.dropped_samples,
            weighted_speedup=(sum(accumulator.speedups)
                              / len(accumulator.speedups)),
            migration_gib_per_node=(accumulator.churn_gib
                                    / len(fleet)),
            stranded_gib_per_node=(accumulator.stranded_gib
                                   / len(fleet)),
            stranded_fraction=(accumulator.stranded_gib / len(fleet)
                               / mean_capacity_gib),
            solver=dict(accumulator.solver),
        ))

    ordered = sorted(
        standings,
        key=lambda s: (s.slowdown.get("p99", 0.0),
                       s.migration_gib_per_node, s.policy))
    ranked = tuple(
        PolicyStanding(
            policy=s.policy, rank=rank, slowdown=s.slowdown,
            dropped_samples=s.dropped_samples,
            weighted_speedup=s.weighted_speedup,
            migration_gib_per_node=s.migration_gib_per_node,
            stranded_gib_per_node=s.stranded_gib_per_node,
            stranded_fraction=s.stranded_fraction, solver=s.solver)
        for rank, s in enumerate(ordered, start=1))

    return FleetReport(
        config={
            "schema_origin": FLEET_SCHEMA,
            "nodes": config.nodes,
            "seed": config.seed,
            "platform": machine.platform.name,
            "device": config.device,
            "schedule": config.schedule,
            "group_size": config.group_size,
            "shard_nodes": config.shard_nodes,
            "joint_tolerance": config.joint_tolerance,
            "policies": list(config.policies),
            "population": len(population),
            "distinct_workloads": len(used_specs),
        },
        policies=ranked,
    )
