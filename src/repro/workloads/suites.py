"""Workload suites: named paper workloads and the 265-strong population.

Two layers:

- **Named workloads** - hand-characterized stand-ins for the programs
  the paper calls out by name (603.bwaves, 654.roms, pr-kron, gpt-2,
  llama, rangeQuery2d, ...).  Their parameters encode the behaviour the
  paper attributes to them: bwaves/fotonik3d/roms are bandwidth-bound
  streamers, pr-kron is the hyper-MLP overestimation outlier, llama the
  bursty-MLP outlier, pr-twitter the tail-latency underestimation case,
  gpt-2 the low-MPKI/high-slowdown colocation example, tc-road its
  high-MPKI/low-slowdown counterpart.

- **The evaluation population** - :func:`evaluation_suite` returns
  exactly 265 workloads (the named ones plus seeded family samples),
  mirroring the paper's evaluation corpus size and behavioural spread.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .generator import (FAMILIES, generate_population,
                        near_buffer_from_footprint, typical_mlp_headroom,
                        typical_near_buffer)
from .spec import WorkloadSpec

#: Size of the paper's evaluation corpus.
EVALUATION_SUITE_SIZE = 265


def _named(name: str, suite: str, **fields) -> WorkloadSpec:
    """Build a named workload, defaulting correlated fields sensibly."""
    mlp = fields.get("mlp", 4.0)
    footprint = fields.get("footprint_gib", 8.0)
    same_line = fields.get("same_line_ratio", 0.35)
    fields.setdefault("mlp_headroom", typical_mlp_headroom(mlp))
    fields.setdefault("near_buffer_hit",
                      typical_near_buffer(footprint, same_line))
    return WorkloadSpec(name=name, suite=suite, **fields)


def _spec_stream(name: str, **overrides) -> WorkloadSpec:
    """A SPEC CPU 2017 bandwidth-bound streaming archetype."""
    fields = dict(
        base_cpi=0.45, loads_per_ki=320.0, stores_per_ki=120.0,
        footprint_gib=12.0, l1_hit=0.90, l2_hit=0.3, l3_hit_small_llc=0.06,
        llc_sensitivity=0.08, mlp=8.0, stall_exposure=0.55,
        same_line_ratio=0.60, pf_friend=0.88, pf_l1_share=0.35,
        pf_lookahead_ns=80.0, store_miss_ratio=0.08, store_burst=0.3,
        tags=("streaming", "bandwidth-bound"),
    )
    fields.update(overrides)
    return _named(name, "spec2017", **fields)


def _spec_pointer(name: str, **overrides) -> WorkloadSpec:
    """A SPEC CPU 2017 latency-sensitive pointer archetype."""
    fields = dict(
        base_cpi=0.8, loads_per_ki=340.0, stores_per_ki=60.0,
        footprint_gib=16.0, l1_hit=0.82, l2_hit=0.25,
        l3_hit_small_llc=0.15, llc_sensitivity=0.35, mlp=1.8,
        stall_exposure=0.68, same_line_ratio=0.05, pf_friend=0.12,
        pf_lookahead_ns=70.0, store_miss_ratio=0.04,
        tags=("latency-sensitive", "pointer-chase"),
    )
    fields.update(overrides)
    return _named(name, "spec2017", **fields)


def _gap(name: str, **overrides) -> WorkloadSpec:
    """A GAPBS graph-kernel archetype."""
    fields = dict(
        base_cpi=0.65, loads_per_ki=380.0, stores_per_ki=70.0,
        footprint_gib=24.0, l1_hit=0.82, l2_hit=0.2,
        l3_hit_small_llc=0.12, llc_sensitivity=0.4, mlp=3.5,
        stall_exposure=0.65, same_line_ratio=0.1, pf_friend=0.18,
        pf_lookahead_ns=75.0, store_miss_ratio=0.05,
        tail_sensitivity=0.25, tags=("graph", "irregular"),
    )
    fields.update(overrides)
    return _named(name, "gapbs", **fields)


def _ai(name: str, **overrides) -> WorkloadSpec:
    """An AI-inference archetype (bursty MLP)."""
    fields = dict(
        base_cpi=0.45, loads_per_ki=300.0, stores_per_ki=80.0,
        footprint_gib=14.0, l1_hit=0.92, l2_hit=0.45,
        l3_hit_small_llc=0.2, llc_sensitivity=0.35, mlp=6.0,
        stall_exposure=0.58, same_line_ratio=0.55, pf_friend=0.65,
        pf_lookahead_ns=115.0, store_miss_ratio=0.06, burstiness=0.6,
        tags=("ai", "bursty"),
    )
    fields.update(overrides)
    return _named(name, "ai", **fields)


def named_workloads() -> Dict[str, WorkloadSpec]:
    """The hand-characterized paper workloads, keyed by name."""
    workloads = [
        # -- SPEC CPU 2017: bandwidth-bound streamers --------------------
        _spec_stream("603.bwaves", mlp=10.5, loads_per_ki=330.0,
                     footprint_gib=11.0),
        _spec_stream("649.fotonik3d", mlp=10.0, stores_per_ki=140.0,
                     store_miss_ratio=0.14, footprint_gib=9.5),
        _spec_stream("654.roms", mlp=10.0, loads_per_ki=300.0,
                     stores_per_ki=130.0, footprint_gib=10.5),
        _spec_stream("619.lbm", mlp=11.0, stores_per_ki=160.0,
                     store_miss_ratio=0.15, footprint_gib=6.5),
        _spec_stream("621.wrf", mlp=9.0, pf_friend=0.8,
                     footprint_gib=8.0),
        _spec_stream("628.pop2", mlp=9.0, loads_per_ki=280.0,
                     footprint_gib=7.0),
        _spec_stream("607.cactuBSSN", mlp=9.5, base_cpi=0.5,
                     footprint_gib=13.0),
        _spec_stream("622.wrf-s", mlp=8.5, pf_friend=0.75,
                     footprint_gib=6.0),
        # -- SPEC CPU 2017: latency-sensitive / pointer ------------------
        _spec_pointer("605.mcf", mlp=2.2, footprint_gib=20.0),
        _spec_pointer("620.omnetpp", mlp=1.6, footprint_gib=9.0,
                      l3_hit_small_llc=0.25, llc_sensitivity=0.5),
        _spec_pointer("623.xalancbmk", mlp=1.9, footprint_gib=6.0,
                      l1_hit=0.88),
        _spec_pointer("602.gcc", mlp=2.4, footprint_gib=5.0,
                      l3_hit_small_llc=0.3, base_cpi=0.7),
        _named("557.xz", "spec2017", base_cpi=0.75, loads_per_ki=260.0,
               stores_per_ki=90.0, footprint_gib=8.0, l1_hit=0.9,
               l2_hit=0.45, l3_hit_small_llc=0.3, llc_sensitivity=0.45,
               mlp=2.8, stall_exposure=0.62, same_line_ratio=0.2,
               pf_friend=0.3, pf_lookahead_ns=85.0, store_miss_ratio=0.06,
               hotness_skew=0.3, tags=("latency-sensitive",)),
        _named("625.x264", "spec2017", base_cpi=0.45, loads_per_ki=200.0,
               stores_per_ki=80.0, footprint_gib=2.0, l1_hit=0.97,
               l2_hit=0.8, l3_hit_small_llc=0.7, llc_sensitivity=0.5,
               mlp=3.5, same_line_ratio=0.4, pf_friend=0.6,
               tags=("compute-bound",)),
        _named("500.perlbench", "spec2017", base_cpi=0.55,
               loads_per_ki=240.0, stores_per_ki=110.0, footprint_gib=1.5,
               l1_hit=0.98, l2_hit=0.85, l3_hit_small_llc=0.8,
               llc_sensitivity=0.6, mlp=2.5, same_line_ratio=0.3,
               pf_friend=0.5, tags=("compute-bound",)),
        # -- GAPBS graph kernels ------------------------------------------
        # pr-kron: the hyper-parallelism outlier.  Frontier supersteps
        # make its instantaneous concurrency exceed the average (the
        # paper: overlap "scales non-linearly in ways that simple
        # average MLP metrics do not fully capture"), so CAMP
        # overestimates its slowdown.
        _gap("pr-kron", mlp=11.0, stall_exposure=0.6, pf_friend=0.3,
             same_line_ratio=0.3, tail_sensitivity=0.0,
             burstiness=0.5, mlp_headroom=0.2,
             footprint_gib=32.0, tags=("graph", "hyper-mlp")),
        _gap("pr-twitter", mlp=4.5, tail_sensitivity=0.6,
             footprint_gib=28.0, tags=("graph", "irregular", "tail")),
        _gap("pr-road", mlp=2.5, tail_sensitivity=0.15,
             footprint_gib=12.0),
        _gap("bfs-kron", mlp=5.0, loads_per_ki=360.0,
             footprint_gib=30.0),
        _gap("bfs-twitter", mlp=4.0, tail_sensitivity=0.45,
             footprint_gib=26.0),
        _gap("cc-kron", mlp=4.8, footprint_gib=30.0),
        _gap("cc-twitter", mlp=3.8, tail_sensitivity=0.4,
             footprint_gib=26.0),
        _gap("sssp-kron", mlp=3.2, footprint_gib=34.0),
        _gap("bc-kron", mlp=4.2, footprint_gib=36.0),
        # tc-road: high MPKI but latency tolerant (high MLP growth,
        # strong buffering) - the colocation counter-example.
        _gap("tc-road", mlp=10.0, l1_hit=0.8, l3_hit_small_llc=0.08,
             loads_per_ki=390.0, footprint_gib=2.5,
             stall_exposure=0.36, tail_sensitivity=0.05,
             mlp_headroom=0.45, near_buffer_hit=0.45, base_cpi=1.0,
             tags=("graph", "latency-tolerant", "high-mpki")),
        _gap("tc-kron", mlp=6.0, footprint_gib=30.0,
             tail_sensitivity=0.2, tags=("graph", "phased")),
        # -- PBBS ----------------------------------------------------------
        _named("rangeQuery2d", "pbbs", base_cpi=0.7, loads_per_ki=330.0,
               stores_per_ki=50.0, footprint_gib=18.0, l1_hit=0.85,
               l2_hit=0.3, l3_hit_small_llc=0.18, llc_sensitivity=0.35,
               mlp=4.2, mlp_headroom=0.25, near_buffer_hit=0.22,
               stall_exposure=0.52, same_line_ratio=0.08,
               pf_friend=0.15, pf_lookahead_ns=70.0,
               store_miss_ratio=0.03,
               tags=("latency-sensitive", "pointer-chase")),
        _named("integerSort", "pbbs", base_cpi=0.5, loads_per_ki=280.0,
               stores_per_ki=180.0, footprint_gib=8.0, l1_hit=0.9,
               l2_hit=0.35, l3_hit_small_llc=0.1, mlp=5.5,
               same_line_ratio=0.5, pf_friend=0.6,
               store_miss_ratio=0.2, store_burst=0.5,
               tags=("store-heavy",)),
        _named("suffixArray", "pbbs", base_cpi=0.6, loads_per_ki=310.0,
               stores_per_ki=90.0, footprint_gib=12.0, l1_hit=0.86,
               l2_hit=0.3, l3_hit_small_llc=0.15, mlp=3.0,
               same_line_ratio=0.2, pf_friend=0.35),
        # -- HPC / simulation ----------------------------------------------
        _named("xsbench", "xsbench", base_cpi=0.7, loads_per_ki=350.0,
               stores_per_ki=40.0, footprint_gib=22.0, l1_hit=0.8,
               l2_hit=0.2, l3_hit_small_llc=0.1, llc_sensitivity=0.2,
               mlp=7.5, mlp_headroom=0.35, near_buffer_hit=0.25,
               stall_exposure=0.5, same_line_ratio=0.1,
               pf_friend=0.1, pf_lookahead_ns=65.0,
               tags=("random-access", "latency-tolerant")),
        # -- Cloud ----------------------------------------------------------
        _named("redis-ycsb", "cloud", base_cpi=0.6, loads_per_ki=260.0,
               stores_per_ki=140.0, footprint_gib=24.0, l1_hit=0.95,
               l2_hit=0.55, l3_hit_small_llc=0.3, llc_sensitivity=0.5,
               mlp=1.05, mlp_headroom=0.0, near_buffer_hit=0.02,
               stall_exposure=0.75, same_line_ratio=0.1, pf_friend=0.1,
               store_miss_ratio=0.12, store_burst=0.5,
               tags=("cloud", "latency-sensitive", "low-mpki")),
        _named("spark-terasort", "cloud", base_cpi=0.55, threads=2,
               loads_per_ki=260.0, stores_per_ki=130.0,
               footprint_gib=40.0, l1_hit=0.9, l2_hit=0.4,
               l3_hit_small_llc=0.15, mlp=5.0, same_line_ratio=0.5,
               pf_friend=0.6, store_miss_ratio=0.18, store_burst=0.4,
               tags=("cloud", "streaming")),
        _named("voltdb-tpcc", "cloud", base_cpi=0.7, threads=2,
               loads_per_ki=230.0, stores_per_ki=190.0,
               footprint_gib=16.0, l1_hit=0.94, l2_hit=0.55,
               l3_hit_small_llc=0.4, llc_sensitivity=0.55, mlp=2.2,
               same_line_ratio=0.2, pf_friend=0.25,
               store_miss_ratio=0.15, store_burst=0.65,
               tags=("cloud", "store-heavy")),
        # -- AI -------------------------------------------------------------
        _ai("llama-7b", mlp=7.0, burstiness=0.75, footprint_gib=26.0,
            tags=("ai", "bursty", "bandwidth-bound")),
        _ai("llama-13b", mlp=7.5, burstiness=0.7, footprint_gib=48.0,
            loads_per_ki=330.0, tags=("ai", "bursty", "bandwidth-bound")),
        # gpt-2 token generation: low MPKI (warm caches) but serialized
        # memory dependencies -> high slowdown; the colocation example.
        _ai("gpt-2", mlp=1.6, burstiness=0.2, footprint_gib=4.0,
            l1_hit=0.96, l2_hit=0.75, l3_hit_small_llc=0.35,
            llc_sensitivity=0.3, loads_per_ki=240.0,
            stall_exposure=0.7, same_line_ratio=0.15, pf_friend=0.2,
            near_buffer_hit=0.05, mlp_headroom=0.0,
            tags=("ai", "latency-sensitive", "low-mpki")),
        _ai("dlrm", mlp=4.0, burstiness=0.4, footprint_gib=40.0,
            l1_hit=0.85, l2_hit=0.3, l3_hit_small_llc=0.12,
            loads_per_ki=360.0, pf_friend=0.25, same_line_ratio=0.2,
            tags=("ai", "random-access")),
        _ai("wmt20", mlp=8.0, burstiness=0.5, footprint_gib=18.0,
            loads_per_ki=340.0, stores_per_ki=110.0, pf_friend=0.8,
            same_line_ratio=0.65, store_miss_ratio=0.12,
            tags=("ai", "bandwidth-bound")),
        _ai("resnet50", mlp=6.5, burstiness=0.45, footprint_gib=6.0,
            l1_hit=0.95, l2_hit=0.6, l3_hit_small_llc=0.4,
            tags=("ai",)),
    ]
    return {workload.name: workload for workload in workloads}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a named paper workload."""
    try:
        return named_workloads()[name]
    except KeyError:
        raise KeyError(f"unknown named workload {name!r}") from None


#: Family mix for the generated remainder of the evaluation population.
_POPULATION_MIX: Dict[str, int] = {
    "pointer": 36,
    "hpc-stream": 35,
    "graph": 36,
    "cloud": 25,
    "ai": 24,
    "compute": 18,
    "storeheavy": 20,
    "serialized-warm": 14,
    "mixed": 18,
}


def evaluation_suite(seed: int = 2026) -> List[WorkloadSpec]:
    """The 265-workload evaluation population (named + generated).

    Deterministic for a given seed; the default seed is the one used
    throughout the benchmarks and EXPERIMENTS.md.
    """
    named = list(named_workloads().values())
    generated = generate_population(_POPULATION_MIX, seed=seed)
    suite = named + generated
    if len(suite) != EVALUATION_SUITE_SIZE:
        raise AssertionError(
            f"evaluation suite size drifted: {len(suite)} != "
            f"{EVALUATION_SUITE_SIZE}; adjust _POPULATION_MIX")
    return suite


def bandwidth_bound_eight() -> List[WorkloadSpec]:
    """The eight bandwidth-bound workloads of the Best-shot evaluation
    (Fig. 15): SPEC CPU 2017 streamers plus Llama, at 10 threads (the
    full SKX core count, as the paper's bandwidth-bound experiments)."""
    names = ["603.bwaves", "649.fotonik3d", "654.roms", "619.lbm",
             "621.wrf", "628.pop2", "607.cactuBSSN", "llama-13b"]
    return [get_workload(name).with_threads(10) for name in names]


def bandwidth_bound_twenty() -> List[WorkloadSpec]:
    """The twenty bandwidth-bound workloads of the interleaving-model
    evaluation (Fig. 14): thread-count variants of the SPEC streamers
    and Llama."""
    thread_variants = {
        "603.bwaves": (4, 8, 10),
        "649.fotonik3d": (4, 8),
        "654.roms": (4, 8),
        "619.lbm": (4, 8),
        "621.wrf": (4, 8),
        "628.pop2": (4, 8),
        "607.cactuBSSN": (4, 8),
        "622.wrf-s": (8,),
        "llama-7b": (4, 8),
        "llama-13b": (8,),
        "wmt20": (8,),
    }
    workloads: List[WorkloadSpec] = []
    for name in sorted(thread_variants):
        for threads in thread_variants[name]:
            spec = get_workload(name).with_threads(threads)
            workloads.append(spec.evolved(
                name=f"{name}-{threads}t"))
    if len(workloads) != 20:
        raise AssertionError(
            f"expected 20 bandwidth-bound variants, got {len(workloads)}")
    return workloads


def colocation_pairs() -> List[Sequence[WorkloadSpec]]:
    """The three latency-bound pairs where CAMP and MPKI disagree
    (Fig. 16a/b)."""
    return [
        (get_workload("gpt-2"), get_workload("tc-road")),
        (get_workload("605.mcf"), get_workload("xsbench")),
        (get_workload("rangeQuery2d"), get_workload("redis-ycsb")),
    ]
