"""Phased (time-varying) workloads for dynamic prediction (Fig. 8).

Real programs move through phases with different memory behaviour; the
paper shows CAMP's per-window predictions track measured slowdown over
time for ``tc-kron`` (triangle counting alternates between build and
count phases with very different access patterns).

A :class:`PhasedWorkload` is an ordered sequence of
(:class:`~repro.workloads.spec.WorkloadSpec`, duration-weight) windows.
Each window is executed and profiled independently - exactly how a
per-second perf sampling loop sees a phased program - and the aggregate
behaves like the weighted union of its windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .spec import WorkloadSpec
from .suites import get_workload


@dataclass(frozen=True)
class Phase:
    """One execution phase: a behaviour plus its share of instructions."""

    spec: WorkloadSpec
    weight: float

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("phase weight must be positive")


@dataclass(frozen=True)
class PhasedWorkload:
    """A workload that moves through behavioural phases over time."""

    name: str
    phases: Tuple[Phase, ...]

    def __post_init__(self):
        if not self.phases:
            raise ValueError("a phased workload needs at least one phase")

    @property
    def total_weight(self) -> float:
        return sum(phase.weight for phase in self.phases)

    def windows(self, total_instructions: float = 2e9
                ) -> List[WorkloadSpec]:
        """Per-phase WorkloadSpecs with instructions split by weight.

        Each returned spec carries a ``-p<i>`` suffix so profiling
        windows stay distinguishable in reports.
        """
        total = self.total_weight
        specs: List[WorkloadSpec] = []
        for index, phase in enumerate(self.phases):
            share = phase.weight / total
            specs.append(phase.spec.evolved(
                name=f"{self.name}-p{index}",
                instructions=total_instructions * share))
        return specs


def tc_kron_phased(cycles: int = 3) -> PhasedWorkload:
    """The paper's Fig. 8 workload: tc-kron's alternating phases.

    Triangle counting alternates between a neighbourhood-intersection
    phase (bandwidth-hungry, prefetch-friendly scans) and an irregular
    lookup phase (latency-sensitive, low MLP).  ``cycles`` repetitions
    produce the oscillating slowdown trace of the figure.
    """
    base = get_workload("tc-kron")
    scan = base.evolved(
        name="tc-kron-scan", mlp=7.0, mlp_headroom=0.18,
        same_line_ratio=0.55, pf_friend=0.7, pf_lookahead_ns=125.0,
        l1_hit=0.88, stall_exposure=0.55)
    probe = base.evolved(
        name="tc-kron-probe", mlp=2.2, mlp_headroom=0.03,
        same_line_ratio=0.05, pf_friend=0.1, pf_lookahead_ns=70.0,
        l1_hit=0.8, stall_exposure=0.68)
    ramp = base.evolved(
        name="tc-kron-ramp", mlp=4.0, mlp_headroom=0.08,
        same_line_ratio=0.3, pf_friend=0.4, stall_exposure=0.62)
    phases: List[Phase] = []
    for _ in range(max(1, cycles)):
        phases.append(Phase(scan, 2.0))
        phases.append(Phase(ramp, 1.0))
        phases.append(Phase(probe, 2.0))
    return PhasedWorkload(name="tc-kron", phases=tuple(phases))
