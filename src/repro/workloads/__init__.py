"""Workload population: characterizations, suites, and microbenchmarks.

Replaces the paper's 265 real programs with a parametric population
covering the same behavioural axes (see ``DESIGN.md``).  Public surface:

- :class:`~repro.workloads.spec.WorkloadSpec` - one workload;
- :func:`~repro.workloads.suites.evaluation_suite` - the 265-workload
  population used throughout the evaluation;
- :mod:`~repro.workloads.microbench` - the calibration microbenchmarks
  (pointer chasing, sequential reads, strided access, memset);
- :mod:`~repro.workloads.phases` - phased workloads for time-series
  prediction (Fig. 8).
"""

from .generator import (FAMILIES, Family, Range, generate_population,
                        near_buffer_from_footprint, typical_mlp_headroom,
                        typical_near_buffer)
from .microbench import (calibration_suite, memset, pointer_chase,
                         sequential_read, strided_access)
from .phases import Phase, PhasedWorkload, tc_kron_phased
from .spec import WorkloadSpec
from .suites import (EVALUATION_SUITE_SIZE, bandwidth_bound_eight,
                     bandwidth_bound_twenty, colocation_pairs,
                     evaluation_suite, get_workload, named_workloads)

__all__ = [
    "FAMILIES", "Family", "Range", "generate_population",
    "near_buffer_from_footprint", "typical_mlp_headroom",
    "typical_near_buffer",
    "calibration_suite", "memset", "pointer_chase", "sequential_read",
    "strided_access", "Phase", "PhasedWorkload", "tc_kron_phased",
    "WorkloadSpec", "EVALUATION_SUITE_SIZE", "bandwidth_bound_eight",
    "bandwidth_bound_twenty", "colocation_pairs", "evaluation_suite",
    "get_workload", "named_workloads",
]
