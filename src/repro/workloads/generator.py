"""Seeded synthetic workload generation.

Builds the parametric population that stands in for the paper's 265 real
programs.  Each *family* (pointer-chasing, streaming HPC, graph
analytics, cloud serving, AI inference, compute-bound, ...) is a set of
parameter distributions over :class:`~repro.workloads.spec.WorkloadSpec`
fields, sampled with a deterministic per-family RNG so every run of the
suite sees the identical population.

Two cross-field correlations are load-bearing - they are the physical
regularities CAMP's predictors exploit, and the paper measures them on
real hardware:

- :func:`typical_mlp_headroom` - how much a workload's MLP can grow
  under added latency increases with its intrinsic MLP (Fig. 4c/e/f:
  serialized pointer chains cannot widen; parallel access streams keep
  more requests in flight as each one pends longer).
- :func:`near_buffer_from_footprint` - small-footprint workloads hit
  uncore/memory-controller buffers more often, lowering their observed
  baseline latency and their latency growth on slow tiers (Fig. 4d).

The generator applies bounded noise around both correlations so they are
trends, not identities - CAMP has to fit them, as on real machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .spec import WorkloadSpec


def typical_mlp_headroom(mlp: float) -> float:
    """Central MLP-growth headroom for a workload of intrinsic ``mlp``.

    Serialized code (MLP ~= 1) has no headroom - dependence chains
    cannot widen.  Mid-MLP code gains the most: longer pending times
    keep more of its independent requests in flight.  Code already
    running at the Line-Fill-Buffer bound (~12 entries) has nowhere to
    grow - which is why the paper's streaming workloads show near-flat
    MLP across tiers and interleaving ratios (Fig. 10) while mid-MLP
    workloads show up to ~20% growth (Fig. 4c/e).
    """
    room_above = max(0.0, (11.5 - mlp) / 10.5)
    return max(0.0, 0.07 * (mlp - 1.0) * room_above)


def near_buffer_from_footprint(footprint_gib: float) -> float:
    """Central near-buffer absorption for a given footprint.

    Small footprints keep a larger share of their traffic inside uncore
    and memory-controller buffers (~45 ns), lowering observed latency.
    """
    return 0.02 + 0.30 * math.exp(-max(footprint_gib, 0.01) / 3.0)


def typical_near_buffer(footprint_gib: float,
                        same_line_ratio: float) -> float:
    """Central fast-path absorption: footprint plus access regularity.

    Two mechanisms lower a workload's observed baseline latency
    (Fig. 4d): small footprints hit uncore/MC buffers, and *regular*
    access streams (high same-line locality) hit open DRAM rows and
    combine in MC buffers.  Streaming workloads therefore observe lower
    latency AND have higher MLP - the L-MLP correlation that makes AOL
    (and the hyperbolic fit) predictive on real machines.
    """
    return min(0.45, near_buffer_from_footprint(footprint_gib) +
               0.18 * max(0.0, min(1.0, same_line_ratio)))


@dataclass(frozen=True)
class Range:
    """A closed interval sampled uniformly (optionally log-uniformly)."""

    low: float
    high: float
    log: bool = False

    def __post_init__(self):
        if self.high < self.low:
            raise ValueError("range high must be >= low")
        if self.log and self.low <= 0:
            raise ValueError("log-uniform ranges need a positive low")

    def sample(self, rng: np.random.Generator) -> float:
        if self.low == self.high:
            return self.low
        if self.log:
            return float(np.exp(rng.uniform(np.log(self.low),
                                            np.log(self.high))))
        return float(rng.uniform(self.low, self.high))


@dataclass(frozen=True)
class Family:
    """Parameter distributions for one workload family."""

    name: str
    suite: str
    base_cpi: Range = Range(0.4, 0.9)
    loads_per_ki: Range = Range(180.0, 360.0)
    stores_per_ki: Range = Range(40.0, 130.0)
    footprint_gib: Range = Range(2.0, 32.0, log=True)
    l1_hit: Range = Range(0.88, 0.97)
    l2_hit: Range = Range(0.25, 0.65)
    l3_hit_small_llc: Range = Range(0.1, 0.6)
    llc_sensitivity: Range = Range(0.1, 0.5)
    mlp: Range = Range(1.5, 8.0)
    stall_exposure: Range = Range(0.5, 0.7)
    same_line_ratio: Range = Range(0.1, 0.6)
    pf_friend: Range = Range(0.2, 0.8)
    pf_l1_share: Range = Range(0.25, 0.45)
    pf_lookahead_ns: Range = Range(90.0, 140.0)
    store_miss_ratio: Range = Range(0.02, 0.15)
    store_burst: Range = Range(0.1, 0.4)
    burstiness: Range = Range(0.0, 0.1)
    tail_sensitivity: Range = Range(0.0, 0.1)
    hotness_skew: Range = Range(0.3, 0.5)
    threads: Tuple[int, ...] = (1,)
    tags: Tuple[str, ...] = ()
    #: Noise (sigma, relative) around the mlp-headroom correlation.
    headroom_noise: float = 0.25
    #: Noise (sigma, absolute) around the footprint->near-buffer trend.
    near_buffer_noise: float = 0.03

    def sample(self, rng: np.random.Generator, name: str) -> WorkloadSpec:
        """Draw one workload from this family's distributions."""
        mlp = self.mlp.sample(rng)
        headroom = typical_mlp_headroom(mlp) * float(
            rng.normal(1.0, self.headroom_noise))
        headroom = float(min(0.4, max(0.0, headroom)))

        footprint = self.footprint_gib.sample(rng)
        same_line = self.same_line_ratio.sample(rng)
        near_buffer = typical_near_buffer(footprint, same_line) + float(
            rng.normal(0.0, self.near_buffer_noise))
        near_buffer = float(min(0.45, max(0.0, near_buffer)))

        return WorkloadSpec(
            name=name,
            suite=self.suite,
            threads=int(rng.choice(self.threads)),
            base_cpi=self.base_cpi.sample(rng),
            loads_per_ki=self.loads_per_ki.sample(rng),
            stores_per_ki=self.stores_per_ki.sample(rng),
            footprint_gib=footprint,
            l1_hit=self.l1_hit.sample(rng),
            l2_hit=self.l2_hit.sample(rng),
            l3_hit_small_llc=self.l3_hit_small_llc.sample(rng),
            llc_sensitivity=self.llc_sensitivity.sample(rng),
            mlp=mlp,
            mlp_headroom=headroom,
            stall_exposure=self.stall_exposure.sample(rng),
            same_line_ratio=same_line,
            pf_friend=self.pf_friend.sample(rng),
            pf_l1_share=self.pf_l1_share.sample(rng),
            pf_lookahead_ns=self.pf_lookahead_ns.sample(rng),
            store_miss_ratio=self.store_miss_ratio.sample(rng),
            store_burst=self.store_burst.sample(rng),
            burstiness=self.burstiness.sample(rng),
            tail_sensitivity=self.tail_sensitivity.sample(rng),
            hotness_skew=self.hotness_skew.sample(rng),
            near_buffer_hit=near_buffer,
            tags=self.tags,
        )

    def generate(self, count: int, seed: int,
                 prefix: Optional[str] = None) -> List[WorkloadSpec]:
        """Generate ``count`` deterministic workloads from this family."""
        if count < 0:
            raise ValueError("count must be non-negative")
        # zlib.crc32 is stable across processes (str.__hash__ is not).
        import zlib
        family_key = zlib.crc32(self.name.encode())
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, family_key]))
        prefix = prefix or self.name
        return [self.sample(rng, f"{prefix}-{index:03d}")
                for index in range(count)]


# ---------------------------------------------------------------------------
# The family definitions.  Ranges are chosen so the population spans the
# paper's behavioural spectrum: slowdowns from ~0 (compute-bound) to
# >100% (serialized pointer chasing), every mix of the three slowdown
# components, and the named misprediction classes.
# ---------------------------------------------------------------------------

POINTER_CHASE = Family(
    name="pointer",
    suite="pointer",
    base_cpi=Range(0.6, 1.1),
    loads_per_ki=Range(250.0, 420.0),
    stores_per_ki=Range(15.0, 70.0),
    footprint_gib=Range(4.0, 64.0, log=True),
    l1_hit=Range(0.75, 0.92),
    l2_hit=Range(0.1, 0.35),
    l3_hit_small_llc=Range(0.03, 0.25),
    llc_sensitivity=Range(0.1, 0.45),
    mlp=Range(1.0, 2.6),
    stall_exposure=Range(0.6, 0.75),
    same_line_ratio=Range(0.0, 0.12),
    pf_friend=Range(0.02, 0.25),
    pf_lookahead_ns=Range(50.0, 90.0),
    store_miss_ratio=Range(0.01, 0.08),
    tags=("latency-sensitive", "pointer-chase"),
)

STREAMING_HPC = Family(
    name="hpc-stream",
    suite="spec2017",
    base_cpi=Range(0.35, 0.6),
    loads_per_ki=Range(260.0, 380.0),
    stores_per_ki=Range(80.0, 160.0),
    footprint_gib=Range(4.0, 24.0, log=True),
    l1_hit=Range(0.82, 0.90),
    l2_hit=Range(0.2, 0.45),
    l3_hit_small_llc=Range(0.02, 0.2),
    llc_sensitivity=Range(0.02, 0.2),
    mlp=Range(5.0, 10.0),
    stall_exposure=Range(0.5, 0.65),
    same_line_ratio=Range(0.45, 0.65),
    pf_friend=Range(0.7, 0.95),
    pf_lookahead_ns=Range(110.0, 160.0),
    store_miss_ratio=Range(0.04, 0.12),
    store_burst=Range(0.15, 0.45),
    hotness_skew=Range(0.05, 0.2),
    tags=("streaming",),
)

GRAPH_ANALYTICS = Family(
    name="graph",
    suite="gapbs",
    base_cpi=Range(0.5, 0.9),
    loads_per_ki=Range(280.0, 430.0),
    stores_per_ki=Range(30.0, 100.0),
    footprint_gib=Range(8.0, 64.0, log=True),
    l1_hit=Range(0.78, 0.9),
    l2_hit=Range(0.12, 0.4),
    l3_hit_small_llc=Range(0.05, 0.35),
    llc_sensitivity=Range(0.2, 0.55),
    mlp=Range(1.8, 6.5),
    stall_exposure=Range(0.55, 0.72),
    same_line_ratio=Range(0.02, 0.25),
    pf_friend=Range(0.05, 0.4),
    pf_lookahead_ns=Range(60.0, 100.0),
    tail_sensitivity=Range(0.05, 0.35),
    threads=(1, 1, 1, 2),
    tags=("graph", "irregular"),
)

CLOUD_SERVING = Family(
    name="cloud",
    suite="cloud",
    base_cpi=Range(0.5, 1.0),
    loads_per_ki=Range(180.0, 320.0),
    stores_per_ki=Range(90.0, 200.0),
    footprint_gib=Range(8.0, 48.0, log=True),
    l1_hit=Range(0.9, 0.97),
    l2_hit=Range(0.35, 0.7),
    l3_hit_small_llc=Range(0.2, 0.6),
    llc_sensitivity=Range(0.25, 0.6),
    mlp=Range(1.5, 5.0),
    same_line_ratio=Range(0.1, 0.4),
    pf_friend=Range(0.15, 0.5),
    store_miss_ratio=Range(0.04, 0.15),
    store_burst=Range(0.3, 0.7),
    threads=(1, 1, 2),
    tags=("cloud", "store-heavy"),
)

AI_INFERENCE = Family(
    name="ai",
    suite="ai",
    base_cpi=Range(0.35, 0.6),
    loads_per_ki=Range(240.0, 360.0),
    stores_per_ki=Range(50.0, 120.0),
    footprint_gib=Range(4.0, 48.0, log=True),
    l1_hit=Range(0.88, 0.96),
    l2_hit=Range(0.3, 0.6),
    l3_hit_small_llc=Range(0.1, 0.4),
    llc_sensitivity=Range(0.2, 0.5),
    mlp=Range(4.0, 9.0),
    same_line_ratio=Range(0.4, 0.7),
    pf_friend=Range(0.5, 0.85),
    burstiness=Range(0.35, 0.8),
    tags=("ai", "bursty"),
)

COMPUTE_BOUND = Family(
    name="compute",
    suite="spec2017",
    base_cpi=Range(0.5, 1.6),
    loads_per_ki=Range(120.0, 260.0),
    stores_per_ki=Range(30.0, 90.0),
    footprint_gib=Range(0.5, 8.0, log=True),
    l1_hit=Range(0.96, 0.995),
    l2_hit=Range(0.6, 0.9),
    l3_hit_small_llc=Range(0.5, 0.9),
    llc_sensitivity=Range(0.3, 0.7),
    mlp=Range(1.5, 5.0),
    same_line_ratio=Range(0.1, 0.4),
    pf_friend=Range(0.3, 0.7),
    tags=("compute-bound",),
)

STORE_INTENSIVE = Family(
    name="storeheavy",
    suite="phoronix",
    base_cpi=Range(0.4, 0.8),
    loads_per_ki=Range(60.0, 180.0),
    stores_per_ki=Range(180.0, 340.0),
    footprint_gib=Range(2.0, 24.0, log=True),
    l1_hit=Range(0.92, 0.98),
    l2_hit=Range(0.4, 0.8),
    l3_hit_small_llc=Range(0.2, 0.6),
    mlp=Range(2.0, 6.0),
    same_line_ratio=Range(0.3, 0.6),
    pf_friend=Range(0.2, 0.6),
    store_miss_ratio=Range(0.08, 0.3),
    store_burst=Range(0.35, 0.8),
    tags=("store-heavy",),
)

SERIALIZED_WARM = Family(
    name="serialized-warm",
    suite="cloud",
    base_cpi=Range(0.5, 0.9),
    loads_per_ki=Range(180.0, 300.0),
    stores_per_ki=Range(40.0, 110.0),
    footprint_gib=Range(2.0, 12.0, log=True),
    l1_hit=Range(0.94, 0.985),
    l2_hit=Range(0.6, 0.85),
    l3_hit_small_llc=Range(0.2, 0.5),
    llc_sensitivity=Range(0.2, 0.5),
    mlp=Range(1.0, 2.2),
    stall_exposure=Range(0.62, 0.75),
    same_line_ratio=Range(0.05, 0.25),
    pf_friend=Range(0.05, 0.3),
    pf_lookahead_ns=Range(55.0, 85.0),
    store_miss_ratio=Range(0.01, 0.08),
    tags=("latency-sensitive", "low-mpki"),
)

MIXED_GENERAL = Family(
    name="mixed",
    suite="pbbs",
    l1_hit=Range(0.84, 0.94),
    l3_hit_small_llc=Range(0.05, 0.45),
    tags=("mixed",),
)

FAMILIES: Dict[str, Family] = {
    family.name: family
    for family in (POINTER_CHASE, STREAMING_HPC, GRAPH_ANALYTICS,
                   CLOUD_SERVING, AI_INFERENCE, COMPUTE_BOUND,
                   STORE_INTENSIVE, SERIALIZED_WARM, MIXED_GENERAL)
}


def generate_population(counts: Dict[str, int],
                        seed: int = 2026) -> List[WorkloadSpec]:
    """Generate a mixed population: ``{family name: count}`` -> specs."""
    population: List[WorkloadSpec] = []
    for family_name in sorted(counts):
        family = FAMILIES.get(family_name)
        if family is None:
            raise KeyError(
                f"unknown family {family_name!r}; "
                f"available: {sorted(FAMILIES)}")
        population.extend(family.generate(counts[family_name], seed))
    return population
