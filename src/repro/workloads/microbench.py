"""Calibration microbenchmarks (paper section 4.4.1).

CAMP's one-time platform calibration runs a small suite of
microbenchmarks on both DRAM and the target slow tier to learn the
platform constants (``p``, ``q`` of the hyperbolic latency-tolerance
model and the per-component ``k`` scaling factors).  The paper's suite:

1. *Pointer chasing* - pure latency sensitivity (``MLP ~= 1``); swept
   over independent-chain counts, it traces out controlled MLP levels.
2. *Sequential reads* - high bandwidth, characterizes MLP behaviour.
3. *Strided access* - triggers the prefetchers, calibrates S_Cache.
4. *Memset* - back-to-back stores, characterizes SB backpressure.

Each microbenchmark here is a :class:`WorkloadSpec` whose correlated
fields (MLP headroom, near-buffer absorption) follow the *central*
population trends exactly - microbenchmarks are clean code with the
canonical dependency structure, which is precisely why they calibrate
well.
"""

from __future__ import annotations

from typing import List, Sequence

from .generator import typical_mlp_headroom, typical_near_buffer
from .spec import WorkloadSpec

#: Instruction budget for microbenchmarks: short, calibration-sized runs.
_MICRO_INSTRUCTIONS = 5e8


def _micro(name: str, **fields) -> WorkloadSpec:
    mlp = fields.get("mlp", 1.0)
    footprint = fields.get("footprint_gib", 8.0)
    same_line = fields.get("same_line_ratio", 0.0)
    fields.setdefault("mlp_headroom", typical_mlp_headroom(mlp))
    fields.setdefault("near_buffer_hit",
                      typical_near_buffer(footprint, same_line))
    fields.setdefault("instructions", _MICRO_INSTRUCTIONS)
    return WorkloadSpec(name=name, suite="microbench", **fields)


def pointer_chase(chains: int = 1,
                  footprint_gib: float = 16.0) -> WorkloadSpec:
    """Dependent pointer chasing over ``chains`` independent chains.

    One chain is the canonical latency probe (``MLP = 1``); more chains
    raise MLP in controlled steps, tracing the latency-tolerance curve
    the hyperbolic fit needs.
    """
    if chains < 1:
        raise ValueError("chains must be >= 1")
    # Footprints near the LLC size genuinely hit in L3 part of the time;
    # these variants teach the fit what L3-hit-diluted offcore latency
    # looks like (population workloads are similarly diluted).
    footprint_mib = footprint_gib * 1024.0
    l3_hit = min(0.9, 0.9 * 14.0 / max(footprint_mib, 14.0))
    return _micro(
        f"mb-chase-x{chains}-{footprint_gib:g}g",
        base_cpi=0.7,
        loads_per_ki=420.0,
        stores_per_ki=5.0,
        footprint_gib=footprint_gib,
        l1_hit=0.02,
        l2_hit=0.02,
        l3_hit_small_llc=l3_hit,
        llc_sensitivity=0.0,
        mlp=float(chains),
        stall_exposure=0.72,
        same_line_ratio=0.0,
        pf_friend=0.0,
        pf_lookahead_ns=0.0,
        store_miss_ratio=0.0,
        tags=("microbench", "pointer-chase"),
    )


def sequential_read(threads: int = 1,
                    footprint_gib: float = 8.0) -> WorkloadSpec:
    """Streaming sequential reads - drives bandwidth, high MLP."""
    return _micro(
        f"mb-seqread-{threads}t",
        threads=threads,
        base_cpi=0.35,
        loads_per_ki=380.0,
        stores_per_ki=10.0,
        footprint_gib=footprint_gib,
        l1_hit=0.875,  # one miss per line: 8B loads over 64B lines
        l2_hit=0.05,
        l3_hit_small_llc=0.02,
        llc_sensitivity=0.0,
        mlp=10.0,
        stall_exposure=0.55,
        same_line_ratio=0.85,
        pf_friend=0.9,
        pf_lookahead_ns=140.0,
        store_miss_ratio=0.0,
        tags=("microbench", "streaming"),
    )


def strided_access(stride_lines: int = 2,
                   stores_per_ki: float = 10.0) -> WorkloadSpec:
    """Strided reads: every ``stride_lines``-th cacheline.

    Large enough strides defeat spatial reuse but keep the prefetchers
    engaged - the S_Cache calibration point.  ``stores_per_ki``
    variants add a write stream: store RFOs share the uncore lookup
    counters, so the R_Mem proxy must be calibrated under both clean
    and store-diluted conditions (real streaming codes write).
    """
    if stride_lines < 1:
        raise ValueError("stride must be >= 1 line")
    coverage = max(0.3, 0.9 - 0.1 * (stride_lines - 1))
    return _micro(
        f"mb-stride-{stride_lines}-w{stores_per_ki:g}",
        base_cpi=0.5,
        loads_per_ki=400.0,
        stores_per_ki=stores_per_ki,
        footprint_gib=12.0,
        l1_hit=0.6,
        l2_hit=0.1,
        l3_hit_small_llc=0.05,
        llc_sensitivity=0.0,
        mlp=5.0,
        stall_exposure=0.6,
        same_line_ratio=0.3,
        pf_friend=coverage,
        pf_lookahead_ns=110.0,
        store_miss_ratio=0.15 if stores_per_ki > 50 else 0.0,
        tags=("microbench", "strided"),
    )


def memset(buffer_gib: float = 8.0, burst: float = 0.5,
           stores_per_ki: float = 340.0) -> WorkloadSpec:
    """Back-to-back stores: the SB-backpressure calibration point.

    ``stores_per_ki`` variants sweep the Store Buffer occupancy range so
    the linear S_Store fit sees both lightly- and heavily-pressured
    points.
    """
    return _micro(
        f"mb-memset-{buffer_gib:g}g-r{stores_per_ki:g}-b{burst:g}",
        base_cpi=0.4,
        loads_per_ki=20.0,
        stores_per_ki=stores_per_ki,
        footprint_gib=buffer_gib,
        l1_hit=0.95,
        l2_hit=0.5,
        l3_hit_small_llc=0.1,
        llc_sensitivity=0.0,
        mlp=2.0,
        stall_exposure=0.5,
        same_line_ratio=0.5,
        pf_friend=0.2,
        pf_lookahead_ns=90.0,
        # One RFO per line = 1/8 of 8-byte stores.
        store_miss_ratio=0.125,
        store_burst=burst,
        tags=("microbench", "store-heavy"),
    )


def calibration_suite() -> List[WorkloadSpec]:
    """The full one-time calibration suite for a platform.

    Pointer-chase sweeps (chains x footprints) trace the hyperbolic
    latency-tolerance curve; sequential/strided runs pin the cache
    model; memset variants pin the store model.
    """
    suite: List[WorkloadSpec] = []
    for chains in (1, 2, 3, 4, 6, 8, 10, 12):
        for footprint in (0.03, 0.12, 1.0, 4.0, 16.0):
            suite.append(pointer_chase(chains, footprint))
    suite.append(sequential_read(1))
    for stride in (1, 2, 4):
        suite.append(strided_access(stride))
        suite.append(strided_access(stride, stores_per_ki=120.0))
    for stores_per_ki in (120.0, 220.0, 340.0):
        for burst in (0.2, 0.6):
            suite.append(memset(burst=burst, stores_per_ki=stores_per_ki))
    return suite
