"""Workload characterization: the intrinsic inputs to the machine model.

The paper evaluates CAMP over 265 real programs (SPEC CPU 2017, PARSEC,
GAPBS, PBBS, XSbench, Phoronix, Redis, Spark, VoltDB, MLPerf, Llama,
GPT-2, DLRM).  We cannot run those binaries here, so each workload is
represented by a :class:`WorkloadSpec`: the intrinsic, device-independent
characteristics that determine how it exercises the memory hierarchy.

These fields map one-to-one onto the causal axes the paper identifies:

- demand-read pressure: miss rates, per-thread MLP, dependency structure
  (``stall_exposure``), and the headroom for MLP to grow under latency
  (paper Fig. 4c/e);
- cache/prefetch pressure: prefetcher coverage and lookahead runway,
  same-line locality feeding the LFB (paper Fig. 5);
- store pressure: store miss ratio and burstiness driving Store Buffer
  backpressure (paper section 4.3);
- the misprediction classes the paper reports: ``burstiness`` (AI
  workloads whose instantaneous MLP exceeds the mean - Llama),
  ``tail_sensitivity`` (irregular access triggering CXL tail latency -
  pr-twitter), and extreme ``mlp`` (pr-kron's hyper-parallelism).

A spec is immutable; use :meth:`evolved` to derive variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple


def _check_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")


@dataclass(frozen=True)
class WorkloadSpec:
    """Intrinsic characteristics of one workload.

    All rates are per-thread unless stated otherwise; the machine model
    scales traffic by ``threads``.
    """

    name: str
    #: Suite label for reporting ("spec2017", "gapbs", "ai", ...).
    suite: str = "synthetic"
    threads: int = 1
    #: Total retired instructions (across the whole run, all threads).
    instructions: float = 2e9

    # -- compute shape ------------------------------------------------------
    #: Cycles per instruction with a perfect memory system.
    base_cpi: float = 0.6
    #: Demand loads / stores per kilo-instruction.
    loads_per_ki: float = 280.0
    stores_per_ki: float = 90.0

    # -- locality ------------------------------------------------------------
    #: Memory footprint in GiB (drives tiering capacity decisions).
    footprint_gib: float = 8.0
    #: Conditional hit rates along the demand-load path.
    l1_hit: float = 0.92
    l2_hit: float = 0.45
    #: L3 hit rate measured with a small (14 MiB-class) LLC.
    l3_hit_small_llc: float = 0.30
    #: How much extra LLC capacity helps (0 = streaming/no reuse).
    llc_sensitivity: float = 0.3

    # -- demand-read behaviour ------------------------------------------------
    #: Intrinsic memory-level parallelism per thread (bounded by the
    #: platform's LFB at run time).
    mlp: float = 4.0
    #: Fractional MLP growth available when latency rises (R_MLP - 1 at
    #: saturation); bounded by hardware buffers at run time.
    mlp_headroom: float = 0.10
    #: Fraction of memory-active cycles exposed as retirement stalls
    #: (dependency structure; the paper's s_LLC/C, mostly 0.5-0.7).
    stall_exposure: float = 0.6
    #: Fraction of L1-missing loads that coalesce onto an in-flight line
    #: (LFB hits): high for streaming, ~0 for pointer chasing.
    same_line_ratio: float = 0.35

    # -- prefetch behaviour ----------------------------------------------------
    #: Fraction of would-be demand L3 misses covered by HW prefetchers.
    pf_friend: float = 0.5
    #: Share of memory-bound prefetch traffic issued by the L1 prefetcher
    #: (the remainder comes from the L2 prefetcher).
    pf_l1_share: float = 0.35
    #: Prefetch runway: how far ahead (ns) prefetches are issued before
    #: the demand access needs the line.
    pf_lookahead_ns: float = 70.0

    # -- store behaviour ---------------------------------------------------------
    #: Fraction of stores missing all caches (RFO goes to memory).
    store_miss_ratio: float = 0.05
    #: Temporal burstiness of stores (raises effective SB occupancy).
    store_burst: float = 0.2

    # -- misprediction-class knobs -------------------------------------------
    #: MLP burstiness: instantaneous MLP exceeds the average during
    #: memory bursts, hiding more latency than the mean suggests (Llama).
    burstiness: float = 0.0
    #: Irregularity exposing the slow device's latency tail (pr-twitter).
    tail_sensitivity: float = 0.0
    #: Fraction of offcore demand reads absorbed by near (uncore/MC)
    #: buffers at ~45 ns regardless of the backing tier.  Workloads with
    #: high absorption show lower baseline DRAM latency and smaller
    #: latency growth on slow tiers (paper Fig. 4d).
    near_buffer_hit: float = 0.10
    #: How skewed the page-access distribution is (0 = uniform).  This
    #: is what hotness-based tiering (NBT, Soar, first-touch spill) can
    #: exploit: concentrating hot pages in DRAM only raises the DRAM
    #: request share if some pages are actually hotter than others.
    hotness_skew: float = 0.4

    #: Free-form tags ("bandwidth-bound", "pointer-chase", ...).
    tags: Tuple[str, ...] = field(default=())

    def __post_init__(self):
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if self.loads_per_ki < 0 or self.stores_per_ki < 0:
            raise ValueError("memory-op rates must be non-negative")
        if self.footprint_gib <= 0:
            raise ValueError("footprint must be positive")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1")
        if self.mlp_headroom < 0:
            raise ValueError("mlp_headroom must be non-negative")
        if self.pf_lookahead_ns < 0:
            raise ValueError("pf_lookahead_ns must be non-negative")
        for name in ("l1_hit", "l2_hit", "l3_hit_small_llc",
                     "llc_sensitivity", "stall_exposure", "same_line_ratio",
                     "pf_friend", "pf_l1_share", "store_miss_ratio",
                     "store_burst", "burstiness", "tail_sensitivity",
                     "near_buffer_hit", "hotness_skew"):
            _check_unit(name, getattr(self, name))

    # -- derived -----------------------------------------------------------
    @property
    def loads(self) -> float:
        """Total demand loads across the run."""
        return self.instructions * self.loads_per_ki / 1000.0

    @property
    def stores(self) -> float:
        """Total stores across the run."""
        return self.instructions * self.stores_per_ki / 1000.0

    def l3_hit(self, llc_mib: float) -> float:
        """LLC hit rate on a platform with ``llc_mib`` of last-level cache.

        ``l3_hit_small_llc`` anchors behaviour at a 14 MiB-class LLC
        (the SKX testbed); larger caches recover a fraction of the
        remaining misses controlled by ``llc_sensitivity``.  Footprints
        that fit in the LLC outright are nearly all hits.
        """
        if llc_mib <= 0:
            return 0.0
        if self.footprint_gib * 1024.0 <= llc_mib:
            return max(self.l3_hit_small_llc, 0.98)
        extra = max(0.0, llc_mib - 14.0)
        import math
        recovered = (1.0 - self.l3_hit_small_llc) * self.llc_sensitivity * (
            1.0 - math.exp(-extra / 80.0))
        return min(0.995, self.l3_hit_small_llc + recovered)

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    def evolved(self, **changes: Any) -> "WorkloadSpec":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def with_threads(self, threads: int) -> "WorkloadSpec":
        """The same program at a different thread count.

        Instruction count scales with threads (same per-thread work),
        matching how the paper's bwaves 2-thread vs 8-thread comparison
        changes aggregate bandwidth demand but not per-thread behaviour.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        per_thread = self.instructions / self.threads
        return replace(self, threads=threads,
                       instructions=per_thread * threads)

    def describe(self) -> Dict[str, float]:
        """A compact numeric summary used by reports and examples."""
        return {
            "threads": float(self.threads),
            "loads_per_ki": self.loads_per_ki,
            "stores_per_ki": self.stores_per_ki,
            "mlp": self.mlp,
            "pf_friend": self.pf_friend,
            "same_line_ratio": self.same_line_ratio,
            "store_miss_ratio": self.store_miss_ratio,
            "footprint_gib": self.footprint_gib,
        }
