"""Error taxonomy and retry policy for the resilient executor.

The executor distinguishes two failure families, because they demand
opposite reactions (``docs/FAULTS.md``):

- **Infrastructure failures** (:class:`WorkerCrashError` and its
  :class:`TaskTimeoutError` specialization): a worker process died, the
  pool broke, or no task made progress within the deadline.  The work
  itself is presumed fine - the executor re-runs the *remainder* of the
  batch serially and never surfaces these to the caller.
- **Deterministic task errors** (any other exception from a task): the
  spec itself is bad, so re-running it can only fail again.  These
  propagate immediately with the original traceback - retrying would
  hide the bug and triple the time to the same crash.

:class:`TransientTaskError` is the explicit middle ground: a task that
*knows* its failure is retryable (an injected fault, a flaky external
resource) raises it to opt in to bounded in-process retries governed by
:class:`RetryPolicy`.

:class:`StoreError` names the third family the online service cares
about: the persistent :class:`~repro.runtime.store.ResultStore` became
unreachable (disk yanked, NFS partition, injected disconnect).  Results
are correct without the cache, so callers degrade to solve-without-
cache; ``repro serve`` additionally trips a circuit breaker after
repeated occurrences (``docs/SERVE.md``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Optional


class WorkerCrashError(RuntimeError):
    """A pool worker (or the pool itself) died mid-batch.

    Raised internally when :class:`concurrent.futures` reports a broken
    pool; the executor reacts by falling back to serial execution for
    the tasks that have not produced results yet.
    """


class TaskTimeoutError(WorkerCrashError):
    """No task completed within the executor's ``task_timeout``.

    A hung worker is indistinguishable from a dead one from the
    parent's perspective, so this subclasses :class:`WorkerCrashError`
    and triggers the same serial-remainder fallback.
    """


class TransientTaskError(RuntimeError):
    """A task failure the raiser asserts is safe to retry.

    The serial execution path retries these with exponential backoff up
    to :attr:`RetryPolicy.max_attempts`; any other exception type is
    treated as deterministic and propagates on the first occurrence.
    """


class StoreError(RuntimeError):
    """The persistent result store became unreachable mid-operation.

    Distinct from corruption (which the store reads as a miss) and from
    task failures: the *cache* is gone but the work is fine.  Callers
    react by computing without the cache; ``repro serve`` counts
    consecutive occurrences into its store circuit breaker
    (``docs/SERVE.md``).
    """


def _jitter_fraction(key: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one retry site.

    Hash-keyed like :func:`repro.faults.plan._draw`, so retry schedules
    replay exactly under a fixed key while distinct keys (e.g. task
    fingerprints) decorrelate - which is the whole point of jitter.
    """
    material = f"retry:{key}:{attempt}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jittered exponential backoff for transient failures.

    ``max_attempts`` counts executions, not retries: the default of 3
    means one initial attempt plus up to two retries.  ``backoff_s`` is
    the *ceiling* of the sleep before the first retry; each subsequent
    retry multiplies the ceiling by ``multiplier``.

    With ``jitter`` enabled (the default) each sleep is drawn uniformly
    from ``[0, ceiling)`` - AWS-style *full jitter*.  Without it, N
    clients whose requests coalesced into one failing batch all sleep
    exactly ``backoff_s`` and retry as one synchronized storm; jitter
    spreads them across the window.  The draw is a deterministic hash
    of ``(key, attempt)``, so a chaos run replays bit-exactly: pass a
    per-task ``key`` (the executor passes the spec fingerprint) to
    decorrelate tasks, or no key for a shared-but-reproducible stream.

    ``max_total_s`` caps the *cumulative* sleep across all retries of
    one task: a delay that would push the running total past the cap is
    clamped to the remaining budget.  Retries themselves still happen
    (``max_attempts`` governs those); only the waiting is bounded, so a
    deep backoff curve cannot stall a latency-sensitive caller for the
    full geometric sum.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    jitter: bool = True
    max_total_s: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_total_s < 0:
            raise ValueError("max_total_s must be non-negative")

    def delays(self, key: Optional[str] = None) -> Iterator[float]:
        """Sleep durations before each retry, in order.

        ``key`` seeds the full-jitter draws; omitted, a fixed seed is
        used (still deterministic, just shared by every caller).
        """
        ceiling = self.backoff_s
        budget = self.max_total_s
        for attempt in range(self.max_attempts - 1):
            delay = ceiling
            if self.jitter:
                delay *= _jitter_fraction(key or "", attempt)
            delay = min(delay, budget)
            budget -= delay
            yield delay
            ceiling *= self.multiplier
