"""Error taxonomy and retry policy for the resilient executor.

The executor distinguishes two failure families, because they demand
opposite reactions (``docs/FAULTS.md``):

- **Infrastructure failures** (:class:`WorkerCrashError` and its
  :class:`TaskTimeoutError` specialization): a worker process died, the
  pool broke, or no task made progress within the deadline.  The work
  itself is presumed fine - the executor re-runs the *remainder* of the
  batch serially and never surfaces these to the caller.
- **Deterministic task errors** (any other exception from a task): the
  spec itself is bad, so re-running it can only fail again.  These
  propagate immediately with the original traceback - retrying would
  hide the bug and triple the time to the same crash.

:class:`TransientTaskError` is the explicit middle ground: a task that
*knows* its failure is retryable (an injected fault, a flaky external
resource) raises it to opt in to bounded in-process retries governed by
:class:`RetryPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


class WorkerCrashError(RuntimeError):
    """A pool worker (or the pool itself) died mid-batch.

    Raised internally when :class:`concurrent.futures` reports a broken
    pool; the executor reacts by falling back to serial execution for
    the tasks that have not produced results yet.
    """


class TaskTimeoutError(WorkerCrashError):
    """No task completed within the executor's ``task_timeout``.

    A hung worker is indistinguishable from a dead one from the
    parent's perspective, so this subclasses :class:`WorkerCrashError`
    and triggers the same serial-remainder fallback.
    """


class TransientTaskError(RuntimeError):
    """A task failure the raiser asserts is safe to retry.

    The serial execution path retries these with exponential backoff up
    to :attr:`RetryPolicy.max_attempts`; any other exception type is
    treated as deterministic and propagates on the first occurrence.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient task failures.

    ``max_attempts`` counts executions, not retries: the default of 3
    means one initial attempt plus up to two retries.  ``backoff_s`` is
    the sleep before the first retry; each subsequent retry multiplies
    it by ``multiplier``.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delays(self) -> Iterator[float]:
        """Sleep durations before each retry, in order."""
        delay = self.backoff_s
        for _ in range(self.max_attempts - 1):
            yield delay
            delay *= self.multiplier
