"""Persistent, content-addressed result cache.

A :class:`ResultStore` maps a cache key (the SHA-256 fingerprint of a
run specification, :mod:`repro.runtime.spec`) to a JSON payload on
disk.  Layout: ``<root>/<key[:2]>/<key>.json`` - two-level fan-out so
a 265-workload suite does not pile thousands of files into one
directory.

Design rules:

- **Atomic writes.**  Payloads are written to a temp file in the same
  directory and ``os.replace``d into place, so a killed process can
  never leave a half-written entry under a valid name.
- **Corruption is a miss, never an error.**  Unreadable, truncated,
  or key-mismatched entries are treated as absent (and counted in
  :attr:`StoreStats.corrupt`); the run simply re-executes and the
  entry is rewritten.
- **Self-describing entries.**  Every file carries its own ``key`` and
  ``schema`` so an entry that was hashed under different code can be
  recognized and ignored: ``get`` rejects entries whose ``schema``
  differs from the current :data:`~repro.runtime.spec
  .CACHE_SCHEMA_VERSION` as corrupt misses.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from ..obs.tracer import Tracer, active_tracer

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory, like
#: ``.pytest_cache``), used when the env var is unset.
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def default_cache_dir() -> pathlib.Path:
    """The cache root the CLI uses unless ``--cache-dir`` overrides it."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV,
                                       DEFAULT_CACHE_DIRNAME))


@dataclass
class StoreStats:
    """Counters one store accumulated over its lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "corrupt": self.corrupt}


class ResultStore:
    """On-disk JSON cache addressed by run-spec fingerprints."""

    def __init__(self, root: Optional[pathlib.Path] = None,
                 tracer: Optional[Tracer] = None):
        self.root = pathlib.Path(root) if root is not None \
            else default_cache_dir()
        self.stats = StoreStats()
        #: Span tracer for get/put timing; the executor wires its
        #: telemetry's tracer in, and a trace session overrides both.
        self.tracer = tracer

    def _tracer(self) -> Optional[Tracer]:
        session = active_tracer()
        return session if session is not None else self.tracer

    # -- paths ---------------------------------------------------------------
    def path_for(self, key: str) -> pathlib.Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    # -- access --------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or ``None``.

        Any failure mode - missing file, invalid JSON, wrong embedded
        key, stale ``schema`` version - reads as a miss; corrupted
        entries additionally bump :attr:`StoreStats.corrupt`.
        """
        tracer = self._tracer()
        if tracer is None:
            return self._get(key)
        with tracer.span("store.get", layer="store",
                         key=key[:12]) as span:
            payload = self._get(key)
            span.annotate(hit=payload is not None)
            return payload

    def _get(self, key: str) -> Optional[Dict[str, Any]]:
        from .spec import CACHE_SCHEMA_VERSION
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict) or entry.get("key") != key:
                raise ValueError("entry/key mismatch")
            if entry.get("schema") != CACHE_SCHEMA_VERSION:
                # Persisted under different code: the payload layout
                # (or the simulator's semantics) has moved on, so the
                # entry must not be served as a hit (module docstring).
                raise ValueError("stale cache schema")
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist ``payload`` under ``key`` (atomic replace)."""
        tracer = self._tracer()
        if tracer is None:
            self._put(key, payload)
            return
        with tracer.span("store.put", layer="store", key=key[:12]):
            self._put(key, payload)

    def _put(self, key: str, payload: Dict[str, Any]) -> None:
        from .spec import CACHE_SCHEMA_VERSION
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "schema": CACHE_SCHEMA_VERSION,
                 "payload": payload}
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(handle, "w") as tmp:
                json.dump(entry, tmp)
            os.replace(tmp_name, path)
        except BaseException:   # camp-lint: disable=ERR01 -- cleanup-and-reraise: the temp file must go even on KeyboardInterrupt
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether anything was removed."""
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Remove every entry under the root; returns the count."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # -- introspection -------------------------------------------------------
    def _entries(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for bucket in sorted(self.root.iterdir()):
            if bucket.is_dir() and len(bucket.name) == 2:
                yield from sorted(bucket.glob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __repr__(self) -> str:
        return (f"ResultStore(root={str(self.root)!r}, "
                f"entries={len(self)})")
