"""Segment-backed, content-addressed result cache.

A :class:`ResultStore` maps a cache key (the SHA-256 fingerprint of a
run specification, :mod:`repro.runtime.spec`) to a dict payload.  The
on-disk format is a **compacted append-only segment log** — the byte-
level specification lives in ``docs/STORE.md``:

- every ``put`` appends one self-validating binary record
  (:data:`RECORD_MAGIC`, CRC-32, schema version, key, marshal-encoded
  payload — :func:`repro.runtime.serde.payload_to_bytes`) to the
  **active segment** under ``<root>/segments/``;
- segments **seal** (atomic rename ``.open`` → ``.seg``) once they
  reach :data:`DEFAULT_SEGMENT_MAX_BYTES`; sealed segments are
  immutable;
- an **in-memory index** (key → segment/offset) is rebuilt by scanning
  the segments on open: torn tails are truncated, records failing
  their CRC are counted in :attr:`StoreStats.corrupt` and skipped;
- hot keys are served from an in-process **LRU read cache**
  (:data:`DEFAULT_CACHE_CAPACITY` payloads) without touching disk;
- :meth:`ResultStore.compact` rewrites live records into fresh sealed
  segments (write-temp-then-``os.replace``) and drops superseded ones.

The durability contract is unchanged from the per-entry JSON layout
this store replaced (and its tests still pin it):

- **Corruption is a miss, never an error.**  A damaged, truncated, or
  stale-schema record reads as absent; the run re-executes and the
  entry is rewritten.
- **Atomic visibility.**  Records become visible only once fully
  appended; seals and compacted segments land via atomic rename, so a
  killed process can never expose a half-written entry under a valid
  key.
- **Schema rejection.**  Every record carries the
  :data:`~repro.runtime.spec.CACHE_SCHEMA_VERSION` it was written
  under; records from other schema versions are corrupt misses.

Legacy per-entry JSON layouts (``<root>/<key[:2]>/<key>.json``) are
migrated into segments the first time the new store opens the root —
see :class:`LegacyJsonStore` and ``docs/STORE.md`` ("Migration").
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import re
import struct
import tempfile
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from ..obs.tracer import Tracer, active_tracer
from .serde import payload_from_bytes, payload_to_bytes

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory, like
#: ``.pytest_cache``), used when the env var is unset.
DEFAULT_CACHE_DIRNAME = ".repro-cache"

#: Subdirectory of the store root holding the segment files.
SEGMENT_DIRNAME = "segments"

#: First 8 bytes of every segment file (``docs/STORE.md``).
SEGMENT_MAGIC = b"CAMPSEG1"

#: First 4 bytes of every record within a segment.
RECORD_MAGIC = b"CREC"

#: Fixed-size record header: magic (4s), CRC-32 (I), flags (B),
#: schema version (I), key length (H), payload length (I) —
#: little-endian, 19 bytes total.  The CRC covers every byte after
#: the CRC field itself: flags..payload inclusive.
RECORD_HEADER = struct.Struct("<4sIBIHI")

#: ``flags`` bit marking a deletion record (`invalidate`).
FLAG_TOMBSTONE = 0x01

#: Active segments seal (and become immutable) at this size.
DEFAULT_SEGMENT_MAX_BYTES = 8 * 1024 * 1024

#: Payloads held by the in-process LRU read cache.
DEFAULT_CACHE_CAPACITY = 4096

#: Open read handles kept per store, LRU-evicted.  Segment files are
#: never rewritten in place (seals rename the same inode; compaction
#: writes fresh names), so a cached handle can never see stale bytes.
DEFAULT_READER_HANDLES = 64

#: Dead-byte fraction above which a seal triggers auto-compaction.
AUTO_COMPACT_DEAD_FRACTION = 0.5

#: ``get_many`` switches from per-record reads to one whole-segment
#: read once the batch wants at least one record per this many bytes
#: of the file — the syscall-per-record overhead then costs more than
#: streaming the segment sequentially.
BULK_READ_DENSITY_BYTES = 4096

_SCHEMA_VERSION: Optional[int] = None


def _schema_version() -> int:
    """:data:`~repro.runtime.spec.CACHE_SCHEMA_VERSION`, memoized.

    The import stays lazy (``spec`` pulls in the whole simulator), but
    the per-record decode path cannot afford import machinery.
    """
    global _SCHEMA_VERSION
    if _SCHEMA_VERSION is None:
        from .spec import CACHE_SCHEMA_VERSION
        _SCHEMA_VERSION = CACHE_SCHEMA_VERSION
    return _SCHEMA_VERSION

#: Segment filename shape: ``seg-<seq:08d>-<token>.<seg|open>``.
_SEGMENT_NAME = re.compile(
    r"^seg-(\d{8})-([0-9a-z_]+)\.(seg|open)$")

_HEX_KEY = re.compile(r"^[0-9a-f]+$")


def default_cache_dir() -> pathlib.Path:
    """The cache root the CLI uses unless ``--cache-dir`` overrides it."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV,
                                       DEFAULT_CACHE_DIRNAME))


def _check_key(key: str) -> str:
    if not key or not _HEX_KEY.match(key):
        raise ValueError(f"malformed cache key: {key!r}")
    return key


@dataclass
class StoreStats:
    """Counters one store accumulated over its lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    #: Hits served straight from the LRU cache (subset of ``hits``).
    cached_hits: int = 0
    #: Bytes appended to segments (records, not file headers).
    appended_bytes: int = 0
    #: Segments sealed (size rollover, compaction, or close).
    sealed_segments: int = 0
    #: Explicit or automatic compaction passes.
    compactions: int = 0
    #: Entries imported from a legacy per-entry JSON layout.
    migrated: int = 0
    #: Deletion records appended by :meth:`ResultStore.invalidate`.
    tombstones: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "corrupt": self.corrupt,
                "cached_hits": self.cached_hits,
                "appended_bytes": self.appended_bytes,
                "sealed_segments": self.sealed_segments,
                "compactions": self.compactions,
                "migrated": self.migrated,
                "tombstones": self.tombstones}


def encode_record(key: str, payload_bytes: bytes, schema: int,
                  flags: int = 0) -> bytes:
    """One self-validating record, exactly as it lands in a segment."""
    key_bytes = key.encode("ascii")
    body = struct.pack("<BIHI", flags, schema, len(key_bytes),
                       len(payload_bytes)) + key_bytes + payload_bytes
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return RECORD_MAGIC + struct.pack("<I", crc) + body


@dataclass
class _Location:
    """Where one live record sits on disk."""

    path: pathlib.Path
    offset: int
    length: int


@dataclass
class _ActiveSegment:
    """The segment this store is currently appending to."""

    path: pathlib.Path
    handle: io.BufferedWriter
    seq: int
    size: int
    #: This segment's scan state, held directly so the per-record
    #: append path skips the ``_scans`` dict (and a ``Path.stem``).
    scan: Optional["_ScanState"] = None


@dataclass
class _ScanState:
    """How far one segment file has been indexed."""

    path: pathlib.Path
    offset: int
    sealed: bool


@dataclass
class _Parsed:
    key: str
    flags: int
    offset: int
    length: int


class ResultStore:
    """On-disk segment store addressed by run-spec fingerprints.

    Parameters
    ----------
    root:
        Store root; ``<root>/segments/`` holds the log.  Defaults to
        :func:`default_cache_dir`.
    tracer:
        Span tracer for get/put timing; an active trace session
        overrides it.
    segment_max_bytes:
        Seal threshold for the active segment (docs/STORE.md
        "Tuning").
    cache_capacity:
        Payloads kept in the in-process LRU read cache; ``0`` disables
        the cache.
    migrate_legacy:
        Import (and then remove) entries from a legacy per-entry JSON
        layout found under the root.  On by default; the migration is
        one-shot and crash-safe (docs/STORE.md "Migration").
    auto_compact:
        Compact automatically when a seal leaves more than
        :data:`AUTO_COMPACT_DEAD_FRACTION` of the log superseded.
    """

    def __init__(self, root: Optional[pathlib.Path] = None,
                 tracer: Optional[Tracer] = None, *,
                 segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
                 cache_capacity: int = DEFAULT_CACHE_CAPACITY,
                 migrate_legacy: bool = True,
                 auto_compact: bool = True):
        if segment_max_bytes < 1:
            raise ValueError("segment_max_bytes must be positive")
        if cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")
        self.root = pathlib.Path(root) if root is not None \
            else default_cache_dir()
        self.stats = StoreStats()
        #: Span tracer for store timing; the executor wires its
        #: telemetry's tracer in, and a trace session overrides both.
        self.tracer = tracer
        self.segment_max_bytes = segment_max_bytes
        self.cache_capacity = cache_capacity
        self.migrate_legacy = migrate_legacy
        self.auto_compact = auto_compact
        self._lock = threading.RLock()
        self._index: Dict[str, _Location] = {}
        self._readers: "OrderedDict[pathlib.Path, Any]" = OrderedDict()
        self._cache: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._scans: Dict[str, _ScanState] = {}
        self._active: Optional[_ActiveSegment] = None
        self._live_bytes = 0
        self._dead_bytes = 0
        self._opened = False

    # -- paths ---------------------------------------------------------------
    @property
    def segment_dir(self) -> pathlib.Path:
        return self.root / SEGMENT_DIRNAME

    def segment_paths(self) -> List[pathlib.Path]:
        """Every segment file, in (seq, token) scan order."""
        return [path for _, _, path, _ in self._segment_files()]

    def _segment_files(self) \
            -> List[Tuple[int, str, pathlib.Path, bool]]:
        directory = self.segment_dir
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        files = []
        for name in names:
            match = _SEGMENT_NAME.match(name)
            if match is None:
                continue
            files.append((int(match.group(1)), match.group(2),
                          directory / name, match.group(3) == "seg"))
        files.sort(key=lambda item: (item[0], item[1]))
        return files

    def _tracer(self) -> Optional[Tracer]:
        session = active_tracer()
        return session if session is not None else self.tracer

    def _span(self, name: str, **attrs: Any):
        tracer = self._tracer()
        if tracer is None:
            return None
        return tracer.span(name, layer="store", **attrs)

    # -- open / scan ---------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._opened:
            return
        self._opened = True
        span = self._span("store.open")
        if span is None:
            self._open()
            return
        with span as opened:
            self._open()
            opened.annotate(entries=len(self._index),
                            corrupt=self.stats.corrupt,
                            migrated=self.stats.migrated)

    def _open(self) -> None:
        self._drop_compaction_leftovers()
        self._refresh(initial=True)
        if self.migrate_legacy:
            self._migrate_legacy_layout()

    def _drop_compaction_leftovers(self) -> None:
        """Remove temp files a killed compaction left behind."""
        try:
            names = os.listdir(self.segment_dir)
        except OSError:
            return
        for name in names:
            if name.startswith(".compact-") and name.endswith(".tmp"):
                try:
                    os.unlink(self.segment_dir / name)
                except OSError:
                    pass

    def _refresh(self, initial: bool = False) -> None:
        """Index segment bytes that appeared since the last look.

        Sealed segments are immutable and scanned once; ``.open``
        segments (this store's active one, or another live/crashed
        writer's) are re-scanned from their last indexed offset when
        they grow.  ``initial`` marks the open-time full scan, the one
        place torn tails are truncated rather than left pending (a
        mid-session torn tail may simply be another writer's append in
        flight).
        """
        for seq, token, path, sealed in self._segment_files():
            stem = f"seg-{seq:08d}-{token}"
            state = self._scans.get(stem)
            if state is None:
                state = _ScanState(path=path, offset=0, sealed=sealed)
                self._scans[stem] = state
            else:
                state.path = path      # .open may have sealed to .seg
                state.sealed = sealed
            if state.sealed and state.offset > 0 and not initial:
                continue
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if size < state.offset:
                # The file shrank (chaos damage, external trim):
                # rescan from scratch; stale index entries pointing
                # past the new EOF fail their read and self-heal.
                state.offset = 0
            if size > state.offset:
                self._scan_file(state, initial)

    def _scan_file(self, state: _ScanState, initial: bool) -> None:
        from .spec import CACHE_SCHEMA_VERSION
        path = state.path
        try:
            with open(path, "rb") as handle:
                handle.seek(state.offset)
                buf = handle.read()
        except OSError:
            return
        base = state.offset
        pos = 0
        if base == 0:
            if len(buf) < len(SEGMENT_MAGIC):
                return      # header still in flight
            if buf[:len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
                # Not one of ours: never index it, never touch it.
                self.stats.corrupt += 1
                state.offset = base + len(buf)
                return
            pos = len(SEGMENT_MAGIC)
        while pos < len(buf):
            parsed = self._parse_record(buf, pos, CACHE_SCHEMA_VERSION)
            if parsed == "torn":
                if initial:
                    # Open-time recovery: a crash mid-append left a
                    # partial record at the tail; drop it so the next
                    # append starts on a clean boundary.
                    self.stats.corrupt += 1
                    self._truncate_tail(path, base + pos)
                    pos = len(buf)
                # Mid-session: likely another writer's append in
                # flight — leave it pending, re-scan on growth.
                break
            if parsed is None:
                # One count per failed parse: each damaged record
                # (resynced to by its successor's magic) is one miss.
                self.stats.corrupt += 1
                skip = buf.find(RECORD_MAGIC, pos + 1)
                if skip < 0:
                    pos = len(buf)
                    break
                pos = skip
                continue
            self._index_record(path, base + parsed.offset,
                               parsed.length, parsed.key, parsed.flags)
            pos += parsed.length
        state.offset = base + pos

    def _parse_record(self, buf: bytes, pos: int, schema: int):
        """One record at ``pos``: a ``_Parsed``, ``None`` (invalid and
        resyncable), or ``"torn"`` (runs past the end of the buffer)."""
        if pos + RECORD_HEADER.size > len(buf):
            return "torn" if buf[pos:pos + 4] == RECORD_MAGIC[
                :len(buf) - pos] else None
        magic, crc, flags, rec_schema, key_len, payload_len = \
            RECORD_HEADER.unpack_from(buf, pos)
        if magic != RECORD_MAGIC:
            return None
        if key_len > 4096 or payload_len > (1 << 30):
            # No sane record: a damaged header masquerading as a torn
            # tail would otherwise truncate good records behind it.
            return None
        length = RECORD_HEADER.size + key_len + payload_len
        if pos + length > len(buf):
            # Could be a torn tail append — or garbage lengths from a
            # damaged header.  The CRC distinguishes, but we cannot
            # check it without the missing bytes; treat as torn only
            # at the buffer end, where an in-flight append is possible.
            return "torn"
        body = buf[pos + 8:pos + length]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            return None
        if rec_schema != schema:
            # Well-formed record from other code: never serve it
            # (module docstring — schema rejection).
            self.stats.corrupt += 1
            return _Parsed(key="", flags=FLAG_TOMBSTONE, offset=pos,
                           length=length)
        try:
            key = buf[pos + RECORD_HEADER.size:
                      pos + RECORD_HEADER.size + key_len
                      ].decode("ascii")
        except UnicodeDecodeError:
            return None
        return _Parsed(key=key, flags=flags, offset=pos, length=length)

    def _index_record(self, path: pathlib.Path, offset: int,
                      length: int, key: str, flags: int) -> None:
        if not key:
            return
        previous = self._index.get(key)
        if previous is not None:
            self._dead_bytes += previous.length
            self._live_bytes -= previous.length
        if flags & FLAG_TOMBSTONE:
            self._index.pop(key, None)
            self._cache.pop(key, None)
            self._dead_bytes += length
            return
        self._index[key] = _Location(path=path, offset=offset,
                                     length=length)
        self._live_bytes += length

    def _truncate_tail(self, path: pathlib.Path, offset: int) -> None:
        try:
            os.truncate(path, offset)
        except OSError:
            pass
        if self._active is not None and self._active.path == path:
            self._active.size = offset

    # -- read handles --------------------------------------------------------
    def _reader(self, path: pathlib.Path):
        """A (cached) read handle for one segment file."""
        handle = self._readers.get(path)
        if handle is not None:
            self._readers.move_to_end(path)
            return handle
        handle = open(path, "rb")
        self._readers[path] = handle
        while len(self._readers) > DEFAULT_READER_HANDLES:
            _, evicted = self._readers.popitem(last=False)
            evicted.close()
        return handle

    def _drop_reader(self, path: pathlib.Path) -> None:
        handle = self._readers.pop(path, None)
        if handle is not None:
            handle.close()

    def _close_readers(self) -> None:
        while self._readers:
            _, handle = self._readers.popitem()
            handle.close()

    # -- the LRU read cache --------------------------------------------------
    def _cache_put(self, key: str, payload: Dict[str, Any]) -> None:
        if self.cache_capacity <= 0:
            return
        self._cache[key] = payload
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)

    def _cache_get(self, key: str) -> Optional[Dict[str, Any]]:
        payload = self._cache.get(key)
        if payload is not None:
            self._cache.move_to_end(key)
        return payload

    # -- reads ---------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or ``None``.

        Any failure mode — unknown key, damaged record, stale schema —
        reads as a miss; damaged records additionally bump
        :attr:`StoreStats.corrupt`.  Treat the returned dict as
        immutable: hot keys are shared through the read cache.
        """
        span = self._span("store.get", key=key[:12])
        if span is None:
            return self._get(key)
        with span as active:
            payload = self._get(key)
            active.annotate(hit=payload is not None)
            return payload

    def _get(self, key: str) -> Optional[Dict[str, Any]]:
        _check_key(key)
        with self._lock:
            self._ensure_open()
            location = self._index.get(key)
            if location is None:
                self._refresh()
                location = self._index.get(key)
            if location is None:
                self.stats.misses += 1
                return None
            return self._read_location(key, location)

    def get_many(self, keys: Sequence[str]) -> Dict[str, Dict[str, Any]]:
        """Payloads for every hit among ``keys`` (misses are absent).

        One batched lookup: at most one segment-directory refresh no
        matter how many keys miss the index, then cache/disk reads per
        key.  This is the path :class:`~repro.runtime.executor
        .Executor` batches its lookup stage through.
        """
        span = self._span("store.get_many", keys=len(keys))
        if span is None:
            return self._get_many(keys)
        with span as active:
            found = self._get_many(keys)
            active.annotate(hits=len(found),
                            misses=len(keys) - len(found))
            return found

    def _get_many(self, keys: Sequence[str]) \
            -> Dict[str, Dict[str, Any]]:
        for key in keys:
            _check_key(key)
        found: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            self._ensure_open()
            index = self._index
            if any(key not in index for key in keys):
                self._refresh()
                index = self._index
            # Serve LRU hits first and group the rest by segment, so
            # each segment is visited once — and, when the batch is
            # dense enough, read in one sequential pass instead of a
            # seek+read pair per record.
            pending: Dict[pathlib.Path,
                          List[Tuple[str, _Location]]] = {}
            queued: set = set()
            for key in keys:
                if key in found or key in queued:
                    continue
                location = index.get(key)
                if location is None:
                    self.stats.misses += 1
                    continue
                payload = self._cache_get(key)
                if payload is not None:
                    self.stats.hits += 1
                    self.stats.cached_hits += 1
                    found[key] = payload
                    continue
                pending.setdefault(location.path, []).append(
                    (key, location))
                queued.add(key)
            # Scan resistance: a batch larger than the LRU would evict
            # itself entry by entry while flushing every hot key, so
            # such sweeps bypass cache admission entirely.
            caching = len(keys) <= self.cache_capacity
            stats = self.stats
            for path, wanted in pending.items():
                data = self._bulk_segment_bytes(path, len(wanted))
                if data is None:
                    for key, location in wanted:
                        payload = self._read_location(key, location)
                        if payload is not None:
                            found[key] = payload
                    continue
                for key, location in wanted:
                    buf = data[location.offset:
                               location.offset + location.length]
                    payload = self._decode_record(
                        key, location.length, buf)
                    if payload is None:
                        payload = self._retry_location(key)
                    else:
                        stats.hits += 1
                        if caching:
                            self._cache_put(key, payload)
                    if payload is not None:
                        found[key] = payload
        return found

    def _bulk_segment_bytes(self, path: pathlib.Path,
                            wanted: int) -> Optional[bytes]:
        """One segment's full contents, when a dense batch earns it.

        ``None`` falls the caller back to per-record reads — the right
        call for sparse batches, and the safe one whenever the stat or
        the read fails (the per-record path owns retry semantics).
        """
        if self._active is not None and self._active.path == path:
            self._active.handle.flush()
        try:
            size = os.stat(path).st_size
        except OSError:
            return None
        if wanted * BULK_READ_DENSITY_BYTES < size:
            return None
        try:
            handle = self._reader(path)
            handle.seek(0)
            return handle.read()
        except OSError:
            self._drop_reader(path)
            return None

    def _read_location(self, key: str, location: _Location,
                       buf: Optional[bytes] = None
                       ) -> Optional[Dict[str, Any]]:
        payload = self._cache_get(key)
        if payload is not None:
            self.stats.hits += 1
            self.stats.cached_hits += 1
            return payload
        if buf is not None:
            payload = self._decode_record(key, location.length, buf)
        else:
            payload = self._read_record(key, location)
        if payload is None:
            return self._retry_location(key)
        self.stats.hits += 1
        self._cache_put(key, payload)
        return payload

    def _retry_location(self, key: str) -> Optional[Dict[str, Any]]:
        """Second chance after a failed read, then an honest miss.

        Compaction (this process or another) may have rewritten the
        log under us; one refresh finds the record's new home.  A
        genuinely damaged record stays damaged and has already been
        counted corrupt by the first decode.
        """
        self._index.pop(key, None)
        self._refresh()
        location = self._index.get(key)
        payload = None
        if location is not None:
            payload = self._read_record(key, location)
            if payload is None:
                self._index.pop(key, None)
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._cache_put(key, payload)
        return payload

    def _read_record(self, key: str, location: _Location
                     ) -> Optional[Dict[str, Any]]:
        """Decode one record from disk; damage counts as corrupt."""
        if self._active is not None and \
                self._active.path == location.path:
            self._active.handle.flush()
        try:
            handle = self._reader(location.path)
            handle.seek(location.offset)
            buf = handle.read(location.length)
        except OSError:
            self._drop_reader(location.path)
            return None     # vanished (compacted/cleared): plain miss
        return self._decode_record(key, location.length, buf)

    def _decode_record(self, key: str, length: int, buf: bytes
                       ) -> Optional[Dict[str, Any]]:
        """Validate and decode one record's bytes; damage is corrupt."""
        if len(buf) != length:
            self.stats.corrupt += 1
            return None
        magic, crc, flags, rec_schema, key_len, payload_len = \
            RECORD_HEADER.unpack_from(buf, 0)
        if (magic != RECORD_MAGIC or
                zlib.crc32(buf[8:]) & 0xFFFFFFFF != crc or
                rec_schema != _schema_version() or
                flags & FLAG_TOMBSTONE or
                RECORD_HEADER.size + key_len + payload_len != length):
            self.stats.corrupt += 1
            return None
        start = RECORD_HEADER.size
        if buf[start:start + key_len].decode("ascii",
                                             "replace") != key:
            self.stats.corrupt += 1
            return None
        try:
            return payload_from_bytes(buf[start + key_len:])
        except ValueError:
            self.stats.corrupt += 1
            return None

    # -- writes --------------------------------------------------------------
    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist ``payload`` under ``key`` (append + flush)."""
        span = self._span("store.put", key=key[:12])
        if span is None:
            self._put_many([(key, payload)])
            return
        with span:
            self._put_many([(key, payload)])

    def put_many(self, items: Iterable[Tuple[str, Dict[str, Any]]]
                 ) -> None:
        """Persist a batch of ``(key, payload)`` pairs.

        All records are appended under one lock acquisition and one
        flush — the grouped-solve commit path of
        :class:`~repro.runtime.executor.Executor`.
        """
        items = list(items)
        span = self._span("store.put_many", keys=len(items))
        if span is None:
            self._put_many(items)
            return
        with span:
            self._put_many(items)

    def _put_many(self, items: List[Tuple[str, Dict[str, Any]]]) -> None:
        from .spec import CACHE_SCHEMA_VERSION
        for key, _ in items:
            _check_key(key)
        with self._lock:
            self._ensure_open()
            # Same scan resistance as ``_get_many``: a batch that
            # cannot fit the LRU would only churn it.
            caching = len(items) <= self.cache_capacity
            stats = self.stats
            for key, payload in items:
                record = encode_record(key, payload_to_bytes(payload),
                                       CACHE_SCHEMA_VERSION)
                offset = self._append(record)
                self._index_record(self._active.path, offset,
                                   len(record), key, 0)
                if caching:
                    self._cache_put(key, payload)
                stats.writes += 1
                stats.appended_bytes += len(record)
                if self._active.size >= self.segment_max_bytes:
                    self._seal_active()
            if self._active is not None:
                self._active.handle.flush()

    def _append(self, record: bytes) -> int:
        active = self._activate_segment()
        offset = active.size
        active.handle.write(record)
        active.size += len(record)
        # Our own appends never need re-scanning: advance the scan
        # cursor so a later refresh (or a corrupt-read retry) does not
        # re-index — and re-count — records this process wrote.
        if active.scan is not None:
            active.scan.offset = active.size
        return offset

    def _activate_segment(self) -> _ActiveSegment:
        if self._active is not None:
            return self._active
        self.segment_dir.mkdir(parents=True, exist_ok=True)
        seq = 1 + max((s for s, _, _, _ in self._segment_files()),
                      default=0)
        handle_fd, tmp_name = tempfile.mkstemp(
            dir=self.segment_dir, prefix="new-", suffix=".tmp")
        token = pathlib.Path(tmp_name).name[len("new-"):-len(".tmp")]
        path = self.segment_dir / f"seg-{seq:08d}-{token.lower()}.open"
        os.replace(tmp_name, path)
        handle = os.fdopen(handle_fd, "wb")
        handle.write(SEGMENT_MAGIC)
        handle.flush()
        state = _ScanState(path=path, offset=len(SEGMENT_MAGIC),
                           sealed=False)
        self._scans[path.stem] = state
        self._active = _ActiveSegment(path=path, handle=handle, seq=seq,
                                      size=len(SEGMENT_MAGIC),
                                      scan=state)
        return self._active

    def _seal_active(self) -> None:
        active = self._active
        if active is None:
            return
        active.handle.flush()
        active.handle.close()
        sealed = active.path.with_suffix(".seg")
        os.replace(active.path, sealed)
        state = self._scans.get(active.path.stem)
        if state is not None:
            state.path = sealed
            state.sealed = True
            state.offset = active.size
        for key, location in self._index.items():
            if location.path == active.path:
                location.path = sealed
        self._active = None
        self.stats.sealed_segments += 1
        if (self.auto_compact and self._dead_bytes >
                AUTO_COMPACT_DEAD_FRACTION *
                max(1, self._dead_bytes + self._live_bytes)):
            self._compact()

    def close(self) -> None:
        """Seal the active segment; the store stays usable."""
        with self._lock:
            self._seal_active()

    def __enter__(self) -> "ResultStore":
        # Eager open: entering the context is an explicit lifecycle
        # statement, so recovery + migration happen here, not at the
        # first read (``with ResultStore(root) as s: s.stats`` works).
        with self._lock:
            self._ensure_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- deletion ------------------------------------------------------------
    def invalidate(self, key: str) -> bool:
        """Drop one entry (tombstone record); True if it was present."""
        from .spec import CACHE_SCHEMA_VERSION
        _check_key(key)
        with self._lock:
            self._ensure_open()
            if key not in self._index:
                self._refresh()
            if key not in self._index:
                return False
            record = encode_record(key, b"", CACHE_SCHEMA_VERSION,
                                   flags=FLAG_TOMBSTONE)
            offset = self._append(record)
            self._active.handle.flush()
            self._index_record(self._active.path, offset, len(record),
                               key, FLAG_TOMBSTONE)
            self.stats.tombstones += 1
            return True

    def clear(self) -> int:
        """Remove every entry under the root; returns the count.

        Drops all segment files (each unlink is atomic — a concurrent
        reader sees a full log or a missing file, never a partial
        one), any legacy per-entry JSON files, and the emptied legacy
        fan-out bucket directories.
        """
        with self._lock:
            self._ensure_open()
            self._refresh()
            removed = len(self._index)
            if self._active is not None:
                self._active.handle.close()
                self._active = None
            self._close_readers()
            for path in self.segment_paths():
                try:
                    os.unlink(path)
                except OSError:
                    pass
            try:
                os.rmdir(self.segment_dir)
            except OSError:
                pass
            removed += _clear_legacy_entries(self.root)
            self._index.clear()
            self._cache.clear()
            self._scans.clear()
            self._live_bytes = 0
            self._dead_bytes = 0
            return removed

    # -- compaction ----------------------------------------------------------
    def compact(self) -> Dict[str, int]:
        """Rewrite live records into fresh segments; drop the rest.

        Safe against concurrent *readers* (they re-resolve vanished
        records through a refresh) and against a crash at any point:
        compacted segments land via write-temp-then-``os.replace``
        before any old segment is unlinked, so a killed compaction
        leaves duplicates (harmless — identical values), never losses.
        Concurrent *writers* on the same root must be quiesced first
        (docs/STORE.md "Compaction").
        """
        span = self._span("store.compact")
        if span is None:
            return self._locked_compact()
        with span as active:
            summary = self._locked_compact()
            active.annotate(**summary)
            return summary

    def _locked_compact(self) -> Dict[str, int]:
        with self._lock:
            self._ensure_open()
            self._refresh()
            return self._compact()

    def _compact(self) -> Dict[str, int]:
        # Seal first: the active segment's path changes when it seals,
        # and the stale ``.open`` path would dodge the unlink below.
        self._seal_if_open()
        old_paths = self.segment_paths()
        before = len(old_paths)
        live = sorted(self._index.items())
        next_seq = 1 + max((s for s, _, _, _ in self._segment_files()),
                           default=0)
        new_index: Dict[str, _Location] = {}
        new_paths: List[pathlib.Path] = []
        chunk: List[Tuple[str, bytes]] = []
        chunk_bytes = len(SEGMENT_MAGIC)
        for key, location in live:
            raw = self._raw_record(location)
            if raw is None:
                continue
            chunk.append((key, raw))
            chunk_bytes += len(raw)
            if chunk_bytes >= self.segment_max_bytes:
                new_paths.append(self._write_sealed(next_seq, chunk,
                                                    new_index))
                next_seq += 1
                chunk, chunk_bytes = [], len(SEGMENT_MAGIC)
        if chunk:
            new_paths.append(self._write_sealed(next_seq, chunk,
                                                new_index))
        self._close_readers()
        for path in old_paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._index = new_index
        self._scans = {path.stem: _ScanState(path=path,
                                             offset=path.stat().st_size,
                                             sealed=True)
                       for path in new_paths}
        self._live_bytes = sum(loc.length
                               for loc in new_index.values())
        self._dead_bytes = 0
        self.stats.compactions += 1
        return {"live_entries": len(new_index),
                "segments_before": before,
                "segments_after": len(new_paths)}

    def _seal_if_open(self) -> None:
        if self._active is not None:
            # Compaction absorbs the active segment; seal it first so
            # every record source is an immutable file.  Bypass
            # _seal_active's auto-compact trigger (we are compacting).
            active = self._active
            active.handle.flush()
            active.handle.close()
            sealed = active.path.with_suffix(".seg")
            os.replace(active.path, sealed)
            for location in self._index.values():
                if location.path == active.path:
                    location.path = sealed
            state = self._scans.get(active.path.stem)
            if state is not None:
                state.path = sealed
                state.sealed = True
            self._active = None
            self.stats.sealed_segments += 1

    def _raw_record(self, location: _Location) -> Optional[bytes]:
        try:
            handle = self._reader(location.path)
            handle.seek(location.offset)
            raw = handle.read(location.length)
        except OSError:
            self._drop_reader(location.path)
            return None
        if len(raw) != location.length or raw[:4] != RECORD_MAGIC:
            return None
        crc = struct.unpack_from("<I", raw, 4)[0]
        if zlib.crc32(raw[8:]) & 0xFFFFFFFF != crc:
            return None
        return raw

    def _write_sealed(self, seq: int, chunk: List[Tuple[str, bytes]],
                      new_index: Dict[str, _Location]) -> pathlib.Path:
        """One compacted segment: temp file, fsync, atomic replace."""
        self.segment_dir.mkdir(parents=True, exist_ok=True)
        handle_fd, tmp_name = tempfile.mkstemp(
            dir=self.segment_dir, prefix=".compact-", suffix=".tmp")
        token = pathlib.Path(tmp_name).name[
            len(".compact-"):-len(".tmp")].lower()
        path = self.segment_dir / f"seg-{seq:08d}-{token}.seg"
        offsets: List[Tuple[str, int, int]] = []
        try:
            with os.fdopen(handle_fd, "wb") as handle:
                handle.write(SEGMENT_MAGIC)
                position = len(SEGMENT_MAGIC)
                for key, raw in chunk:
                    handle.write(raw)
                    offsets.append((key, position, len(raw)))
                    position += len(raw)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:   # camp-lint: disable=ERR01 -- cleanup-and-reraise: the temp file must go even on KeyboardInterrupt
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        for key, offset, length in offsets:
            new_index[key] = _Location(path=path, offset=offset,
                                       length=length)
        return path

    # -- migration -----------------------------------------------------------
    def _migrate_legacy_layout(self) -> None:
        """One-shot import of a per-entry JSON layout into segments.

        Valid entries (embedded key matches, current schema) are
        appended to the log and their files removed; damaged or
        stale-schema files count as corrupt and are removed too.
        Emptied fan-out buckets are dropped.  Crash-safe: an entry is
        unlinked only after its record is flushed, so a killed
        migration re-imports the remainder next open (duplicates are
        harmless — latest-wins over identical values).
        """
        buckets = _legacy_buckets(self.root)
        if not buckets:
            return
        span = self._span("store.migrate")
        if span is None:
            self._run_migration(buckets)
            return
        with span as active:
            self._run_migration(buckets)
            active.annotate(migrated=self.stats.migrated,
                            corrupt=self.stats.corrupt)

    def _run_migration(self, buckets: List[pathlib.Path]) -> None:
        from .spec import CACHE_SCHEMA_VERSION
        for bucket in buckets:
            for path in sorted(bucket.glob("*.json")):
                try:
                    entry = json.loads(path.read_text())
                    key = entry["key"]
                    if (not isinstance(entry, dict) or
                            key != path.stem or
                            entry.get("schema") !=
                            CACHE_SCHEMA_VERSION):
                        raise ValueError("invalid legacy entry")
                    payload = entry["payload"]
                    _check_key(key)
                except OSError:
                    continue
                except (ValueError, KeyError, TypeError):
                    self.stats.corrupt += 1
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    continue
                try:
                    self._put_many([(key, payload)])
                    self.stats.migrated += 1
                    self.stats.writes -= 1      # a move, not new work
                    path.unlink()
                except OSError:
                    # Unwritable root: serve what already migrated and
                    # leave the rest for a writable open.
                    return
            _remove_bucket_if_empty(bucket)

    # -- chaos seams ---------------------------------------------------------
    # Protected primitives for repro.faults.ChaosStore: they let the
    # injector damage freshly-appended records at the byte level while
    # keeping this store's own bookkeeping coherent (so the damage is
    # discovered by the *read* path, exactly as external damage would
    # be).

    def _record_location(self, key: str) -> Optional[_Location]:
        """Where ``key``'s live record sits (None if absent)."""
        with self._lock:
            self._ensure_open()
            return self._index.get(key)

    def _drop_cached(self, key: str) -> None:
        """Evict one key from the LRU so the next read hits disk."""
        with self._lock:
            self._cache.pop(key, None)

    def _drop_index(self, key: str) -> None:
        """Forget one key without a tombstone (vanished on disk)."""
        with self._lock:
            location = self._index.pop(key, None)
            if location is not None:
                self._live_bytes -= location.length

    def _truncate_at(self, path: pathlib.Path, offset: int) -> None:
        """Cut a segment file at ``offset``, fixing up the writer."""
        with self._lock:
            os.truncate(path, offset)
            if self._active is not None and self._active.path == path:
                self._active.handle.seek(offset)
                self._active.size = offset
            state = self._scans.get(path.stem)
            if state is not None and state.offset > offset:
                state.offset = offset

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            self._ensure_open()
            self._refresh()
            return len(self._index)

    def __contains__(self, key: str) -> bool:
        """Whether ``get(key)`` would hit.

        Membership means a schema-valid, CRC-checked record (the index
        only ever holds those) — unlike the legacy layout, a stale or
        damaged entry is *not* "in" the store.
        """
        _check_key(key)
        with self._lock:
            self._ensure_open()
            if key not in self._index:
                self._refresh()
            return key in self._index

    def keys(self) -> Iterator[str]:
        """Live keys, sorted (a snapshot; safe to mutate while
        iterating)."""
        with self._lock:
            self._ensure_open()
            self._refresh()
            return iter(sorted(self._index))

    def disk_bytes(self) -> int:
        """Total size of the segment files on disk."""
        total = 0
        for path in self.segment_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def __repr__(self) -> str:
        with self._lock:
            self._ensure_open()
            return (f"ResultStore(root={str(self.root)!r}, "
                    f"entries={len(self._index)}, "
                    f"segments={len(self.segment_paths())})")


# ---------------------------------------------------------------------------
# The legacy per-entry JSON layout (kept for migration and tooling).
# ---------------------------------------------------------------------------

def _legacy_buckets(root: pathlib.Path) -> List[pathlib.Path]:
    if not root.is_dir():
        return []
    buckets = []
    for child in sorted(root.iterdir()):
        if child.is_dir() and len(child.name) == 2 and \
                _HEX_KEY.match(child.name):
            buckets.append(child)
    return buckets


def _remove_bucket_if_empty(bucket: pathlib.Path) -> None:
    # Stray atomic-write temp files do not hold a bucket open.
    for stray in bucket.glob(".tmp-*"):
        try:
            stray.unlink()
        except OSError:
            pass
    try:
        bucket.rmdir()
    except OSError:
        pass


def _clear_legacy_entries(root: pathlib.Path) -> int:
    removed = 0
    for bucket in _legacy_buckets(root):
        for path in sorted(bucket.glob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        _remove_bucket_if_empty(bucket)
    return removed


class LegacyJsonStore:
    """The retired one-file-per-entry JSON store.

    Kept so tooling (the CI migration smoke, tests, operators with old
    caches) can *produce* the legacy layout that
    :class:`ResultStore` migrates from.  Same durability contract:
    atomic writes, corruption-as-miss, schema rejection — including on
    ``__contains__``, which validates the entry exactly like ``get``
    (the legacy implementation's stale-schema containment bug is fixed
    here too).
    """

    def __init__(self, root: pathlib.Path):
        self.root = pathlib.Path(root)
        self.stats = StoreStats()

    def path_for(self, key: str) -> pathlib.Path:
        _check_key(key)
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        from .spec import CACHE_SCHEMA_VERSION
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict) or entry.get("key") != key:
                raise ValueError("entry/key mismatch")
            if entry.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("stale cache schema")
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        from .spec import CACHE_SCHEMA_VERSION
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "schema": CACHE_SCHEMA_VERSION,
                 "payload": payload}
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(handle, "w") as tmp:
                json.dump(entry, tmp)
            os.replace(tmp_name, path)
        except BaseException:   # camp-lint: disable=ERR01 -- cleanup-and-reraise: the temp file must go even on KeyboardInterrupt
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def invalidate(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Remove every entry *and* the emptied fan-out buckets."""
        return _clear_legacy_entries(self.root)

    def _entries(self) -> Iterator[pathlib.Path]:
        for bucket in _legacy_buckets(self.root):
            yield from sorted(bucket.glob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def __contains__(self, key: str) -> bool:
        # Same validation as get: presence of a file is not presence
        # of a servable entry (stale schema / damage is a miss).
        stats = self.stats
        self.stats = StoreStats()
        try:
            return self.get(key) is not None
        finally:
            self.stats = stats

    def __repr__(self) -> str:
        return (f"LegacyJsonStore(root={str(self.root)!r}, "
                f"entries={len(self)})")
