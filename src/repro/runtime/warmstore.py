"""Persist the solver's warm-start cache through the segment store.

A :class:`~repro.uarch.machine.WarmStartCache` is pure derived state -
converged fixed points keyed by everything that pins them - so losing
it is never wrong, just slow: a cold process re-pays hundreds of outer
iterations per sweep point that a warm one seeds away.  This module
snapshots the cache into the :class:`~repro.runtime.store.ResultStore`
as **one record** (kind ``"warm-start"``) so the next process starts
warm.

The record key is ``fingerprint({"kind": "warm-start", "version":
code_version()})``.  ``code_version()`` embeds
:data:`~repro.runtime.spec.CACHE_SCHEMA_VERSION`, so bumping the
schema (or the package version) orphans - never corrupts - every older
snapshot: a stale-schema process simply misses and rebuilds.  The
payload is marshal-safe plain data (dicts/lists/floats) and rides the
store's existing CRC/tombstone/compaction machinery; nothing about the
segment format (docs/STORE.md) changes.

Snapshots are best-effort by design: an unwritable store degrades to
in-process warmth (same contract as the executor's result commits),
and a snapshot larger than the cache capacity simply re-evicts on
import.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..uarch.machine import WarmStartCache
from . import serde
from .spec import code_version, fingerprint
from .store import ResultStore


def warm_store_key() -> str:
    """Store key of the warm-start snapshot for this code version."""
    return fingerprint({"kind": "warm-start", "version": code_version()})


def _point_to_dict(key: tuple, x_req: float, state) -> Dict[str, Any]:
    workload, device, hotness_bias, platform_name, noise, seed = key
    return {
        "workload": serde.workload_to_dict(workload),
        "device": device,
        "hotness_bias": hotness_bias,
        "platform": platform_name,
        "noise": noise,
        "seed": seed,
        "x_req": x_req,
        "state": list(state),
    }


def _point_from_dict(data: Dict[str, Any]
                     ) -> Tuple[tuple, float, tuple]:
    key = (serde.workload_from_dict(data["workload"]), data["device"],
           data["hotness_bias"], data["platform"], data["noise"],
           data["seed"])
    return key, float(data["x_req"]), tuple(data["state"])


def save_warm_cache(store: Optional[ResultStore],
                    cache: WarmStartCache) -> int:
    """Snapshot ``cache`` into ``store``; returns points persisted.

    One ``put`` replaces any previous snapshot under the same code
    version (the store keeps latest-wins semantics per key).  ``None``
    store or an unwritable one is a no-op - warmth is an optimization,
    never a correctness dependency.
    """
    if store is None:
        return 0
    points = cache.export_points()
    payload = {
        "kind": "warm-start",
        "version": code_version(),
        "points": [_point_to_dict(key, x_req, state)
                   for key, x_req, state in points],
    }
    try:
        store.put(warm_store_key(), payload)
    except OSError:
        return 0
    return len(points)


def load_warm_cache(store: Optional[ResultStore],
                    cache: Optional[WarmStartCache] = None
                    ) -> Tuple[WarmStartCache, int]:
    """Rebuild a warm cache from the store's snapshot, if any.

    Returns ``(cache, points_loaded)``; a missing or unreadable
    snapshot (including any older-schema snapshot, which lives under a
    different key) yields the cache unchanged with 0 loaded.  Points
    import LRU-first, so eviction order survives the round-trip.
    """
    if cache is None:
        cache = WarmStartCache()
    if store is None:
        return cache, 0
    payload = store.get(warm_store_key())
    if payload is None:
        return cache, 0
    points: List[Tuple[tuple, float, tuple]] = []
    try:
        for data in payload["points"]:
            points.append(_point_from_dict(data))
    except (KeyError, TypeError, ValueError):
        # A malformed snapshot seeds nothing; the next save overwrites
        # it.  Partial decode is discarded wholesale - half a snapshot
        # would silently skew which points look "recently used".
        return cache, 0
    return cache, cache.import_points(points)


def clear_warm_cache(store: Optional[ResultStore]) -> bool:
    """Tombstone the current code version's snapshot; True if present."""
    if store is None:
        return False
    return store.invalidate(warm_store_key())
