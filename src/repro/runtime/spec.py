"""Run specifications and the content-addressed cache-key recipe.

A simulated execution is a pure function of its complete specification:
CAMP's substrate has no hidden state, so two runs with equal specs are
guaranteed to produce equal results.  :class:`RunSpec` captures that
complete specification - enough to rebuild the machine in another
process - and :func:`fingerprint` turns it into a stable hex key for
the :class:`~repro.runtime.store.ResultStore`.

Cache-key recipe (documented in ``docs/RUNTIME.md``):

1. Flatten the spec into plain dicts: every :class:`WorkloadSpec`
   field, the full platform config (including its DRAM device), the
   slow-tier device config actually referenced by the placement (other
   registered devices do not affect the run and are excluded), the
   placement triple, and the machine's ``noise``/``seed``.
2. Prefix a ``kind`` tag ("run" / "calibration") and the code version:
   ``repro.__version__`` plus :data:`CACHE_SCHEMA_VERSION`.  Bump the
   schema version whenever the simulator's semantics or the payload
   layout change - that orphans (never corrupts) all previous entries.
3. Serialize with :func:`canonical_json` (sorted keys, no whitespace,
   shortest-round-trip floats) and take the SHA-256 hex digest.

Any field change - a different device, thread count, queue knee, noise
level - therefore yields a different key, while re-describing the same
run always finds the same entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from ..uarch.config import MemoryDeviceConfig, PlatformConfig
from ..uarch.interleave import Placement
from ..uarch.machine import Machine, RunResult
from ..workloads.spec import WorkloadSpec
from . import serde

#: Version of the cache payload layout and simulator semantics.  Bump
#: to invalidate every previously-persisted result at once.
#: 2: scalar-primitive normalization for the batched solver's bitwise
#: replay contract (docs/SOLVER.md) shifts results at the ulp level.
#: 3: segment-backed store (docs/STORE.md) — payloads move from
#: per-entry JSON files into CRC-checked binary segment records.
CACHE_SCHEMA_VERSION = 3


def code_version() -> str:
    """The code-version component of every cache key."""
    from .. import __version__
    return f"{__version__}+schema{CACHE_SCHEMA_VERSION}"


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def fingerprint(data: Any) -> str:
    """SHA-256 hex digest of ``data``'s canonical JSON form."""
    return hashlib.sha256(canonical_json(data).encode()).hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """The complete, self-contained description of one simulated run.

    Carries everything :func:`~repro.runtime.executor.execute_run_spec`
    needs to rebuild the machine in a worker process: no live
    :class:`~repro.uarch.machine.Machine` reference, so specs pickle
    cheaply and hash stably.
    """

    workload: WorkloadSpec
    placement: Placement
    platform: PlatformConfig
    #: Resolved config of the slow device the placement references
    #: (``None`` for DRAM-only placements).  Captured eagerly so a
    #: machine with a custom device registry hashes differently from
    #: one using the global presets under the same device *name*.
    slow_device: Optional[MemoryDeviceConfig]
    noise: float
    seed: int

    @classmethod
    def from_machine(cls, machine: Machine, workload: WorkloadSpec,
                     placement: Optional[Placement] = None) -> "RunSpec":
        placement = placement or Placement.dram_only()
        slow_device = (machine.device(placement.device)
                       if placement.device is not None else None)
        return cls(workload=workload, placement=placement,
                   platform=machine.platform, slow_device=slow_device,
                   noise=machine.noise, seed=machine.seed)

    def machine(self) -> Machine:
        """Rebuild the (stateless) machine this spec describes."""
        devices: Dict[str, MemoryDeviceConfig] = {}
        if self.slow_device is not None:
            devices[self.slow_device.name] = self.slow_device
        return Machine(self.platform, devices=devices or None,
                       noise=self.noise, seed=self.seed)

    def key_material(self) -> Dict[str, Any]:
        """The dict the cache key hashes (see the module docstring)."""
        return {
            "kind": "run",
            "version": code_version(),
            "workload": serde.workload_to_dict(self.workload),
            "placement": serde.placement_to_dict(self.placement),
            "platform": serde.platform_to_dict(self.platform),
            "slow_device": (serde.device_to_dict(self.slow_device)
                            if self.slow_device is not None else None),
            "noise": self.noise,
            "seed": self.seed,
        }

    def fingerprint(self) -> str:
        return fingerprint(self.key_material())

    def execute(self) -> RunResult:
        """Run the simulation this spec describes (pure, in-process)."""
        return self.machine().run(self.workload, self.placement)


@dataclass(frozen=True)
class CalibrationSpec:
    """The complete description of one CAMP calibration fit.

    Includes the microbenchmark suite itself: changing a calibration
    microbenchmark changes the fitted constants, so it must change the
    key.
    """

    platform: PlatformConfig
    device: MemoryDeviceConfig
    benchmarks: Tuple[WorkloadSpec, ...]
    noise: float
    seed: int

    @classmethod
    def from_machine(cls, machine: Machine, device: str,
                     benchmarks: Optional[Sequence[WorkloadSpec]] = None
                     ) -> "CalibrationSpec":
        if benchmarks is None:
            from ..workloads.microbench import calibration_suite
            benchmarks = calibration_suite()
        return cls(platform=machine.platform,
                   device=machine.device(device),
                   benchmarks=tuple(benchmarks),
                   noise=machine.noise, seed=machine.seed)

    def key_material(self) -> Dict[str, Any]:
        return {
            "kind": "calibration",
            "version": code_version(),
            "platform": serde.platform_to_dict(self.platform),
            "device": serde.device_to_dict(self.device),
            "benchmarks": [serde.workload_to_dict(bench)
                           for bench in self.benchmarks],
            "noise": self.noise,
            "seed": self.seed,
        }

    def fingerprint(self) -> str:
        return fingerprint(self.key_material())
