"""Parallel evaluation runtime: executor, result cache, telemetry.

Every simulated execution in this repository is a pure function of its
full specification - the workload, the platform, the slow device, the
placement, and the machine's noise/seed configuration.  This package
exploits that purity twice:

- :class:`~repro.runtime.executor.Executor` fans independent runs out
  over a :class:`concurrent.futures.ProcessPoolExecutor` (with a
  graceful serial fallback), returning results in deterministic input
  order regardless of completion order;
- :class:`~repro.runtime.store.ResultStore` persists every result on
  disk, content-addressed by a stable hash of the run specification
  (:mod:`repro.runtime.spec`), so re-running a suite, sweep, or fleet
  plan is a cache lookup instead of a simulation.

:mod:`repro.runtime.telemetry` is the runtime's face of the
observability layer (:mod:`repro.obs`): hierarchical span timings with
honest self-time accounting, cache hit/miss counters, and the
``--progress`` reporting the CLI surfaces (``docs/OBSERVABILITY.md``).
:mod:`repro.runtime.errors` defines the failure taxonomy the
executor's fault tolerance is built on (``docs/FAULTS.md``).

See ``docs/RUNTIME.md`` for the architecture, the cache-key recipe, and
the invalidation rules.
"""

from .errors import (RetryPolicy, StoreError, TaskTimeoutError,
                     TransientTaskError, WorkerCrashError)
from .executor import Executor, default_jobs, execute_run_spec
from .spec import (CACHE_SCHEMA_VERSION, CalibrationSpec, RunSpec,
                   canonical_json, code_version, fingerprint)
from .store import (LegacyJsonStore, ResultStore, StoreStats,
                    default_cache_dir)
from .telemetry import ProgressReporter, Telemetry

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CalibrationSpec",
    "Executor",
    "LegacyJsonStore",
    "ProgressReporter",
    "ResultStore",
    "RetryPolicy",
    "RunSpec",
    "StoreError",
    "StoreStats",
    "TaskTimeoutError",
    "Telemetry",
    "TransientTaskError",
    "WorkerCrashError",
    "canonical_json",
    "code_version",
    "default_cache_dir",
    "default_jobs",
    "execute_run_spec",
    "fingerprint",
]
