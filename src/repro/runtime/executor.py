"""Fan simulated runs out over processes, through the result cache.

:class:`Executor` is the one entry point every driver (CLI subcommands,
:class:`~repro.analysis.lab.Lab`, the calibration fitter, the fleet
planner) uses to execute :class:`~repro.runtime.spec.RunSpec` batches.
It layers three caches and one pool:

1. an in-process memo (fingerprint -> payload), so a driver that asks
   for the same run twice in one invocation pays nothing;
2. the persistent :class:`~repro.runtime.store.ResultStore`, shared
   across invocations and across ``-j`` settings — consulted with one
   batched ``get_many`` per batch and fed with chunked ``put_many``
   commits (:data:`COMMIT_CHUNK`), so a 1k-spec sweep pays two index
   passes, not 2k file round-trips (docs/STORE.md);
3. only the genuinely-missing specs are executed - in a
   ``ProcessPoolExecutor`` when ``jobs > 1`` and the batch is
   picklable, serially otherwise (``-j 1``, single-item batches, or
   any pool failure fall back transparently).

Results always return in input order, independent of completion order,
and every result - hit or miss, serial or parallel - passes through the
same JSON round-trip (:mod:`repro.runtime.serde`), which is what makes
``-j 1`` and ``-j 4`` outputs byte-identical, cold and warm.

Failure handling follows the taxonomy of :mod:`repro.runtime.errors`
(full story: ``docs/FAULTS.md``):

- a worker crash, a hung worker past ``task_timeout``, or a pool that
  cannot start degrades to serial execution of the tasks that have not
  completed yet (already-yielded results are never re-executed);
- a deterministic task exception (a bad spec) propagates immediately
  with its original traceback - it is never swallowed into a serial
  re-run, and never retried;
- :class:`~repro.runtime.errors.TransientTaskError` opts a task into
  bounded exponential-backoff retries (:class:`RetryPolicy`).

When a :class:`~repro.faults.plan.FaultPlan` is attached the executor
becomes a chaos harness: worker crash/hang faults are injected into the
pool, and the persistent store is bypassed entirely so fault-perturbed
results can never poison the cache.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, wait)
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Set, Tuple, TypeVar)

from ..core.counters import ProfiledRun
from ..uarch.machine import Machine, RunResult
from . import serde
from .errors import (RetryPolicy, TaskTimeoutError, TransientTaskError,
                     WorkerCrashError)
from .spec import RunSpec
from .store import ResultStore
from .telemetry import ProgressReporter, Telemetry

if TYPE_CHECKING:   # pragma: no cover - typing only, avoids a cycle
    from ..faults.plan import FaultPlan

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable overriding the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Smallest spec batch worth routing through the vectorized batch
#: solver.  Below this the replay-mode batch does not amortize its
#: per-iteration numpy overhead against N scalar solves
#: (docs/SOLVER.md "when to batch"); sweeps and suite runs are far
#: above it.  Lanes need not share a machine: the solver carries
#: per-lane (platform, noise, seed), so one threshold covers the whole
#: pending remainder.
MIN_BATCH_GROUP = 16

#: Freshly-executed payloads are persisted through
#: :meth:`ResultStore.put_many` in chunks of this many entries: one
#: lock acquisition and one segment flush per chunk instead of one per
#: result, while a crash mid-batch still loses at most a chunk of
#: re-executable work.
COMMIT_CHUNK = 64


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` if set, else the CPU count.

    ``REPRO_JOBS=auto`` (or ``0``) also means "all cores"; malformed
    values fall through to the CPU count rather than erroring.
    """
    value = os.environ.get(JOBS_ENV)
    if value and value.strip().lower() != "auto":
        try:
            parsed = int(value)
            if parsed >= 1:
                return parsed
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def execute_run_spec(spec: RunSpec) -> Dict[str, Any]:
    """Execute one spec and return its serialized payload.

    Module-level so process-pool workers can import it by reference;
    returning the serialized form keeps a single decode path for cached
    and fresh results.
    """
    return serde.run_result_to_dict(spec.execute())


def _indexed_execute(item: Tuple[int, RunSpec]) -> Tuple[int, Dict[str, Any]]:
    index, spec = item
    return index, execute_run_spec(spec)


def _batch_execute(chunk: List[Tuple[int, RunSpec]]
                   ) -> List[Tuple[int, Dict[str, Any]]]:
    """Pool worker entry point solving one shard of specs as a batch.

    Replay-mode :meth:`Machine.run_batch_multi` is bit-identical to
    looped ``Machine.run``, so routing pool shards through it preserves
    the ``-j 1`` == ``-j N`` byte-identity guarantee; a shard below
    :data:`MIN_BATCH_GROUP` (a short tail) loops per spec instead,
    producing the same bytes.
    """
    if len(chunk) >= MIN_BATCH_GROUP:
        results = Machine.run_batch_multi([spec for _, spec in chunk])
        return [(index, serde.run_result_to_dict(result))
                for (index, _), result in zip(chunk, results)]
    return [(index, execute_run_spec(spec)) for index, spec in chunk]


def _indexed_execute_faulted(item: Tuple[int, RunSpec, "FaultPlan"]
                             ) -> Tuple[int, Dict[str, Any]]:
    """Pool worker entry point with fault injection applied.

    The plan's draw is deterministic, so the parent can pre-compute
    which tasks will fault (for telemetry) without any channel back
    from a worker that is about to die.
    """
    index, spec, plan = item
    action = plan.worker_action(index, attempt=0)
    if action is not None:
        if action.mode == "hang":
            time.sleep(action.hang_s)
        elif action.mode == "crash":
            os._exit(3)
    return index, execute_run_spec(spec)


def _call(item: Tuple[Callable[[T], R], T]) -> R:
    fn, arg = item
    return fn(arg)


#: Extra seconds granted before the pool's first completion: a cold
#: ``ProcessPoolExecutor`` pays process spawn plus import cost before
#: any task truly starts running, and that startup must not count
#: against the first window's per-task budgets (a small
#: ``task_timeout`` would otherwise declare a merely-cold pool hung).
POOL_WARMUP_GRACE_S = 10.0


class _TaskDeadlines:
    """Per-task execution deadlines for the pool watchdog.

    ``wait(..., timeout=task_timeout)`` alone cannot catch a hung
    worker on a busy pool: the timer restarts whenever *any* future
    completes, so as long as siblings keep finishing, one hung task
    evades its timeout forever.  This ladder instead assigns each task
    its own deadline, started when the task plausibly begins running -
    i.e. when it enters the ``workers``-wide running window in
    submission order (``ProcessPoolExecutor`` dispatches work items
    FIFO), not when it was merely queued.  A completion elsewhere
    promotes the next queued task into the window; it never extends a
    running task's deadline.

    The pool is only *plausibly* running anything once it has
    completed something: until the first completion the workers may
    still be forking and importing, so first-window tasks share one
    warm-up backstop deadline (``timeout_s + warmup_grace_s``, which
    still catches a pool that never produces a result) and their
    individual clocks start at the first completion.
    """

    def __init__(self, timeout_s: Optional[float], workers: int,
                 clock: Callable[[], float] = time.monotonic,
                 warmup_grace_s: float = POOL_WARMUP_GRACE_S):
        self._timeout_s = timeout_s
        self._workers = workers
        self._clock = clock
        self._warmup_grace_s = warmup_grace_s
        self._queued: List[Any] = []
        #: deadline per running task; ``None`` = armed at first
        #: completion (covered by the warm-up backstop until then).
        self._running: Dict[Any, Optional[float]] = {}
        self._warm = False
        self._warmup_deadline: Optional[float] = None

    def submit(self, future: Any) -> None:
        self._queued.append(future)
        self._fill()

    def _fill(self) -> None:
        while self._queued and len(self._running) < self._workers:
            future = self._queued.pop(0)
            if self._timeout_s is None:
                continue
            if self._warm:
                self._running[future] = self._clock() + self._timeout_s
            else:
                self._running[future] = None
                if self._warmup_deadline is None:
                    self._warmup_deadline = (
                        self._clock() + self._timeout_s
                        + self._warmup_grace_s)

    def complete(self, future: Any) -> None:
        self._running.pop(future, None)
        if future in self._queued:
            self._queued.remove(future)
        if not self._warm:
            # First completion: the pool is demonstrably warm; the
            # still-running first-window tasks' own clocks start now.
            self._warm = True
            if self._timeout_s is not None:
                deadline = self._clock() + self._timeout_s
                for pending, armed in self._running.items():
                    if armed is None:
                        self._running[pending] = deadline
        self._fill()

    def next_timeout_s(self) -> Optional[float]:
        """Seconds until the earliest running-task deadline (>= 0)."""
        if self._timeout_s is None or not self._running:
            return None
        if not self._warm:
            return max(0.0, self._warmup_deadline - self._clock())
        return max(0.0, min(self._running.values()) - self._clock())

    def expired(self) -> List[Any]:
        """Running tasks whose own deadline has passed."""
        if self._timeout_s is None or not self._running:
            return []
        now = self._clock()
        if not self._warm:
            if self._warmup_deadline <= now:
                return list(self._running)
            return []
        return [future for future, deadline in self._running.items()
                if deadline <= now]


class Executor:
    """Cached, optionally-parallel runner for simulated executions.

    Parameters
    ----------
    jobs:
        Maximum worker processes; ``1`` (the default) never forks.
    store:
        Persistent result cache, or ``None`` to keep results only in
        the in-process memo.
    telemetry:
        Shared :class:`Telemetry`; a fresh one is created if omitted.
    progress:
        When true, batch entry points draw a live progress line on
        stderr.
    task_timeout:
        Per-task execution budget in seconds, measured from the moment
        the task enters the pool's running window (not from batch
        start, and not reset by sibling completions - see
        :class:`_TaskDeadlines`).  Until the pool's first completion
        the budget is widened by ``pool_warmup_grace_s`` so cold
        process spawn/import cost is not mistaken for a hang.  A task
        exceeding it declares the pool hung and the batch remainder
        re-runs serially.  ``None`` (the default) waits forever.  When
        a large batch is sharded into chunked worker tasks, one "task"
        is a whole chunk - budget accordingly.
    pool_warmup_grace_s:
        Extra seconds added to first-window budgets before the pool's
        first completion (default :data:`POOL_WARMUP_GRACE_S`); ``0``
        restores strict submission-time deadlines.
    retry:
        Backoff policy for :class:`TransientTaskError` failures in the
        serial path.
    fault_plan:
        A :class:`~repro.faults.plan.FaultPlan` to inject worker
        crash/hang faults from.  Attaching a plan also disconnects the
        persistent store (reads and writes) so a faulted run can never
        poison the cache; skipped writes count as ``tainted_skips``.
    """

    def __init__(self, jobs: int = 1,
                 store: Optional[ResultStore] = None,
                 telemetry: Optional[Telemetry] = None,
                 progress: bool = False,
                 task_timeout: Optional[float] = None,
                 pool_warmup_grace_s: float = POOL_WARMUP_GRACE_S,
                 retry: Optional[RetryPolicy] = None,
                 fault_plan: Optional["FaultPlan"] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if pool_warmup_grace_s < 0:
            raise ValueError("pool_warmup_grace_s must be >= 0")
        self.jobs = jobs
        self.store = store
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.progress = progress
        self.task_timeout = task_timeout
        self.pool_warmup_grace_s = pool_warmup_grace_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self._memo: Dict[str, Dict[str, Any]] = {}
        if self.store is not None:
            # Store get/put spans land in this executor's trace (an
            # active trace session overrides this inside the store).
            self.store.tracer = self.telemetry.tracer

    # -- cache layers --------------------------------------------------------
    def _fetch_store(self, keys: Sequence[str]
                     ) -> Dict[str, Dict[str, Any]]:
        """Batched store lookup for the keys the memo cannot serve.

        One :meth:`ResultStore.get_many` call: a single index refresh
        shared across the whole batch, instead of one ``get`` (and one
        potential directory rescan) per spec.
        """
        if self.store is None or self.fault_plan is not None:
            return {}
        wanted = [key for key in dict.fromkeys(keys)
                  if key not in self._memo]
        if not wanted:
            return {}
        return self.store.get_many(wanted)

    def _commit_many(self, items: List[Tuple[str, Dict[str, Any]]]
                     ) -> None:
        """Persist one chunk of freshly-executed payloads.

        The memo is already updated by the caller; this is only the
        store side, batched through :meth:`ResultStore.put_many` (a
        single-item chunk keeps the plain ``put`` path so store
        subclasses that intercept it — tests, chaos — see it).
        """
        if not items or self.store is None:
            return
        if self.fault_plan is not None:
            # Results produced under fault injection are suspect by
            # definition; refusing to persist them is what keeps the
            # shared cache unpoisoned (docs/FAULTS.md invariant 2).
            self.telemetry.count("tainted_skips", len(items))
            return
        with self.telemetry.stage("persist", entries=len(items)):
            try:
                if len(items) == 1:
                    self.store.put(items[0][0], items[0][1])
                else:
                    self.store.put_many(items)
            except OSError:
                # Unwritable cache (read-only dir, disk full):
                # results are correct without it, so degrade to
                # memo-only rather than failing the run.
                self.telemetry.count("store_errors")

    @property
    def hit_count(self) -> int:
        return (self.telemetry.counters.get("memo_hits", 0) +
                self.telemetry.counters.get("store_hits", 0))

    @property
    def alias_count(self) -> int:
        """In-batch duplicate specs served from their twin's execution.

        Not cache hits: the batch simply asked the same question twice,
        so they are counted apart (``alias_hits``) from ``memo_hits``/
        ``store_hits``.
        """
        return self.telemetry.counters.get("alias_hits", 0)

    @property
    def miss_count(self) -> int:
        return self.telemetry.counters.get("misses", 0)

    # -- batch execution -----------------------------------------------------
    def run(self, specs: Sequence[RunSpec],
            label: str = "run") -> List[RunResult]:
        """Execute a batch; results come back in input order."""
        specs = list(specs)
        with self.telemetry.stage("executor.run", label=label,
                                  batch=len(specs)):
            return self._run_batch(specs, label)

    def _run_batch(self, specs: List[RunSpec],
                   label: str) -> List[RunResult]:
        reporter = ProgressReporter(len(specs), label=label,
                                    enabled=self.progress)
        with self.telemetry.stage("hash"):
            keys = [spec.fingerprint() for spec in specs]

        payloads: List[Optional[Dict[str, Any]]] = []
        pending: List[Tuple[int, RunSpec]] = []
        # Duplicate specs inside one batch execute once; the extra
        # indices are aliases filled in at commit time.
        aliases: Dict[str, List[int]] = {}
        with self.telemetry.stage("lookup") as lookup_span:
            fetched = self._fetch_store(keys)
            for index, (spec, key) in enumerate(zip(specs, keys)):
                payload = self._memo.get(key)
                if payload is not None:
                    self.telemetry.count("memo_hits")
                else:
                    payload = fetched.get(key)
                    if payload is not None:
                        self.telemetry.count("store_hits")
                        self._memo[key] = payload
                payloads.append(payload)
                if payload is not None:
                    reporter.update(hits=self.hit_count,
                                    misses=self.miss_count)
                elif key in aliases:
                    # An in-batch duplicate, not a cache hit: the twin
                    # that is about to execute will fill it in.
                    self.telemetry.count("alias_hits")
                    aliases[key].append(index)
                    reporter.update(hits=self.hit_count,
                                    misses=self.miss_count)
                else:
                    self.telemetry.count("misses")
                    aliases[key] = []
                    pending.append((index, spec))
            lookup_span.annotate(hits=self.hit_count,
                                 aliases=self.alias_count,
                                 misses=len(pending))

        if pending:
            with self.telemetry.stage("simulate", pending=len(pending)):
                fresh: List[Tuple[str, Dict[str, Any]]] = []
                for index, payload in self._execute_pending(pending,
                                                            reporter):
                    payloads[index] = payload
                    for duplicate in aliases[keys[index]]:
                        payloads[duplicate] = payload
                    self._memo[keys[index]] = payload
                    fresh.append((keys[index], payload))
                    if len(fresh) >= COMMIT_CHUNK:
                        self._commit_many(fresh)
                        fresh = []
                self._commit_many(fresh)
        reporter.finish()

        with self.telemetry.stage("decode"):
            results = [serde.run_result_from_dict(payload)
                       for payload in payloads]
            # Surface solver-cap exhaustion (docs/SOLVER.md): a result
            # whose fixed point hit the iteration cap is still returned,
            # but never silently.
            for result in results:
                if not result.converged:
                    self.telemetry.count("nonconverged_results")
        return results

    def _execute_pending(self, pending: List[Tuple[int, RunSpec]],
                         reporter: ProgressReporter):
        """Yield ``(index, payload)`` as work completes.

        The pool path may die mid-stream (worker crash, hang past
        ``task_timeout``); completed indices are tracked so the serial
        fallback executes only the remainder - never a task that
        already yielded its payload.
        """
        workers = min(self.jobs, len(pending))
        completed: Set[int] = set()
        fell_back = False
        if workers > 1 and self._picklable(pending):
            try:
                for index, payload in self._execute_pool(pending, workers,
                                                         reporter):
                    completed.add(index)
                    yield index, payload
                return
            except WorkerCrashError:
                # Infrastructure failure only (dead worker, hung pool,
                # fork limits): the work itself is presumed fine, so
                # run what's left serially.  Deterministic task errors
                # are NOT caught here - they propagate with the
                # original traceback.
                self.telemetry.count("pool_fallbacks")
                fell_back = True
        if (not fell_back and self.fault_plan is None and
                len(pending) >= MIN_BATCH_GROUP):
            # Primary serial path only: the post-crash fallback and
            # fault-injected runs keep the one-spec-at-a-time loop so
            # retry/injection semantics stay per-task.
            yield from self._execute_serial_batch(pending, reporter)
            return
        for index, spec in pending:
            if index in completed:
                continue
            with self.telemetry.stage(
                    "task", index=index, worker="serial",
                    fingerprint=spec.fingerprint()[:12],
                    fallback=fell_back):
                payload = self._execute_serial_task(
                    spec, index, attempt=1 if fell_back else 0)
            reporter.update(hits=self.hit_count,
                            misses=self.miss_count)
            yield index, payload

    def _execute_serial_batch(self, pending: List[Tuple[int, RunSpec]],
                              reporter: ProgressReporter):
        """Serial execution through the vectorized batch solver.

        The whole pending remainder solves as **one** masked
        cross-machine batch via :meth:`Machine.run_batch_multi`: every
        lane carries its own (platform, noise, seed), so a suite
        population spanning SKX/SPR/EMR at several noise/seed
        identities no longer splits into per-machine groups.  Replay
        mode is bit-identical to looped :meth:`Machine.run`, so the
        executor's byte-identity guarantee (``-j 1`` == ``-j N``, cold
        == warm) is preserved while the population pays one masked
        fixed point instead of one per machine identity.

        The spec's captured ``slow_device`` does not join the lane
        identity because placements resolve their slow tier through
        the global device registry (:meth:`Placement.slow_device`),
        identically under either machine instance.
        """
        specs = [spec for _, spec in pending]
        with self.telemetry.stage("batch_solve", size=len(pending),
                                  worker="serial"):
            results = Machine.run_batch_multi(specs)
        self.telemetry.count("batched_solves")
        for (index, _), result in zip(pending, results):
            payload = serde.run_result_to_dict(result)
            reporter.update(hits=self.hit_count,
                            misses=self.miss_count)
            yield index, payload

    def _execute_serial_task(self, spec: RunSpec, index: int,
                             attempt: int = 0) -> Dict[str, Any]:
        """Execute one spec in-process, retrying transient failures.

        ``attempt`` starts at 1 when the task already failed once in
        the pool, so injected first-attempt faults are not re-drawn.

        Retry sleeps draw full jitter keyed by the spec fingerprint
        (:meth:`RetryPolicy.delays`), so coalesced twins of one failing
        task do not storm back in lockstep; the total time slept is
        surfaced as ``retry_delay_ms`` telemetry.
        """
        plan = self.fault_plan
        delays = self.retry.delays(key=spec.fingerprint())
        while True:
            try:
                if plan is not None:
                    action = plan.worker_action(index, attempt)
                    if action is not None:
                        self.telemetry.count(f"injected_{action.mode}")
                        raise TransientTaskError(
                            f"injected worker {action.mode} "
                            f"(task {index}, attempt {attempt})")
                return execute_run_spec(spec)
            except TransientTaskError:
                delay = next(delays, None)
                if delay is None:
                    raise
                self.telemetry.count("retries")
                if delay > 0:
                    self.telemetry.count("retry_delay_ms",
                                         int(delay * 1000.0))
                    time.sleep(delay)
                attempt += 1

    def _execute_pool(self, pending: List[Tuple[int, RunSpec]],
                      workers: int, reporter: ProgressReporter):
        with self.telemetry.stage("pool", workers=workers,
                                  pending=len(pending)):
            yield from self._pool_results(pending, workers, reporter)

    def _pool_results(self, pending: List[Tuple[int, RunSpec]],
                      workers: int, reporter: ProgressReporter):
        self.telemetry.count("pool_workers", workers)
        plan = self.fault_plan
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except OSError as exc:
            # Sandboxed /dev/shm, fork limits: the pool never existed.
            raise WorkerCrashError(
                f"could not start worker pool: {exc}") from exc
        completed = False
        deadlines = _TaskDeadlines(self.task_timeout, workers,
                                   warmup_grace_s=self.pool_warmup_grace_s)
        try:
            try:
                futures = set()
                if plan is None:
                    # Shard the batch so each worker task solves a
                    # whole chunk through the batch solver instead of
                    # one spec: -j N then benefits from run_batch the
                    # same way -j 1 does.  When the per-worker share
                    # falls below MIN_BATCH_GROUP, per-spec tasks keep
                    # every worker busy instead of starving the pool
                    # with one undersized chunk.
                    share = -(-len(pending) // workers)
                    if share >= MIN_BATCH_GROUP:
                        for start in range(0, len(pending), share):
                            chunk = pending[start:start + share]
                            self.telemetry.count("pool_chunks")
                            future = pool.submit(_batch_execute, chunk)
                            futures.add(future)
                            deadlines.submit(future)
                    else:
                        for item in pending:
                            future = pool.submit(_indexed_execute, item)
                            futures.add(future)
                            deadlines.submit(future)
                else:
                    for index, spec in pending:
                        action = plan.worker_action(index, attempt=0)
                        if action is not None:
                            self.telemetry.count(
                                f"injected_{action.mode}")
                        future = pool.submit(
                            _indexed_execute_faulted, (index, spec, plan))
                        futures.add(future)
                        deadlines.submit(future)
            except BrokenExecutor as exc:
                raise WorkerCrashError(str(exc) or
                                       "worker pool broke") from exc
            while futures:
                done, futures = wait(
                    futures, timeout=deadlines.next_timeout_s(),
                    return_when=FIRST_COMPLETED)
                if not done and deadlines.expired():
                    # Per-task deadline, not since-last-completion: a
                    # hung task on a busy pool cannot ride its
                    # siblings' completions past its own timeout.
                    raise TaskTimeoutError(
                        f"task exceeded its {self.task_timeout:g}s "
                        f"deadline; assuming hung worker")
                for future in done:
                    deadlines.complete(future)
                    try:
                        outcome = future.result()
                    except BrokenExecutor as exc:
                        raise WorkerCrashError(
                            str(exc) or "worker process died") from exc
                    # Chunked tasks return a list of (index, payload);
                    # per-spec tasks return a single pair.
                    items = (outcome if isinstance(outcome, list)
                             else [outcome])
                    for index, payload in items:
                        reporter.update(hits=self.hit_count,
                                        misses=self.miss_count)
                        yield index, payload
            completed = True
        finally:
            # Error paths (including a hung worker) must not block on
            # pool teardown; a clean finish waits for orderly exit.
            pool.shutdown(wait=completed, cancel_futures=not completed)

    @staticmethod
    def _picklable(payload: Any) -> bool:
        try:
            pickle.dumps(payload)
            return True
        except Exception:   # camp-lint: disable=ERR01 -- pickling probe: pickle raises arbitrary user exception types
            return False

    # -- conveniences --------------------------------------------------------
    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run([spec])[0]

    def profile(self, specs: Sequence[RunSpec],
                label: str = "profile") -> List[ProfiledRun]:
        return [result.profiled() for result in self.run(specs, label)]

    def profiler(self, machine: Machine
                 ) -> Callable[..., ProfiledRun]:
        """A drop-in replacement for ``machine.profile`` that routes
        single profiling calls through the cache layers."""
        def profile(workload, placement=None) -> ProfiledRun:
            spec = RunSpec.from_machine(machine, workload, placement)
            return self.run_one(spec).profiled()
        return profile

    def calibration(self, machine: Machine, device: str,
                    benchmarks: Optional[Sequence] = None):
        """Store-backed CAMP calibration (see
        :func:`repro.core.calibration.calibrate`)."""
        from ..core.calibration import calibrate
        return calibrate(machine, device, benchmarks,
                         store=self.store, executor=self)

    def map(self, fn: Callable[[T], R], items: Sequence[T],
            label: str = "task") -> List[R]:
        """Order-preserving parallel map with serial fallback.

        For work that is not content-addressable (e.g. epoch-coupled
        tiering simulations): no caching, just fan-out.  Falls back to
        a plain loop when ``jobs == 1``, the batch is trivial, or
        ``fn``/items cannot be pickled.  A broken pool also degrades to
        serial; an exception raised by ``fn`` itself is deterministic
        and propagates.
        """
        items = list(items)
        with self.telemetry.stage("executor.map", label=label,
                                  batch=len(items)):
            return self._map_batch(fn, items, label)

    def _map_batch(self, fn: Callable[[T], R], items: List[T],
                   label: str) -> List[R]:
        reporter = ProgressReporter(len(items), label=label,
                                    enabled=self.progress)
        workers = min(self.jobs, len(items))
        results: Optional[List[R]] = None
        if workers > 1:
            if self._picklable((fn, items)):
                try:
                    with self.telemetry.stage("simulate"):
                        with ProcessPoolExecutor(
                                max_workers=workers) as pool:
                            results = []
                            for result in pool.map(
                                    _call,
                                    [(fn, item) for item in items]):
                                results.append(result)
                                reporter.update()
                except (BrokenExecutor, OSError):
                    self.telemetry.count("pool_fallbacks")
                    results = None
            else:
                self.telemetry.count("pool_fallbacks")
        if results is None:
            with self.telemetry.stage("simulate"):
                results = []
                for item in items:
                    results.append(fn(item))
                    reporter.update()
        reporter.finish()
        return results
