"""Fan simulated runs out over processes, through the result cache.

:class:`Executor` is the one entry point every driver (CLI subcommands,
:class:`~repro.analysis.lab.Lab`, the calibration fitter, the fleet
planner) uses to execute :class:`~repro.runtime.spec.RunSpec` batches.
It layers three caches and one pool:

1. an in-process memo (fingerprint -> payload), so a driver that asks
   for the same run twice in one invocation pays nothing;
2. the persistent :class:`~repro.runtime.store.ResultStore`, shared
   across invocations and across ``-j`` settings;
3. only the genuinely-missing specs are executed - in a
   ``ProcessPoolExecutor`` when ``jobs > 1`` and the batch is
   picklable, serially otherwise (``-j 1``, single-item batches, or
   any pool failure fall back transparently).

Results always return in input order, independent of completion order,
and every result - hit or miss, serial or parallel - passes through the
same JSON round-trip (:mod:`repro.runtime.serde`), which is what makes
``-j 1`` and ``-j 4`` outputs byte-identical, cold and warm.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    TypeVar)

from ..core.counters import ProfiledRun
from ..uarch.machine import Machine, RunResult
from . import serde
from .spec import RunSpec
from .store import ResultStore
from .telemetry import ProgressReporter, Telemetry

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable overriding the default worker count.
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the CPU count."""
    value = os.environ.get(JOBS_ENV)
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def execute_run_spec(spec: RunSpec) -> Dict[str, Any]:
    """Execute one spec and return its serialized payload.

    Module-level so process-pool workers can import it by reference;
    returning the serialized form keeps a single decode path for cached
    and fresh results.
    """
    return serde.run_result_to_dict(spec.execute())


def _indexed_execute(item: Tuple[int, RunSpec]) -> Tuple[int, Dict[str, Any]]:
    index, spec = item
    return index, execute_run_spec(spec)


def _call(item: Tuple[Callable[[T], R], T]) -> R:
    fn, arg = item
    return fn(arg)


class Executor:
    """Cached, optionally-parallel runner for simulated executions.

    Parameters
    ----------
    jobs:
        Maximum worker processes; ``1`` (the default) never forks.
    store:
        Persistent result cache, or ``None`` to keep results only in
        the in-process memo.
    telemetry:
        Shared :class:`Telemetry`; a fresh one is created if omitted.
    progress:
        When true, batch entry points draw a live progress line on
        stderr.
    """

    def __init__(self, jobs: int = 1,
                 store: Optional[ResultStore] = None,
                 telemetry: Optional[Telemetry] = None,
                 progress: bool = False):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.store = store
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.progress = progress
        self._memo: Dict[str, Dict[str, Any]] = {}

    # -- cache layers --------------------------------------------------------
    def _lookup(self, key: str) -> Optional[Dict[str, Any]]:
        payload = self._memo.get(key)
        if payload is not None:
            self.telemetry.count("memo_hits")
            return payload
        if self.store is not None:
            payload = self.store.get(key)
            if payload is not None:
                self.telemetry.count("store_hits")
                self._memo[key] = payload
                return payload
        return None

    def _commit(self, key: str, payload: Dict[str, Any]) -> None:
        self._memo[key] = payload
        if self.store is not None:
            with self.telemetry.stage("persist"):
                try:
                    self.store.put(key, payload)
                except OSError:
                    # Unwritable cache (read-only dir, disk full):
                    # results are correct without it, so degrade to
                    # memo-only rather than failing the run.
                    self.telemetry.count("store_errors")

    @property
    def hit_count(self) -> int:
        return (self.telemetry.counters.get("memo_hits", 0) +
                self.telemetry.counters.get("store_hits", 0))

    @property
    def miss_count(self) -> int:
        return self.telemetry.counters.get("misses", 0)

    # -- batch execution -----------------------------------------------------
    def run(self, specs: Sequence[RunSpec],
            label: str = "run") -> List[RunResult]:
        """Execute a batch; results come back in input order."""
        specs = list(specs)
        reporter = ProgressReporter(len(specs), label=label,
                                    enabled=self.progress)
        with self.telemetry.stage("hash"):
            keys = [spec.fingerprint() for spec in specs]

        payloads: List[Optional[Dict[str, Any]]] = []
        pending: List[Tuple[int, RunSpec]] = []
        # Duplicate specs inside one batch execute once; the extra
        # indices are aliases filled in at commit time.
        aliases: Dict[str, List[int]] = {}
        with self.telemetry.stage("lookup"):
            for index, (spec, key) in enumerate(zip(specs, keys)):
                payload = self._lookup(key)
                payloads.append(payload)
                if payload is not None:
                    reporter.update(hits=self.hit_count,
                                    misses=self.miss_count)
                elif key in aliases:
                    self.telemetry.count("memo_hits")
                    aliases[key].append(index)
                    reporter.update(hits=self.hit_count,
                                    misses=self.miss_count)
                else:
                    self.telemetry.count("misses")
                    aliases[key] = []
                    pending.append((index, spec))

        if pending:
            with self.telemetry.stage("simulate"):
                for index, payload in self._execute_pending(pending,
                                                            reporter):
                    payloads[index] = payload
                    for duplicate in aliases[keys[index]]:
                        payloads[duplicate] = payload
                    self._commit(keys[index], payload)
        reporter.finish()

        with self.telemetry.stage("decode"):
            results = [serde.run_result_from_dict(payload)
                       for payload in payloads]
        return results

    def _execute_pending(self, pending: List[Tuple[int, RunSpec]],
                         reporter: ProgressReporter):
        """Yield ``(index, payload)`` as work completes."""
        workers = min(self.jobs, len(pending))
        if workers > 1 and self._picklable(pending):
            try:
                yield from self._execute_pool(pending, workers, reporter)
                return
            except Exception:
                # Pool startup/teardown failure (sandboxed /dev/shm,
                # broken worker, ...): degrade to serial execution.
                self.telemetry.count("pool_fallbacks")
        for index, spec in pending:
            payload = execute_run_spec(spec)
            reporter.update(hits=self.hit_count,
                            misses=self.miss_count)
            yield index, payload

    def _execute_pool(self, pending: List[Tuple[int, RunSpec]],
                      workers: int, reporter: ProgressReporter):
        self.telemetry.count("pool_workers", workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_indexed_execute, item)
                       for item in pending}
            while futures:
                done, futures = wait(futures,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    index, payload = future.result()
                    reporter.update(hits=self.hit_count,
                                    misses=self.miss_count)
                    yield index, payload

    @staticmethod
    def _picklable(pending: List[Tuple[int, RunSpec]]) -> bool:
        try:
            pickle.dumps(pending)
            return True
        except Exception:
            return False

    # -- conveniences --------------------------------------------------------
    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run([spec])[0]

    def profile(self, specs: Sequence[RunSpec],
                label: str = "profile") -> List[ProfiledRun]:
        return [result.profiled() for result in self.run(specs, label)]

    def profiler(self, machine: Machine
                 ) -> Callable[..., ProfiledRun]:
        """A drop-in replacement for ``machine.profile`` that routes
        single profiling calls through the cache layers."""
        def profile(workload, placement=None) -> ProfiledRun:
            spec = RunSpec.from_machine(machine, workload, placement)
            return self.run_one(spec).profiled()
        return profile

    def calibration(self, machine: Machine, device: str,
                    benchmarks: Optional[Sequence] = None):
        """Store-backed CAMP calibration (see
        :func:`repro.core.calibration.calibrate`)."""
        from ..core.calibration import calibrate
        return calibrate(machine, device, benchmarks,
                         store=self.store, executor=self)

    def map(self, fn: Callable[[T], R], items: Sequence[T],
            label: str = "task") -> List[R]:
        """Order-preserving parallel map with serial fallback.

        For work that is not content-addressable (e.g. epoch-coupled
        tiering simulations): no caching, just fan-out.  Falls back to
        a plain loop when ``jobs == 1``, the batch is trivial, or
        ``fn``/items cannot be pickled.
        """
        items = list(items)
        reporter = ProgressReporter(len(items), label=label,
                                    enabled=self.progress)
        workers = min(self.jobs, len(items))
        results: Optional[List[R]] = None
        if workers > 1:
            try:
                pickle.dumps((fn, items))
                with self.telemetry.stage("simulate"):
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        results = []
                        for result in pool.map(
                                _call, [(fn, item) for item in items]):
                            results.append(result)
                            reporter.update()
            except Exception:
                self.telemetry.count("pool_fallbacks")
                results = None
        if results is None:
            with self.telemetry.stage("simulate"):
                results = []
                for item in items:
                    results.append(fn(item))
                    reporter.update()
        reporter.finish()
        return results
