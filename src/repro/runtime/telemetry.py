"""Runtime observability: span-backed stage timings, counters, progress.

The executor threads one :class:`Telemetry` object through a batch of
work.  Stage timing is delegated to a hierarchical
:class:`~repro.obs.tracer.Tracer`: ``stage(name)`` opens a *span*, so
nested regions (``persist`` inside ``simulate`` inside
``executor.run``) are attributed once as self-time instead of being
summed twice - the report's total can never exceed the measured
wall-clock (``docs/OBSERVABILITY.md``).  Event counters (cache hits by
layer, alias hits, misses, worker pool size) stay here.

When a trace session is active (``python -m repro trace <cmd>``), a
fresh :class:`Telemetry` attaches to the session's tracer instead of a
private one, so every executor, store, and machine span in the process
lands in one exportable trace.

:class:`ProgressReporter` is the live side: a single-line carriage-
return progress display on stderr, so stdout stays byte-identical with
and without progress reporting - a property the parallel-vs-serial
equivalence tests rely on.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, TextIO

from ..obs.report import render_report
from ..obs.tracer import Span, Tracer, active_tracer


class Telemetry:
    """Span-backed stage timings plus named event counters."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        if tracer is None:
            tracer = active_tracer()
        self.tracer = tracer if tracer is not None else Tracer()
        self.counters: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str, **attrs) -> Iterator[Span]:
        """Open a named span (nested and reentrant are both fine)."""
        with self.tracer.span(name, **attrs) as span:
            yield span

    def count(self, name: str, increment: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + increment

    @property
    def stage_seconds(self) -> Dict[str, float]:
        """Cumulative seconds per span name (compatibility view).

        Cumulative times of *different* names still overlap when the
        spans nest - use :meth:`summary`'s ``self_s`` for additive
        accounting.
        """
        return {name: stats.cumulative_s
                for name, stats in self.tracer.stats.items()}

    def merge(self, other: "Telemetry") -> None:
        """Fold another telemetry's spans and counters into this one.

        Used by drivers that run several executors (the chaos harness
        runs one per fault phase) but report once.  Telemetries sharing
        one tracer (an active trace session) merge counters only.
        """
        self.tracer.merge(other.tracer)
        for name, value in other.counters.items():
            self.count(name, value)

    # -- reporting -----------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "spans": {name: {"count": stats.count,
                             "cumulative_s": stats.cumulative_s,
                             "self_s": stats.self_s}
                      for name, stats in self.tracer.stats.items()},
            "counters": dict(self.counters),
        }

    def render(self) -> str:
        """A compact multi-line text report for the CLI."""
        return render_report(self.tracer, self.counters)


class ProgressReporter:
    """Single-line live progress on stderr (CLI ``--progress``).

    ``update`` redraws the line in place; ``finish`` terminates it.
    A disabled reporter (``enabled=False``) is a no-op, so call sites
    never need to branch.
    """

    def __init__(self, total: int, label: str = "run",
                 enabled: bool = True,
                 stream: Optional[TextIO] = None) -> None:
        self.total = total
        self.label = label
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self._dirty = False

    def update(self, done: Optional[int] = None, hits: int = 0,
               misses: int = 0) -> None:
        if done is not None:
            self.done = done
        else:
            self.done += 1
        if not self.enabled:
            return
        message = (f"\r[{self.label}] {self.done}/{self.total} "
                   f"· {hits} cache hit(s) · {misses} miss(es)")
        self.stream.write(message)
        self.stream.flush()
        self._dirty = True

    def finish(self) -> None:
        if self.enabled and self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
