"""Runtime observability: stage timings, cache counters, progress.

The executor threads one :class:`Telemetry` object through a batch of
work.  It accumulates wall-clock time per named stage (``hash``,
``simulate``, ``persist``, ``decode``) and event counters (cache hits
by layer, misses, worker pool size), and renders them as the compact
report the CLI prints under ``--progress``.

:class:`ProgressReporter` is the live side: a single-line carriage-
return progress display on stderr, so stdout stays byte-identical with
and without progress reporting - a property the parallel-vs-serial
equivalence tests rely on.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, TextIO


class Telemetry:
    """Per-stage wall-clock timings plus named event counters."""

    def __init__(self) -> None:
        self.stage_seconds: Dict[str, float] = {}
        self.counters: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a named stage (accumulates across invocations)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stage_seconds[name] = \
                self.stage_seconds.get(name, 0.0) + elapsed

    def count(self, name: str, increment: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + increment

    def merge(self, other: "Telemetry") -> None:
        """Fold another telemetry's stages and counters into this one.

        Used by drivers that run several executors (the chaos harness
        runs one per fault phase) but report once.
        """
        for name, seconds in other.stage_seconds.items():
            self.stage_seconds[name] = \
                self.stage_seconds.get(name, 0.0) + seconds
        for name, value in other.counters.items():
            self.count(name, value)

    # -- reporting -----------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {"stages": dict(self.stage_seconds),
                "counters": dict(self.counters)}

    def render(self) -> str:
        """A compact multi-line text report for the CLI."""
        lines = []
        if self.stage_seconds:
            total = sum(self.stage_seconds.values())
            lines.append("stage timings:")
            for name, seconds in sorted(self.stage_seconds.items(),
                                        key=lambda kv: -kv[1]):
                lines.append(f"  {name:<12s} {seconds:8.3f}s")
            lines.append(f"  {'total':<12s} {total:8.3f}s")
        if self.counters:
            lines.append("counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name:<18s} {value:8d}")
        return "\n".join(lines)


class ProgressReporter:
    """Single-line live progress on stderr (CLI ``--progress``).

    ``update`` redraws the line in place; ``finish`` terminates it.
    A disabled reporter (``enabled=False``) is a no-op, so call sites
    never need to branch.
    """

    def __init__(self, total: int, label: str = "run",
                 enabled: bool = True,
                 stream: Optional[TextIO] = None) -> None:
        self.total = total
        self.label = label
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self._dirty = False

    def update(self, done: Optional[int] = None, hits: int = 0,
               misses: int = 0) -> None:
        if done is not None:
            self.done = done
        else:
            self.done += 1
        if not self.enabled:
            return
        message = (f"\r[{self.label}] {self.done}/{self.total} "
                   f"· {hits} cache hit(s) · {misses} miss(es)")
        self.stream.write(message)
        self.stream.flush()
        self._dirty = True

    def finish(self) -> None:
        if self.enabled and self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
