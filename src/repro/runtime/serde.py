"""Serialization for the objects the result cache persists.

This module is the single place that knows how to flatten the
simulator's dataclasses into plain dicts and rebuild them exactly.

Round-trips are lossless: every field is a float, int, bool, string, or
a nested dataclass of those, so ``from_dict(to_dict(x))`` reconstructs
``x`` bit-for-bit.  That exactness is load-bearing - it is what makes
warm-cache and cold-cache runs (and serial and parallel runs, which
share this code path) produce byte-identical reports.

Inside a :class:`~repro.runtime.store.ResultStore` record the dict
payload is encoded with :mod:`marshal` (see :func:`payload_to_bytes`):
C-speed both ways, floats stored as binary doubles rather than decimal
strings, and loading never executes code.  Cache *keys* remain
canonical JSON through :func:`repro.runtime.spec.canonical_json` -
payload encoding is a private store detail (docs/STORE.md), key
fingerprints are a public contract.
"""

from __future__ import annotations

import marshal
from dataclasses import asdict
from typing import Any, Dict, Optional

from ..core.calibration import Calibration
from ..core.counters import Counter, CounterSample, ProfiledRun
from ..uarch.caches import DemandProfile
from ..uarch.config import MemoryDeviceConfig, PlatformConfig
from ..uarch.core import CycleBreakdown
from ..uarch.interleave import Placement
from ..uarch.machine import RunResult
from ..uarch.prefetcher import PrefetchProfile
from ..workloads.spec import WorkloadSpec

# ---------------------------------------------------------------------------
# Payload bytes: what actually lands inside a store record.
# ---------------------------------------------------------------------------

#: ``marshal`` data format version pinned into every record payload
#: (docs/STORE.md, "Payload encoding").
PAYLOAD_MARSHAL_VERSION = 4


def payload_to_bytes(payload: Dict[str, Any]) -> bytes:
    """Binary encoding of one cache payload.

    Payloads are plain data - dicts of floats, ints, bools, strings,
    and lists/dicts of those - which :func:`marshal.dumps` round-trips
    bit-for-bit at C speed; an earlier canonical-JSON encoding spent
    more time formatting floats than the store spent on I/O.  The
    format version is pinned, and a payload written by an incompatible
    interpreter simply fails :func:`payload_from_bytes`, which the
    store reads as corruption: a miss, never an error.
    """
    return marshal.dumps(payload, PAYLOAD_MARSHAL_VERSION)


def payload_from_bytes(raw: bytes) -> Dict[str, Any]:
    """Decode record payload bytes; ``ValueError`` on any damage.

    :func:`marshal.loads` constructs plain values only - unlike
    pickle, damaged or hostile payload bytes cannot execute code; they
    raise, and the store counts the record corrupt.
    """
    try:
        payload = marshal.loads(raw)
    except (EOFError, ValueError, TypeError) as exc:
        raise ValueError("undecodable payload bytes") from exc
    if not isinstance(payload, dict):
        raise ValueError("payload is not a dict")
    return payload


# ---------------------------------------------------------------------------
# Configuration objects.
# ---------------------------------------------------------------------------

def device_to_dict(device: MemoryDeviceConfig) -> Dict[str, Any]:
    return asdict(device)


def device_from_dict(data: Dict[str, Any]) -> MemoryDeviceConfig:
    return MemoryDeviceConfig(**data)


def platform_to_dict(platform: PlatformConfig) -> Dict[str, Any]:
    return asdict(platform)


def platform_from_dict(data: Dict[str, Any]) -> PlatformConfig:
    data = dict(data)
    data["dram"] = device_from_dict(data["dram"])
    return PlatformConfig(**data)


def workload_to_dict(workload: WorkloadSpec) -> Dict[str, Any]:
    data = asdict(workload)
    data["tags"] = list(workload.tags)
    return data


def workload_from_dict(data: Dict[str, Any]) -> WorkloadSpec:
    data = dict(data)
    data["tags"] = tuple(data.get("tags", ()))
    return WorkloadSpec(**data)


def placement_to_dict(placement: Placement) -> Dict[str, Any]:
    return asdict(placement)


def placement_from_dict(data: Dict[str, Any]) -> Placement:
    return Placement(**data)


# ---------------------------------------------------------------------------
# Counter samples and profiled runs.
# ---------------------------------------------------------------------------

def sample_to_dict(sample: CounterSample) -> Dict[str, float]:
    return {counter.value: value for counter, value in sample.items()}


def sample_from_dict(data: Dict[str, float]) -> CounterSample:
    return CounterSample({Counter(key): value
                          for key, value in data.items()})


def profiled_run_to_dict(run: ProfiledRun) -> Dict[str, Any]:
    return {
        "sample": sample_to_dict(run.sample),
        "platform_family": run.platform_family,
        "tier": run.tier,
        "frequency_ghz": run.frequency_ghz,
        "duration_s": run.duration_s,
        "label": run.label,
        "windows": [sample_to_dict(window) for window in run.windows],
    }


def profiled_run_from_dict(data: Dict[str, Any]) -> ProfiledRun:
    return ProfiledRun(
        sample=sample_from_dict(data["sample"]),
        platform_family=data["platform_family"],
        tier=data["tier"],
        frequency_ghz=data["frequency_ghz"],
        duration_s=data["duration_s"],
        label=data.get("label", ""),
        windows=tuple(sample_from_dict(window)
                      for window in data.get("windows", [])),
    )


# ---------------------------------------------------------------------------
# Full run results.
# ---------------------------------------------------------------------------

def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    return {
        "workload": workload_to_dict(result.workload),
        "placement": placement_to_dict(result.placement),
        "platform": platform_to_dict(result.platform),
        "breakdown": asdict(result.breakdown),
        "demand": asdict(result.demand),
        "prefetch": asdict(result.prefetch),
        "counters": sample_to_dict(result.counters),
        "observed_read_ns": result.observed_read_ns,
        "tier_read_ns": result.tier_read_ns,
        "rfo_ns": result.rfo_ns,
        "dram_latency_ns": result.dram_latency_ns,
        "slow_latency_ns": result.slow_latency_ns,
        "dram_gbps": result.dram_gbps,
        "slow_gbps": result.slow_gbps,
        "dram_utilization": result.dram_utilization,
        "slow_utilization": result.slow_utilization,
        "runtime_s": result.runtime_s,
        "converged": result.converged,
    }


def run_result_from_dict(data: Dict[str, Any]) -> RunResult:
    slow_latency_ns: Optional[float] = data["slow_latency_ns"]
    return RunResult(
        workload=workload_from_dict(data["workload"]),
        placement=placement_from_dict(data["placement"]),
        platform=platform_from_dict(data["platform"]),
        breakdown=CycleBreakdown(**data["breakdown"]),
        demand=DemandProfile(**data["demand"]),
        prefetch=PrefetchProfile(**data["prefetch"]),
        counters=sample_from_dict(data["counters"]),
        observed_read_ns=data["observed_read_ns"],
        tier_read_ns=data["tier_read_ns"],
        rfo_ns=data["rfo_ns"],
        dram_latency_ns=data["dram_latency_ns"],
        slow_latency_ns=slow_latency_ns,
        dram_gbps=data["dram_gbps"],
        slow_gbps=data["slow_gbps"],
        dram_utilization=data["dram_utilization"],
        slow_utilization=data["slow_utilization"],
        runtime_s=data["runtime_s"],
        converged=data["converged"],
    )


# ---------------------------------------------------------------------------
# Calibrations (already have a dict form; re-exported for symmetry).
# ---------------------------------------------------------------------------

def calibration_to_dict(calibration: Calibration) -> Dict[str, Any]:
    return calibration.to_dict()


def calibration_from_dict(data: Dict[str, Any]) -> Calibration:
    return Calibration.from_dict(data)
