"""Command-line interface: ``python -m repro <command>``.

Drives the library end-to-end from a shell, the way an operator would:

====================  ====================================================
``calibrate``         run the microbenchmark suite, save a calibration
``predict``           DRAM-only profile -> per-component CXL forecast
``classify``          latency- vs bandwidth-bound (Fig. 12 branch)
``sweep``             synthesize (and optionally measure) an
                      interleaving curve; report the Best-shot ratio
``suite``             prediction-accuracy table over the 265 workloads
``fleet``             CAMP-guided capacity plan for a job mix; with
                      ``--nodes`` run a fleet-scale colocation policy
                      tournament and emit the ``repro-fleet/1`` report
                      (docs/FLEET.md)
``dynamics``          simulate a reactive migration loop vs Best-shot
``chaos``             run the suite under fault injection and check the
                      graceful-degradation invariants; ``--target
                      serve`` drives a live server instead
``serve``             online prediction service: coalesced batch
                      solves, admission control, per-request deadlines,
                      store circuit breaker (docs/SERVE.md)
``loadgen``           open-loop constant-rate load against a running
                      server; prints and saves the SLO report
``workloads``         list the named paper workloads
``cache``             inspect / compact / clear / migrate the persistent
                      result store (docs/STORE.md)
``lint``              camp-lint: statically check the determinism /
                      cache-key / PMU invariants (docs/LINT.md)
``trace``             re-run any other command under a span-trace
                      session; export Chrome trace-event JSON / JSONL
                      (docs/OBSERVABILITY.md)
``bench``             time the pinned runtime micro-suite; emit a
                      schema-versioned bench payload
====================  ====================================================

Profiling runs execute on the simulated machine; on real hardware the
same commands would wrap ``perf stat`` - the models only ever see
counters.

Every simulating subcommand accepts the shared runtime flags
(``docs/RUNTIME.md``): ``-j/--jobs N`` fans independent runs out over N
worker processes (``-j auto`` uses every core), results are cached
persistently under ``--cache-dir`` (default ``.repro-cache``; disable
with ``--no-cache``), and ``--progress`` reports live progress plus
cache/timing telemetry on stderr - stdout stays identical either way.
Fault schedules and the chaos invariants are in ``docs/FAULTS.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

import numpy as np

from .analysis.reporting import ascii_table
from .analysis.stats import accuracy_summary
from .core.calibration import Calibration, calibrate
from .core.classify import classify
from .core.contention import ContentionAwarePredictor
from .core.interleaving import synthesize
from .core.slowdown import SlowdownPredictor
from .runtime.executor import Executor, default_jobs
from .runtime.spec import RunSpec
from .runtime.store import ResultStore, default_cache_dir
from .uarch.config import get_platform
from .uarch.interleave import Placement
from .uarch.machine import Machine, slowdown
from .workloads.suites import (EVALUATION_SUITE_SIZE, evaluation_suite,
                               get_workload, named_workloads)


def _machine(args) -> Machine:
    return Machine(get_platform(args.platform))


# ---------------------------------------------------------------------------
# Argument validation (argparse ``type=`` callables).  Rejecting bad
# values at parse time yields a usage error + exit code 2 instead of a
# confusing traceback (or silent nonsense) deep inside a run.
# ---------------------------------------------------------------------------

def _jobs_arg(value: str) -> int:
    """Worker count: a positive integer, or ``auto`` for all cores."""
    if value.strip().lower() == "auto":
        return default_jobs()
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (or 'auto' for all cores), got {jobs}")
    return jobs


def _cache_dir_arg(value: str) -> pathlib.Path:
    """Cache location whose parent directory must already exist.

    The store creates its own root on first write, but a nonexistent
    *parent* is almost always a typo - fail fast instead of scattering
    a cache tree across a wrong path.
    """
    path = pathlib.Path(value)
    parent = path if path.is_dir() else path.parent
    if not parent.is_dir():
        raise argparse.ArgumentTypeError(
            f"parent directory does not exist: {parent}")
    return path


def _repeats_arg(value: str) -> int:
    """Bench repeat count: a positive integer."""
    try:
        repeats = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {value!r}")
    if repeats < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {repeats}")
    return repeats


def _workload_count_arg(value: str) -> int:
    """A workload count within the evaluation population size."""
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {value!r}")
    if not 1 <= count <= EVALUATION_SUITE_SIZE:
        raise argparse.ArgumentTypeError(
            f"must be in 1..{EVALUATION_SUITE_SIZE}, got {count}")
    return count


def _executor(args) -> Executor:
    """Build the runtime (pool + persistent cache) from the CLI flags."""
    store = None
    if not getattr(args, "no_cache", False):
        root = getattr(args, "cache_dir", None)
        store = ResultStore(pathlib.Path(root) if root
                            else default_cache_dir())
    jobs = getattr(args, "jobs", None) or 1
    return Executor(jobs=jobs, store=store,
                    progress=getattr(args, "progress", False))


def _finish(args, executor: Executor) -> None:
    """Print the telemetry report (stderr) under ``--progress``."""
    if getattr(args, "progress", False):
        report = executor.telemetry.render()
        if report:
            print(report, file=sys.stderr)


def _load_calibration(args, machine: Machine,
                      executor: Optional[Executor] = None) -> Calibration:
    """Load from ``--calibration`` or calibrate (cached) on the fly."""
    if getattr(args, "calibration", None):
        return Calibration.from_json(
            pathlib.Path(args.calibration).read_text())
    if executor is not None:
        return executor.calibration(machine, args.device)
    return calibrate(machine, args.device)


def _resolve_workload(name: str, threads: Optional[int]):
    workload = get_workload(name)
    if threads:
        workload = workload.with_threads(threads)
    return workload


# ---------------------------------------------------------------------------
# Subcommands.
# ---------------------------------------------------------------------------

def cmd_calibrate(args) -> int:
    machine = _machine(args)
    executor = _executor(args)
    calibration = executor.calibration(machine, args.device)
    text = calibration.to_json()
    if args.out:
        pathlib.Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    _finish(args, executor)
    return 0


def cmd_predict(args) -> int:
    machine = _machine(args)
    executor = _executor(args)
    calibration = _load_calibration(args, machine, executor)
    predictor_cls = (ContentionAwarePredictor if args.contention_aware
                     else SlowdownPredictor)
    predictor = predictor_cls(calibration)

    workloads = [_resolve_workload(name, args.threads)
                 for name in args.workload]
    specs = [RunSpec.from_machine(machine, w, Placement.dram_only())
             for w in workloads]
    if args.verify:
        specs += [RunSpec.from_machine(
            machine, w, Placement.slow_only(calibration.device))
            for w in workloads]
    results = executor.run(specs, label="predict")
    dram_runs = results[:len(workloads)]
    slow_runs = results[len(workloads):]

    rows = []
    for index, (name, dram) in enumerate(zip(args.workload, dram_runs)):
        prediction = predictor.predict(dram.profiled())
        row = [name, prediction.drd, prediction.cache, prediction.store,
               prediction.total]
        if args.verify:
            actual = slowdown(dram, slow_runs[index])
            row += [actual, abs(prediction.total - actual)]
        rows.append(row)

    headers = ["workload", "S_DRd", "S_Cache", "S_Store", "total"]
    if args.verify:
        headers += ["actual", "error"]
    print(ascii_table(headers, rows))
    _finish(args, executor)
    return 0


def cmd_classify(args) -> int:
    machine = _machine(args)
    executor = _executor(args)
    calibration = _load_calibration(args, machine, executor)
    workloads = [_resolve_workload(name, args.threads)
                 for name in args.workload]
    profiles = executor.profile(
        [RunSpec.from_machine(machine, w, Placement.dram_only())
         for w in workloads], label="classify")
    rows = []
    for name, profile in zip(args.workload, profiles):
        decision = classify(profile, calibration.idle_latency_dram_ns,
                            tolerance=args.tolerance)
        rows.append([name, decision.workload_class.value,
                     decision.measured_latency_ns,
                     decision.idle_latency_ns,
                     decision.required_profiling_runs])
    print(ascii_table(["workload", "class", "measured ns", "idle ns",
                       "runs needed"], rows))
    _finish(args, executor)
    return 0


def cmd_sweep(args) -> int:
    machine = _machine(args)
    executor = _executor(args)
    calibration = _load_calibration(args, machine, executor)
    workload = _resolve_workload(args.workload, args.threads)

    dram = executor.run_one(
        RunSpec.from_machine(machine, workload, Placement.dram_only()))
    profile = dram.profiled()
    decision = classify(profile, calibration.idle_latency_dram_ns)
    slow_profile = None
    if decision.is_bandwidth_bound:
        slow_profile = executor.run_one(RunSpec.from_machine(
            machine, workload,
            Placement.slow_only(calibration.device))).profiled()
    model = synthesize(profile, calibration, slow_profile)

    ratios = [float(x) for x in np.linspace(1.0, 0.0, args.points)]
    measured = {}
    if args.measure:
        placements = {
            x: (Placement.dram_only() if x >= 1.0 else
                Placement.interleaved(x, calibration.device))
            for x in ratios
        }
        runs = executor.run(
            [RunSpec.from_machine(machine, workload, placements[x])
             for x in ratios], label="sweep")
        measured = {x: slowdown(dram, run)
                    for x, run in zip(ratios, runs)}

    rows = []
    for x in ratios:
        row = [f"{x:.2f}", model.predict(x).total]
        if args.measure:
            row.append(measured[x])
        rows.append(row)
    headers = ["x (dram)", "predicted S"]
    if args.measure:
        headers.append("actual S")
    print(f"{workload.name}: {decision.workload_class.value} "
          f"({decision.required_profiling_runs} profiling run(s))")
    print(ascii_table(headers, rows))

    x_best, s_best = model.optimal_ratio()
    print(f"\nBest-shot ratio: {x_best:.2f} "
          f"(predicted slowdown {s_best:+.3f}; "
          f"{'beneficial' if model.beneficial else 'defensive'})")
    _finish(args, executor)
    return 0


def cmd_suite(args) -> int:
    machine = _machine(args)
    executor = _executor(args)
    calibration = _load_calibration(args, machine, executor)
    predictor_cls = (ContentionAwarePredictor if args.contention_aware
                     else SlowdownPredictor)
    predictor = predictor_cls(calibration)

    # The named workloads are the (deterministic) prefix of the
    # evaluation suite, so a small --workloads N never has to pay for
    # generating the full 265-workload population.
    named = list(named_workloads().values())
    if args.limit and args.limit <= len(named):
        workloads = named[:args.limit]
    else:
        workloads = evaluation_suite()
        if args.limit:
            workloads = workloads[:args.limit]
    specs = []
    for workload in workloads:
        specs.append(RunSpec.from_machine(machine, workload,
                                          Placement.dram_only()))
        specs.append(RunSpec.from_machine(
            machine, workload, Placement.slow_only(calibration.device)))
    results = executor.run(specs, label="suite")

    predicted, actual = [], []
    for index in range(len(workloads)):
        dram = results[2 * index]
        slow = results[2 * index + 1]
        predicted.append(predictor.predict(dram.profiled()).total)
        actual.append(slowdown(dram, slow))
    summary = accuracy_summary(predicted, actual)
    print(ascii_table(
        ["workloads", "pearson", "<=5% err", "<=10% err"],
        [[summary.count, summary.pearson, summary.within_5pct,
          summary.within_10pct]]))
    _finish(args, executor)
    return 0


def cmd_fleet(args) -> int:
    if args.nodes is not None:
        return _cmd_fleet_tournament(args)
    if not args.workload:
        print("fleet: name workloads to capacity-plan, or pass "
              "--nodes N for a tournament (docs/FLEET.md)",
              file=sys.stderr)
        return 2
    machine = _machine(args)
    executor = _executor(args)
    calibration = _load_calibration(args, machine, executor)
    from .policies.fleet import FleetPlanner
    fleet = [_resolve_workload(name, None) for name in args.workload]

    # Pre-warm the caches in two batched stages (the slow-tier runs
    # are only needed for bandwidth-bound members), then hand the
    # planner a profiler that serves from them.
    profiles = executor.profile(
        [RunSpec.from_machine(machine, w, Placement.dram_only())
         for w in fleet], label="fleet:dram")
    bandwidth_bound = [
        w for w, profile in zip(fleet, profiles)
        if classify(profile,
                    calibration.idle_latency_dram_ns).is_bandwidth_bound]
    if bandwidth_bound:
        executor.run(
            [RunSpec.from_machine(
                machine, w, Placement.slow_only(calibration.device))
             for w in bandwidth_bound], label="fleet:slow")

    total = sum(w.footprint_gib for w in fleet)
    capacity = (args.capacity_gib if args.capacity_gib
                else args.share * total)
    planner = FleetPlanner(machine, calibration,
                           profiler=executor.profiler(machine))
    plan = planner.plan(fleet, capacity)
    rows = [(a.workload, f"{a.footprint_gib:.1f}", a.dram_fraction,
             f"{a.dram_gib:.1f}", a.predicted_slowdown,
             "bw-bound" if a.bandwidth_bound else "lat-bound")
            for a in plan.assignments]
    print(ascii_table(["job", "GiB", "DRAM x", "DRAM GiB", "pred S",
                       "class"], rows))
    print(f"\nDRAM used: {plan.dram_used_gib:.1f} / "
          f"{plan.fast_capacity_gib:.1f} GiB; predicted fleet "
          f"throughput {plan.predicted_fleet_throughput:.3f}")
    _finish(args, executor)
    return 0


def _cmd_fleet_tournament(args) -> int:
    """``fleet --nodes N``: the sharded policy tournament."""
    from .fleet import (TOURNAMENT_POLICIES, TournamentConfig,
                        run_tournament)
    machine = _machine(args)
    executor = _executor(args)
    calibration = _load_calibration(args, machine, executor)
    policies = (tuple(name.strip() for name in
                      args.policies.split(",") if name.strip())
                if args.policies else TOURNAMENT_POLICIES)
    try:
        config = TournamentConfig(
            nodes=args.nodes, seed=args.seed, device=args.device,
            schedule=args.schedule, group_size=args.group_size,
            shard_nodes=args.shard_nodes, policies=policies,
            population_limit=args.population)
    except ValueError as error:
        print(f"fleet: {error}", file=sys.stderr)
        return 2
    report = run_tournament(machine, calibration, executor, config)
    print(report.render())
    if args.out:
        pathlib.Path(args.out).write_text(report.to_json() + "\n")
        print(f"\nwrote {args.out}")
    _finish(args, executor)
    return 0


def _dynamics_trace(task):
    """Worker for ``dynamics``: simulate one policy's migration loop."""
    from .policies.dynamics import simulate_tiering
    machine, workload, device, capacity, policy, epochs, bias = task
    return simulate_tiering(machine, workload, device, capacity, policy,
                            epochs=epochs, hotness_bias=bias)


def cmd_dynamics(args) -> int:
    machine = _machine(args)
    executor = _executor(args)
    calibration = _load_calibration(args, machine, executor)
    from .analysis.reporting import sparkline
    from .policies.dynamics import (BestShotDynamics, ColloidDynamics,
                                    FirstTouchDynamics, NBTDynamics)
    workload = _resolve_workload(args.workload, args.threads)
    capacity = args.share * workload.footprint_gib
    lineup = [(BestShotDynamics(calibration), 0.0),
              (FirstTouchDynamics(), 0.10),
              (NBTDynamics(), 0.30),
              (ColloidDynamics(), 0.25)]
    # Epoch-coupled simulations are not content-addressable runs, but
    # the four policy loops are independent: fan them out.
    traces = executor.map(
        _dynamics_trace,
        [(machine, workload, args.device, capacity, policy,
          args.epochs, bias) for policy, bias in lineup],
        label="dynamics")
    rows = []
    for (policy, _), trace in zip(lineup, traces):
        rows.append((policy.name, trace.normalized_performance,
                     trace.migration_cycles / trace.total_cycles,
                     trace.convergence_epoch(),
                     sparkline([r.placement_x for r in trace.records],
                               width=args.epochs)))
    print(ascii_table(["policy", "norm perf", "migration",
                       "converged@", "x(t)"], rows))
    _finish(args, executor)
    return 0


def cmd_chaos(args) -> int:
    if args.target == "serve":
        from .faults.chaos_serve import run_serve_chaos
        schedule = args.schedule if args.schedule != "default" else "serve"
        serve_report = run_serve_chaos(
            schedule=schedule, seed=args.seed, rate_rps=args.rate,
            duration_s=args.duration, platform=args.platform)
        print(serve_report.render())
        if args.slo_out:
            pathlib.Path(args.slo_out).write_text(
                serve_report.slo.to_json() + "\n")
            print(f"wrote SLO report to {args.slo_out}", file=sys.stderr)
        return 0 if serve_report.ok else 1
    from .faults.chaos import run_chaos
    cache_dir = getattr(args, "cache_dir", None)
    report = run_chaos(
        schedule=args.schedule, seed=args.seed, limit=args.limit,
        platform=args.platform, device=args.device, jobs=args.jobs,
        cache_dir=pathlib.Path(cache_dir) if cache_dir else None,
        use_cache=not args.no_cache, progress=args.progress)
    print(report.render())
    if args.progress and report.telemetry is not None:
        rendered = report.telemetry.render()
        if rendered:
            print(rendered, file=sys.stderr)
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """Run the online prediction service until interrupted."""
    import asyncio
    import signal

    from .runtime.store import ResultStore, default_cache_dir
    from .serve.server import PredictionServer

    machine = _machine(args)
    store = None
    if not args.no_cache:
        root = (pathlib.Path(args.cache_dir) if args.cache_dir
                else default_cache_dir())
        store = ResultStore(root)
    executor = Executor(jobs=1, store=store)
    predictor = SlowdownPredictor(
        _load_calibration(args, machine, executor))

    from .serve.protocol import DEFAULT_DEADLINE_MS
    deadline_ms = (args.deadline_ms if args.deadline_ms is not None
                   else DEFAULT_DEADLINE_MS)

    async def _run() -> None:
        server = PredictionServer(
            machine, predictor, store, host=args.host, port=args.port,
            default_deadline_ms=deadline_ms,
            queue_bound=args.queue_bound)
        host, port = await server.start()
        print(f"repro serve: listening on http://{host}:{port} "
              f"(queue bound {server.coalescer.queue_bound}, "
              f"default deadline {deadline_ms:g} ms)")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("repro serve: draining...", file=sys.stderr)
        await server.drain()
        print("repro serve: drained clean", file=sys.stderr)

    asyncio.run(_run())
    return 0


def cmd_loadgen(args) -> int:
    """Drive a running server at a constant rate; report the SLO."""
    from .serve.loadgen import run_loadgen_sync

    report = run_loadgen_sync(
        args.host, args.port, rate_rps=args.rate,
        duration_s=args.duration, deadline_ms=args.deadline_ms,
        connections=args.connections, seed=args.seed)
    print(report.render())
    if args.slo_out:
        pathlib.Path(args.slo_out).write_text(report.to_json() + "\n")
        print(f"wrote SLO report to {args.slo_out}", file=sys.stderr)
    return 0 if report.failure_count == 0 else 1


def cmd_lint(args) -> int:
    """camp-lint: static invariant checks (docs/LINT.md).

    Exit codes: 0 clean (fixed or baselined), 1 active findings,
    2 usage / malformed baseline.
    """
    from .lint import (ALL_RULES, BASELINE_NAME, Baseline,
                       BaselineError, default_cache, default_root,
                       render_json, render_sarif, render_text,
                       run_lint)
    root = pathlib.Path(args.root) if args.root else None

    if args.repin_schema:
        import ast as ast_mod

        from .lint.rules.schema import compute_schema_digest, write_pin
        spec_path = ((root or default_root()) / "src" / "repro" /
                     "runtime" / "spec.py")
        version, digest = compute_schema_digest(
            ast_mod.parse(spec_path.read_text(encoding="utf-8")))
        pin_path = write_pin(root or default_root(), version, digest)
        print(f"pinned key_material digest {digest[:12]} "
              f"(CACHE_SCHEMA_VERSION={version}) in {pin_path}")
        return 0

    cache = (None if args.no_cache else
             default_cache(root or default_root(),
                           [rule.id for rule in ALL_RULES]))
    run = run_lint(root=root,
                   paths=[pathlib.Path(p) for p in args.paths] or None,
                   jobs=args.jobs, cache=cache)

    baseline_path = (pathlib.Path(args.baseline) if args.baseline
                     else (root or default_root()) / BASELINE_NAME)
    if args.write_baseline:
        previous = Baseline.load(baseline_path)
        Baseline.from_findings(run.findings, previous).save(baseline_path)
        print(f"wrote {len(run.findings)} entry(ies) to {baseline_path}")
        return 0
    baseline = Baseline()
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"camp-lint: {exc}", file=sys.stderr)
            return 2
    active, baselined, stale = baseline.partition(run.findings)
    if args.paths:
        stale = []   # a narrowed run never visits most baselined files

    if args.prune_baseline:
        if args.paths:
            print("camp-lint: --prune-baseline needs a full run "
                  "(drop the path arguments)", file=sys.stderr)
            return 2
        for entry in stale:
            print(f"stale: {entry.rule} {entry.path}: {entry.snippet}")
        if args.write and stale:
            stale_keys = {entry.key() for entry in stale}
            kept = [entry for entry in baseline.entries
                    if entry.key() not in stale_keys]
            Baseline(kept).save(baseline_path)
            print(f"pruned {len(stale)} stale entry(ies) from "
                  f"{baseline_path}; {len(kept)} kept")
        elif not stale:
            print("baseline is tight: every entry still matches a "
                  "finding")
        return 0

    if args.format == "json":
        print(render_json(active, baselined, stale, run.files_checked))
    elif args.format == "sarif":
        print(render_sarif(active, rules=ALL_RULES))
    else:
        print(render_text(active, baselined, stale, run.files_checked,
                          baseline))
    return 1 if active else 0


def _extract_out_flag(rest: List[str], name: str):
    """Pull ``name FILE`` / ``name=FILE`` out of a raw argv tail.

    The trace wrapper's output flags may appear anywhere around the
    inner command's own arguments (``trace suite --workloads 4
    --trace-out t.json``), so they are extracted by hand rather than
    declared on the subparser.  Returns ``(value, remaining_tokens)``.
    """
    value = None
    cleaned: List[str] = []
    index = 0
    while index < len(rest):
        token = rest[index]
        if token == name:
            if index + 1 >= len(rest):
                raise ValueError(f"{name} requires a file argument")
            value = rest[index + 1]
            index += 2
            continue
        if token.startswith(name + "="):
            value = token[len(name) + 1:]
            if not value:
                raise ValueError(f"{name} requires a file argument")
            index += 1
            continue
        cleaned.append(token)
        index += 1
    return value, cleaned


def cmd_trace(args) -> int:
    """Re-dispatch an inner command under an active trace session.

    The inner command runs exactly as it would untraced - stdout is
    byte-identical - while every instrumented layer (executor, store,
    lab, calibration, ``Machine.run``) records spans into one tracer,
    exported afterwards as Chrome trace-event JSON (``--trace-out``)
    and/or a JSONL event log (``--jsonl-out``).
    """
    rest = list(args.rest)
    if rest[:1] == ["--"]:
        rest = rest[1:]
    try:
        trace_out, rest = _extract_out_flag(rest, "--trace-out")
        jsonl_out, rest = _extract_out_flag(rest, "--jsonl-out")
    except ValueError as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2
    if not rest:
        print("repro trace: usage: repro trace <command> [args ...] "
              "--trace-out FILE [--jsonl-out FILE]", file=sys.stderr)
        return 2
    if rest[0] == "trace":
        print("repro trace: trace sessions do not nest",
              file=sys.stderr)
        return 2
    if trace_out is None and jsonl_out is None:
        print("repro trace: need --trace-out FILE and/or "
              "--jsonl-out FILE", file=sys.stderr)
        return 2

    from .obs import (Tracer, trace_session, write_chrome_trace,
                      write_jsonl)
    tracer = Tracer()
    with trace_session(tracer):
        with tracer.span(f"cli.{rest[0]}"):
            code = main(rest)
    written = []
    if trace_out is not None:
        written.append(str(write_chrome_trace(tracer, trace_out)))
    if jsonl_out is not None:
        written.append(str(write_jsonl(tracer, jsonl_out)))
    print(f"trace: {len(tracer.events)} span(s) -> "
          f"{', '.join(written)}", file=sys.stderr)
    return code


def cmd_bench(args) -> int:
    """Time the pinned runtime micro-suite (docs/OBSERVABILITY.md)."""
    from .obs.bench import compare_bench, render_bench, run_bench
    out = pathlib.Path(args.out) if args.out else None
    result = run_bench(repeats=args.repeats, out=out, scale=args.scale)
    print(render_bench(result))
    if out is not None:
        print(f"wrote {out}", file=sys.stderr)
    if args.compare:
        baseline_path = pathlib.Path(args.compare)
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, ValueError) as exc:
            # The trajectory check must never gate the bench itself.
            print(f"bench compare: cannot read {baseline_path}: {exc}",
                  file=sys.stderr)
            return 0
        warnings = compare_bench(baseline, result)
        for line in warnings:
            print(f"bench compare: {line}", file=sys.stderr)
        if not warnings:
            print(f"bench compare: no regressions vs {baseline_path}",
                  file=sys.stderr)
    return 0


def cmd_workloads(args) -> int:
    rows = [(w.name, w.suite, w.threads, f"{w.footprint_gib:.1f}",
             f"{w.mlp:.1f}", ",".join(w.tags))
            for w in named_workloads().values()]
    print(ascii_table(["name", "suite", "thr", "GiB", "MLP", "tags"],
                      rows))
    return 0


def cmd_cache(args) -> int:
    """Inspect or maintain the persistent result store (docs/STORE.md)."""
    from .runtime import warmstore
    from .runtime.spec import CACHE_SCHEMA_VERSION, code_version
    from .runtime.store import LegacyJsonStore
    root = pathlib.Path(args.cache_dir) if args.cache_dir \
        else default_cache_dir()
    if args.action in ("warm-info", "warm-clear"):
        with ResultStore(root, migrate_legacy=False,
                         auto_compact=False) as store:
            if args.action == "warm-clear":
                present = warmstore.clear_warm_cache(store)
                print("cleared warm-start snapshot" if present else
                      "no warm-start snapshot for this code version")
            else:
                cache, loaded = warmstore.load_warm_cache(store)
                print(f"key:      {warmstore.warm_store_key()}")
                print(f"version:  {code_version()}")
                print(f"points:   {loaded}")
                print(f"capacity: {cache.capacity}")
        return 0
    if args.action == "migrate":
        with ResultStore(root) as store:
            entries = len(store)    # forces the open-time migration
            stats = store.stats
            print(f"migrated {stats.migrated} legacy entr"
                  f"{'y' if stats.migrated == 1 else 'ies'} into "
                  f"{len(store.segment_paths())} segment(s); "
                  f"{stats.corrupt} rejected; {entries} entries live")
        return 0
    with ResultStore(root, migrate_legacy=False,
                     auto_compact=False) as store:
        if args.action == "clear":
            entries = len(store)
            store.clear()
            print(f"cleared {entries} entr"
                  f"{'y' if entries == 1 else 'ies'} under {root}")
        elif args.action == "compact":
            before = store.disk_bytes()
            store.compact()
            print(f"compacted {root}: {before} -> "
                  f"{store.disk_bytes()} bytes across "
                  f"{len(store.segment_paths())} segment(s), "
                  f"{len(store)} entries live")
        else:   # info
            legacy = len(LegacyJsonStore(root))
            _, warm_points = warmstore.load_warm_cache(store)
            print(f"root:          {root}")
            print(f"schema:        {CACHE_SCHEMA_VERSION}")
            print(f"entries:       {len(store)}")
            print(f"segments:      {len(store.segment_paths())}")
            print(f"disk bytes:    {store.disk_bytes()}")
            print(f"corrupt:       {store.stats.corrupt}")
            print(f"legacy (JSON): {legacy}")
            print(f"warm points:   {warm_points}")
    return 0


# ---------------------------------------------------------------------------
# Parser.
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, device=True):
        p.add_argument("--platform", default="skx2s",
                       help="platform preset (skx2s/spr2s/emr2s)")
        if device:
            p.add_argument("--device", default="cxl-a",
                           help="slow tier (numa/cxl-a/cxl-b/cxl-c)")
            p.add_argument("--calibration",
                           help="path to a saved calibration JSON "
                                "(default: calibrate on the fly)")
        runtime = p.add_argument_group(
            "runtime", "parallelism, result cache, telemetry "
                       "(docs/RUNTIME.md)")
        runtime.add_argument("-j", "--jobs", type=_jobs_arg, default=1,
                             metavar="N",
                             help="worker processes for simulated runs "
                                  "(default 1 = serial; 'auto' = all "
                                  "cores)")
        runtime.add_argument("--cache-dir", type=_cache_dir_arg,
                             metavar="DIR",
                             help="persistent result cache location "
                                  "(default: $REPRO_CACHE_DIR or "
                                  "./.repro-cache)")
        runtime.add_argument("--no-cache", action="store_true",
                             help="skip the persistent result cache "
                                  "entirely")
        runtime.add_argument("--progress", action="store_true",
                             help="live progress + cache/timing "
                                  "telemetry on stderr")

    p = sub.add_parser("calibrate",
                       help="fit platform constants from microbenchmarks")
    common(p)
    p.add_argument("--out", help="write the calibration JSON here")
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("predict",
                       help="forecast slow-tier slowdown from DRAM runs")
    common(p)
    p.add_argument("workload", nargs="+",
                   help="named workload(s), see `repro workloads`")
    p.add_argument("--threads", type=int)
    p.add_argument("--verify", action="store_true",
                   help="also execute on the slow tier and report error")
    p.add_argument("--contention-aware", action="store_true",
                   help="apply the bandwidth-saturation extension")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("classify",
                       help="latency- vs bandwidth-bound classification")
    common(p)
    p.add_argument("workload", nargs="+")
    p.add_argument("--threads", type=int)
    p.add_argument("--tolerance", type=float, default=0.05)
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser("sweep",
                       help="synthesize an interleaving curve + Best-shot")
    common(p)
    p.add_argument("workload")
    p.add_argument("--threads", type=int)
    p.add_argument("--points", type=int, default=11)
    p.add_argument("--measure", action="store_true",
                   help="also execute every ratio for comparison")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("suite",
                       help="prediction accuracy over the population")
    common(p)
    p.add_argument("--limit", "--workloads", type=_workload_count_arg,
                   dest="limit", metavar="N",
                   help="only the first N workloads (quick check)")
    p.add_argument("--contention-aware", action="store_true")
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("fleet",
                       help="capacity-plan a job mix with CAMP, or "
                            "run a fleet-scale policy tournament "
                            "(--nodes; docs/FLEET.md)")
    common(p)
    from .fleet.population import ARRIVAL_SCHEDULES
    from .fleet.tournament import DEFAULT_SHARD_NODES
    p.add_argument("workload", nargs="*",
                   help="workloads to capacity-plan (planner mode)")
    p.add_argument("--share", type=float, default=0.5,
                   help="fast capacity as a share of the fleet "
                        "footprint (default 0.5)")
    p.add_argument("--capacity-gib", type=float,
                   help="absolute fast capacity (overrides --share)")
    tournament = p.add_argument_group(
        "tournament", "simulated-fleet policy tournament "
                      "(docs/FLEET.md)")
    tournament.add_argument("--nodes", type=int, metavar="N",
                            help="simulate N fleet nodes and rank the "
                                 "colocation policies")
    tournament.add_argument("--seed", type=int, default=2026,
                            help="fleet draw + sampling seed "
                                 "(default 2026)")
    tournament.add_argument("--schedule", default="diurnal",
                            choices=sorted(ARRIVAL_SCHEDULES),
                            help="arrival schedule (default diurnal)")
    tournament.add_argument("--policies",
                            help="comma-separated policy lineup "
                                 "(default: all six)")
    tournament.add_argument("--group-size", type=int, default=2,
                            help="workloads colocated per node "
                                 "(default 2)")
    tournament.add_argument("--shard-nodes", type=int,
                            default=DEFAULT_SHARD_NODES,
                            help="nodes per joint-solve shard "
                                 f"(default {DEFAULT_SHARD_NODES})")
    tournament.add_argument("--population", type=_workload_count_arg,
                            metavar="N",
                            help="draw from only the first N "
                                 "population workloads (smoke runs)")
    tournament.add_argument("--out",
                            help="write the repro-fleet/1 report "
                                 "JSON here")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("dynamics",
                       help="simulate reactive migration loops")
    common(p)
    p.add_argument("workload")
    p.add_argument("--threads", type=int)
    p.add_argument("--share", type=float, default=0.8)
    p.add_argument("--epochs", type=int, default=20)
    p.set_defaults(func=cmd_dynamics)

    p = sub.add_parser("chaos",
                       help="fault-inject the stack and verify graceful "
                            "degradation (docs/FAULTS.md)")
    common(p)
    from .faults.plan import SCHEDULES
    p.add_argument("--schedule", default="default",
                   choices=sorted(SCHEDULES),
                   help="named fault schedule (default: 'default')")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed; same seed => same injections")
    p.add_argument("--workloads", type=_workload_count_arg,
                   dest="limit", metavar="N",
                   help="workloads to exercise (default: per schedule)")
    p.add_argument("--target", choices=("stack", "serve"),
                   default="stack",
                   help="what to fault-inject: the batch stack "
                        "(default) or a live prediction server "
                        "(docs/SERVE.md)")
    p.add_argument("--rate", type=float, default=60.0,
                   help="[serve target] load rate in requests/s "
                        "(default 60)")
    p.add_argument("--duration", type=float, default=4.0,
                   help="[serve target] load duration in seconds "
                        "(default 4)")
    p.add_argument("--slo-out", metavar="FILE",
                   help="[serve target] write the SLO report JSON here")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="online prediction service with admission control, "
             "deadlines, and a store circuit breaker (docs/SERVE.md)")
    p.add_argument("--platform", default="skx2s",
                   help="platform preset (skx2s/spr2s/emr2s)")
    p.add_argument("--device", default="cxl-a",
                   help="slow tier (numa/cxl-a/cxl-b/cxl-c)")
    p.add_argument("--calibration",
                   help="path to a saved calibration JSON "
                        "(default: calibrate on the fly, cached)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8484,
                   help="bind port; 0 picks a free one (default 8484)")
    p.add_argument("--deadline-ms", type=float,
                   default=None, metavar="MS",
                   help="default per-request deadline "
                        "(docs/SERVE.md)")
    p.add_argument("--queue-bound", type=int, default=None, metavar="N",
                   help="admission queue bound; beyond it requests "
                        "are shed with 429 (docs/SERVE.md)")
    p.add_argument("--cache-dir", type=_cache_dir_arg, metavar="DIR",
                   help="persistent result store to answer from "
                        "(default: $REPRO_CACHE_DIR or ./.repro-cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without a persistent store")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="open-loop constant-rate load against a running server; "
             "prints the SLO report (docs/SERVE.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--rate", type=float, default=50.0,
                   help="request rate in requests/s (default 50)")
    p.add_argument("--duration", type=float, default=10.0,
                   help="run duration in seconds (default 10)")
    p.add_argument("--deadline-ms", type=float, default=2000.0,
                   metavar="MS",
                   help="per-request deadline sent with each query "
                        "(default 2000)")
    p.add_argument("--connections", type=int, default=8,
                   help="keep-alive connections to multiplex over "
                        "(default 8)")
    p.add_argument("--seed", type=int, default=0,
                   help="request-mix seed (deterministic schedule)")
    p.add_argument("--slo-out", metavar="FILE",
                   help="write the SLO report JSON here")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("workloads", help="list named paper workloads")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser(
        "cache",
        help="inspect / compact / clear / migrate the persistent "
             "result store (docs/STORE.md)")
    p.add_argument("action",
                   choices=("info", "compact", "clear", "migrate",
                            "warm-info", "warm-clear"),
                   help="info: summary; compact: rewrite live records "
                        "into fresh segments; clear: delete every "
                        "entry; migrate: pull legacy JSON entries into "
                        "segments; warm-info: the solver warm-start "
                        "snapshot for this code version; warm-clear: "
                        "tombstone it")
    p.add_argument("--cache-dir", type=_cache_dir_arg, metavar="DIR",
                   help="store location (default: $REPRO_CACHE_DIR or "
                        "./.repro-cache)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "lint",
        help="camp-lint: static determinism/cache-key/PMU invariant "
             "checks (docs/LINT.md)")
    p.add_argument("paths", nargs="*",
                   help="files or directories to lint (default: "
                        "src/repro plus the docs)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text",
                   help="report format (default: text; sarif emits "
                        "SARIF 2.1.0 for code-scanning upload)")
    p.add_argument("--baseline", metavar="FILE",
                   help="baseline file of grandfathered findings "
                        "(default: <root>/lint-baseline.json)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline: report every finding")
    p.add_argument("--write-baseline", action="store_true",
                   help="grandfather the current findings into the "
                        "baseline file (keeps existing justifications)")
    p.add_argument("--prune-baseline", action="store_true",
                   help="report baseline entries no finding matches "
                        "any more; with --write, delete them from the "
                        "baseline file")
    p.add_argument("--write", action="store_true",
                   help="with --prune-baseline: rewrite the baseline "
                        "file without the stale entries")
    p.add_argument("--repin-schema", action="store_true",
                   help="recompute the SCHEMA01 key_material digest "
                        "and rewrite lint-schema-pin.json (run after "
                        "an intentional CACHE_SCHEMA_VERSION bump)")
    p.add_argument("-j", "--jobs", type=_jobs_arg, default=1,
                   metavar="N",
                   help="analyze files with N worker processes "
                        "('auto' = one per CPU; default: 1, "
                        "in-process)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not update the lint result "
                        "cache (.repro-cache/lint-cache.json)")
    p.add_argument("--root", metavar="DIR",
                   help="repo root for scoping and default paths "
                        "(default: auto-detected)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "trace",
        help="run another command under a span-trace session "
             "(docs/OBSERVABILITY.md)")
    p.add_argument("rest", nargs=argparse.REMAINDER, metavar="command",
                   help="inner command plus its arguments; add "
                        "--trace-out FILE (Chrome trace-event JSON) "
                        "and/or --jsonl-out FILE anywhere")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "bench",
        help="time the pinned runtime micro-benchmarks "
             "(docs/OBSERVABILITY.md)")
    p.add_argument("--repeats", type=_repeats_arg, default=5,
                   metavar="N",
                   help="timed repeats per case; medians are reported "
                        "(default 5)")
    p.add_argument("--out", metavar="FILE",
                   help="write the schema-versioned JSON payload here")
    p.add_argument("--compare", metavar="FILE",
                   help="diff against a previous payload; regressions "
                        "are warned to stderr, never fatal")
    p.add_argument("--scale", action="store_true",
                   help="also run the large store cases (100k-entry "
                        "roundtrip, 1M-entry get_many scan)")
    p.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    # ``trace`` forwards a full inner command line, options and all;
    # argparse's REMAINDER rejects option-leading tails ("trace
    # --trace-out f suite"), so the wrapper is dispatched by hand.
    # ``trace -h`` still reaches argparse for the help text.
    if argv[:1] == ["trace"] and argv[1:2] not in (["-h"], ["--help"]):
        return cmd_trace(argparse.Namespace(rest=argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
