"""Linux-perf bridge: turn ``perf stat`` output into CounterSamples.

On real hardware CAMP's inputs come from ``perf stat``; this module is
the counter-plumbing layer that connects the two.  It provides:

- :data:`EVENT_ALIASES` - the mapping from Intel event names (as they
  appear in a perf event list) to the Table 5 counter ids;
- :func:`perf_event_list` - the exact ``-e`` argument to profile a
  workload for CAMP on a given platform family;
- :func:`parse_perf_csv` - parse ``perf stat -x,`` (CSV) output into a
  :class:`~repro.core.counters.CounterSample`;
- :func:`profiled_run_from_perf` - the full
  :class:`~repro.core.counters.ProfiledRun` record, ready for the
  predictor.

Only the parsing is exercised in this repository (no PMU here); the
functions are deliberately free of any simulator dependency so they
work unchanged next to a real ``perf``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .core.counters import Counter, CounterSample, ProfiledRun

#: Intel event spellings -> CAMP counter ids.  Multiple aliases map to
#: the same counter where perf exposes several spellings.
EVENT_ALIASES: Dict[str, Counter] = {
    "cycles": Counter.CYCLES,
    "cpu-cycles": Counter.CYCLES,
    "instructions": Counter.INSTRUCTIONS,
    "cycle_activity.stalls_l1d_miss": Counter.STALLS_L1D_MISS,
    "cycle_activity.stalls_l2_miss": Counter.STALLS_L2_MISS,
    "cycle_activity.stalls_l3_miss": Counter.STALLS_L3_MISS,
    "mem_load_retired.l1_miss": Counter.L1_MISS,
    "mem_load_retired.fb_hit": Counter.LFB_HIT,
    "exe_activity.bound_on_stores": Counter.BOUND_ON_STORES,
    "ocr.hwpf_l1d.any_response": Counter.PF_L1D_ANY_RESPONSE,
    "ocr.hwpf_l1d.l3_hit": Counter.PF_L1D_L3_HIT,
    "ocr.hwpf_l2_rd.any_response": Counter.PF_L2_ANY_RESPONSE,
    "ocr.hwpf_l2_rd.l3_hit": Counter.PF_L2_L3_HIT,
    "offcore_requests_outstanding.demand_data_rd":
        Counter.ORO_DEMAND_RD,
    "offcore_requests.demand_data_rd": Counter.OR_DEMAND_RD,
    "offcore_requests_outstanding.cycles_with_demand_data_rd":
        Counter.ORO_CYC_W_DEMAND_RD,
    "unc_cha_llc_lookup.data_read_pref": Counter.LLC_LOOKUP_PF_RD,
    "unc_cha_llc_lookup.all": Counter.LLC_LOOKUP_ALL,
    "unc_cha_tor_inserts.ia_miss_pref": Counter.TOR_INS_IA_PREF,
    "unc_cha_tor_inserts.ia_hit_pref": Counter.TOR_INS_IA_HIT_PREF,
    "unc_m_cas_count.rd": Counter.UNC_CAS_RD,
    "unc_m_cas_count.wr": Counter.UNC_CAS_WR,
}

#: Events CAMP profiles per platform family (the 11/12-counter sets of
#: the paper, plus the bandwidth-monitor CAS events).
_SKX_EVENTS: Tuple[str, ...] = (
    "cycles", "instructions",
    "cycle_activity.stalls_l1d_miss",
    "cycle_activity.stalls_l2_miss",
    "cycle_activity.stalls_l3_miss",
    "mem_load_retired.l1_miss",
    "mem_load_retired.fb_hit",
    "exe_activity.bound_on_stores",
    "ocr.hwpf_l1d.any_response",
    "ocr.hwpf_l1d.l3_hit",
    "offcore_requests_outstanding.demand_data_rd",
    "offcore_requests.demand_data_rd",
    "offcore_requests_outstanding.cycles_with_demand_data_rd",
    "unc_m_cas_count.rd", "unc_m_cas_count.wr",
)

_SPR_EVENTS: Tuple[str, ...] = (
    "cycles", "instructions",
    "cycle_activity.stalls_l1d_miss",
    "cycle_activity.stalls_l2_miss",
    "cycle_activity.stalls_l3_miss",
    "mem_load_retired.l1_miss",
    "mem_load_retired.fb_hit",
    "exe_activity.bound_on_stores",
    "offcore_requests_outstanding.demand_data_rd",
    "offcore_requests.demand_data_rd",
    "offcore_requests_outstanding.cycles_with_demand_data_rd",
    "unc_cha_llc_lookup.data_read_pref",
    "unc_cha_llc_lookup.all",
    "unc_cha_tor_inserts.ia_miss_pref",
    "unc_cha_tor_inserts.ia_hit_pref",
    "unc_m_cas_count.rd", "unc_m_cas_count.wr",
)


def perf_event_list(platform_family: str) -> str:
    """The comma-joined ``perf stat -e`` argument for a platform."""
    family = platform_family.lower()
    if family == "skx":
        return ",".join(_SKX_EVENTS)
    if family in ("spr", "emr"):
        return ",".join(_SPR_EVENTS)
    raise ValueError(f"unknown platform family: {platform_family!r}")


def perf_command(platform_family: str, workload_argv: str,
                 interval_ms: Optional[int] = None) -> str:
    """A ready-to-run ``perf stat`` command line for CAMP profiling.

    ``interval_ms`` enables windowed sampling for time-series
    prediction (Fig. 8).
    """
    interval = f" -I {interval_ms}" if interval_ms else ""
    return (f"perf stat -x, -e {perf_event_list(platform_family)}"
            f"{interval} -- {workload_argv}")


class PerfParseError(ValueError):
    """Raised when perf output cannot be interpreted."""


def _parse_count(field: str) -> Optional[float]:
    text = field.strip().replace(",", "")
    if not text or text in ("<not counted>", "<not supported>"):
        return None
    try:
        return float(text)
    except ValueError:
        raise PerfParseError(f"unparseable count field: {field!r}")


def parse_perf_csv(text: str) -> CounterSample:
    """Parse ``perf stat -x,`` CSV output into a counter sample.

    Recognized lines look like ``<count>,,<event>,...``; unknown events
    and non-matching lines (comments, blank lines, the elapsed-time
    footer) are skipped.  Duplicate events accumulate, which is how
    per-socket uncore counts aggregate.
    """
    values: Dict[Counter, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(",")
        if len(fields) < 3:
            continue
        count = _parse_count(fields[0])
        if count is None:
            continue
        event = fields[2].strip().lower()
        # perf may suffix the event with a qualifier (":u", "/...").
        event = event.split(":")[0].split("/")[0]
        counter = EVENT_ALIASES.get(event)
        if counter is None:
            continue
        values[counter] = values.get(counter, 0.0) + count
    if Counter.CYCLES not in values:
        raise PerfParseError(
            "perf output contained no cycles event; was the event list "
            "built with perf_event_list()?")
    return CounterSample(values)


def profiled_run_from_perf(text: str, platform_family: str,
                           frequency_ghz: float, tier: str = "dram",
                           duration_s: float = 0.0,
                           label: str = "",
                           window_texts: Iterable[str] = ()
                           ) -> ProfiledRun:
    """Build the model-facing record from raw perf output.

    ``window_texts`` optionally carries per-interval CSV chunks (from
    ``perf stat -I``) for time-series prediction.
    """
    windows: List[CounterSample] = [parse_perf_csv(chunk)
                                    for chunk in window_texts]
    return ProfiledRun(
        sample=parse_perf_csv(text),
        platform_family=platform_family,
        tier=tier,
        frequency_ghz=frequency_ghz,
        duration_s=duration_s,
        label=label,
        windows=tuple(windows),
    )
