"""Declarative, deterministic fault plans (``docs/FAULTS.md``).

A :class:`FaultPlan` describes *which* faults a chaos run may inject -
counter loss in the profiling path, latency spikes in the memory tiers,
worker crashes/hangs in the process pool, corruption in the persistent
store - and *how often*, as independent per-site probabilities.

Every decision is a pure function of ``(seed, site key)``: the draw
hashes the seed together with a structured key (fault family, task
index, counter id, ...) and compares the result against the fault's
probability.  Two consequences make chaos testing tractable:

- **Reproducibility.**  The same plan and seed injects the same faults
  at the same sites on every run, on every machine - a chaos failure
  can be replayed under a debugger.
- **Parent/child agreement.**  The executor's parent process can
  pre-compute which pool tasks will crash (for telemetry) without any
  back-channel from a worker that is about to ``os._exit``.

Worker faults fire only at ``attempt == 0``, so an injected crash or
hang is transient *by construction*: the retry/fallback path always
succeeds, which is what lets the chaos suite assert recovery rather
than mere failure.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Counter-fault modes: remove the event entirely, report a hard zero,
#: or multiplicatively perturb the count.
COUNTER_MODES = ("drop", "zero", "perturb")
#: Tier-fault modes: multiplicative tail-latency spike, or an additive
#: transient stall (ns).
TIER_MODES = ("spike", "stall")
#: Worker-fault modes: hard process death, or a hang (sleep).
WORKER_MODES = ("crash", "hang")
#: Store-fault modes: overwrite with garbage, cut the file short,
#: delete it outright, or make the store unreachable for a burst of
#: operations (``disconnect`` - the mode the serve-target chaos suite
#: uses to trip the circuit breaker).
STORE_MODES = ("corrupt", "truncate", "vanish", "disconnect")


def _draw(seed: int, *parts) -> float:
    """Deterministic uniform draw in [0, 1) keyed by ``(seed, parts)``."""
    material = ":".join([str(seed)] + [str(part) for part in parts])
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def _check_probability(probability: float) -> None:
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], "
                         f"got {probability}")


@dataclass(frozen=True)
class CounterFault:
    """Loss or distortion of one PMU counter (perf multiplexing model).

    ``counter`` is a paper id (``"P3"``) or ``"*"`` for every expected
    counter; ``CYCLES`` is never touched regardless (a sample cannot
    exist without it).  ``magnitude`` only applies to ``perturb``: the
    count is scaled by a factor drawn from ``1 +- magnitude``.
    """

    counter: str
    mode: str
    probability: float
    magnitude: float = 0.2

    def __post_init__(self):
        if self.mode not in COUNTER_MODES:
            raise ValueError(f"unknown counter-fault mode: {self.mode!r}")
        _check_probability(self.probability)
        if self.magnitude < 0:
            raise ValueError("magnitude must be non-negative")


@dataclass(frozen=True)
class TierFault:
    """Latency misbehaviour of a memory tier (paper section 4.4.4).

    ``tier`` is a device name (``"cxl-a"``) or ``"*"`` for every
    non-DRAM tier.  ``spike`` multiplies the loaded latency by
    ``1 + magnitude`` (a tail event); ``stall`` adds ``magnitude``
    nanoseconds flat (a transient device stall).
    """

    tier: str
    mode: str
    probability: float
    magnitude: float = 2.0

    def __post_init__(self):
        if self.mode not in TIER_MODES:
            raise ValueError(f"unknown tier-fault mode: {self.mode!r}")
        _check_probability(self.probability)
        if self.magnitude < 0:
            raise ValueError("magnitude must be non-negative")


@dataclass(frozen=True)
class WorkerFault:
    """Death or hang of a pool worker executing one task."""

    mode: str
    probability: float
    #: Sleep duration for ``hang`` faults; pick it above the harness's
    #: ``task_timeout`` to exercise the timeout path.
    hang_s: float = 1.5

    def __post_init__(self):
        if self.mode not in WORKER_MODES:
            raise ValueError(f"unknown worker-fault mode: {self.mode!r}")
        _check_probability(self.probability)
        if self.hang_s < 0:
            raise ValueError("hang_s must be non-negative")


@dataclass(frozen=True)
class StoreFault:
    """Damage to a freshly-written persistent cache entry."""

    mode: str
    probability: float

    def __post_init__(self):
        if self.mode not in STORE_MODES:
            raise ValueError(f"unknown store-fault mode: {self.mode!r}")
        _check_probability(self.probability)


@dataclass(frozen=True)
class WorkerAction:
    """The concrete worker fault drawn for one (task, attempt) site."""

    mode: str
    hang_s: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of fault declarations.

    The plan itself holds no state and is picklable, so it travels into
    pool workers as plain data; all randomness is re-derived from the
    seed at each decision site.
    """

    seed: int = 0
    counter_faults: Tuple[CounterFault, ...] = field(default=())
    tier_faults: Tuple[TierFault, ...] = field(default=())
    worker_faults: Tuple[WorkerFault, ...] = field(default=())
    store_faults: Tuple[StoreFault, ...] = field(default=())
    name: str = "custom"

    # -- decision sites ------------------------------------------------------
    def counter_action(self, context, counter_id: str
                       ) -> Optional[CounterFault]:
        """The counter fault hitting ``counter_id`` at ``context``, if any.

        ``context`` identifies the sample (workload index, window
        index, ...); the first matching declared fault whose draw fires
        wins.  ``CYCLES`` is exempt by contract.
        """
        if counter_id == "cycles":
            return None
        for fault in self.counter_faults:
            if fault.counter not in ("*", counter_id):
                continue
            if _draw(self.seed, "counter", context, counter_id,
                     fault.mode) < fault.probability:
                return fault
        return None

    def perturb_factor(self, context, counter_id: str,
                       magnitude: float) -> float:
        """The deterministic scale factor for a ``perturb`` fault."""
        offset = 2.0 * _draw(self.seed, "perturb", context,
                             counter_id) - 1.0
        return max(0.0, 1.0 + magnitude * offset)

    def tier_action(self, tier: str, call_index: int
                    ) -> Optional[TierFault]:
        """The tier fault hitting one latency computation, if any.

        ``"*"`` faults match every tier except local DRAM - the paper's
        tail/stall pathologies are slow-tier phenomena.
        """
        for fault in self.tier_faults:
            if fault.tier == "*":
                if tier == "dram":
                    continue
            elif fault.tier != tier:
                continue
            if _draw(self.seed, "tier", tier, call_index,
                     fault.mode) < fault.probability:
                return fault
        return None

    def worker_action(self, index: int, attempt: int
                      ) -> Optional[WorkerAction]:
        """The worker fault for task ``index`` at ``attempt``, if any.

        Only attempt 0 ever faults, which makes every injected worker
        failure recoverable by one retry or the serial fallback.
        """
        if attempt > 0:
            return None
        for fault in self.worker_faults:
            if _draw(self.seed, "worker", index,
                     fault.mode) < fault.probability:
                return WorkerAction(mode=fault.mode, hang_s=fault.hang_s)
        return None

    def store_action(self, key: str) -> Optional[str]:
        """The store-fault mode hitting the entry ``key``, if any."""
        for fault in self.store_faults:
            if _draw(self.seed, "store", key,
                     fault.mode) < fault.probability:
                return fault.mode
        return None

    # -- convenience ---------------------------------------------------------
    def reseeded(self, seed: int) -> "FaultPlan":
        """The same fault declarations under a different seed."""
        return FaultPlan(seed=seed, counter_faults=self.counter_faults,
                         tier_faults=self.tier_faults,
                         worker_faults=self.worker_faults,
                         store_faults=self.store_faults, name=self.name)


def _schedule_quick(seed: int) -> FaultPlan:
    """A small mixed plan for CI smoke runs: every family, low volume."""
    return FaultPlan(
        seed=seed, name="quick",
        counter_faults=(CounterFault("P3", "drop", 0.6),
                        CounterFault("P7", "perturb", 0.5, 0.3)),
        tier_faults=(TierFault("*", "spike", 0.3, 2.0),),
        worker_faults=(WorkerFault("crash", 0.6),),
        store_faults=(StoreFault("corrupt", 0.5),),
    )


def _schedule_default(seed: int) -> FaultPlan:
    """The full mixed plan: all families at realistic probabilities."""
    return FaultPlan(
        seed=seed, name="default",
        counter_faults=(CounterFault("P3", "drop", 0.5),
                        CounterFault("P13", "drop", 0.35),
                        CounterFault("P7", "drop", 0.35),
                        CounterFault("P6", "zero", 0.25),
                        CounterFault("P12", "perturb", 0.4, 0.25)),
        tier_faults=(TierFault("*", "spike", 0.4, 3.0),
                     TierFault("*", "stall", 0.25, 150.0)),
        worker_faults=(WorkerFault("hang", 0.3, hang_s=1.5),
                       WorkerFault("crash", 0.55)),
        store_faults=(StoreFault("corrupt", 0.4),
                      StoreFault("truncate", 0.3),
                      StoreFault("vanish", 0.2)),
    )


def _schedule_counters(seed: int) -> FaultPlan:
    """Counter loss only: the perf-multiplexing stress test."""
    return FaultPlan(
        seed=seed, name="counters",
        counter_faults=(CounterFault("*", "drop", 0.25),
                        CounterFault("*", "perturb", 0.15, 0.2)),
    )


def _schedule_tiers(seed: int) -> FaultPlan:
    """Latency spikes/stalls only: the CXL tail-pathology stress test."""
    return FaultPlan(
        seed=seed, name="tiers",
        tier_faults=(TierFault("*", "spike", 0.6, 3.0),
                     TierFault("*", "stall", 0.4, 150.0)),
    )


def _schedule_workers(seed: int) -> FaultPlan:
    """Worker crash/hang only: the pool-resilience stress test."""
    return FaultPlan(
        seed=seed, name="workers",
        worker_faults=(WorkerFault("hang", 0.5, hang_s=1.5),
                       WorkerFault("crash", 0.7)),
    )


def _schedule_serve(seed: int) -> FaultPlan:
    """The live-service plan for ``repro chaos --target serve``.

    Store disconnect bursts (to trip the circuit breaker), solver
    crashes and short hangs (to exercise retry and deadline paths),
    and mild tier-latency spikes (to slow solves enough that the
    coalescer actually batches).  Hangs are kept well under typical
    request deadlines so they surface as latency, not mass expiry.
    """
    return FaultPlan(
        seed=seed, name="serve",
        tier_faults=(TierFault("*", "spike", 0.2, 1.5),),
        worker_faults=(WorkerFault("crash", 0.35),
                       WorkerFault("hang", 0.2, hang_s=0.3)),
        store_faults=(StoreFault("disconnect", 0.5),
                      StoreFault("corrupt", 0.3)),
    )


def _schedule_store(seed: int) -> FaultPlan:
    """Cache damage only: the corruption-is-a-miss stress test."""
    return FaultPlan(
        seed=seed, name="store",
        store_faults=(StoreFault("corrupt", 0.6),
                      StoreFault("truncate", 0.4),
                      StoreFault("vanish", 0.3)),
    )


#: Named fault schedules accepted by ``repro chaos --schedule``.
SCHEDULES: Dict[str, object] = {
    "quick": _schedule_quick,
    "default": _schedule_default,
    "counters": _schedule_counters,
    "tiers": _schedule_tiers,
    "workers": _schedule_workers,
    "store": _schedule_store,
    "serve": _schedule_serve,
}


def named_plan(name: str, seed: int = 0) -> FaultPlan:
    """Instantiate a registered schedule under ``seed``."""
    try:
        factory = SCHEDULES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault schedule {name!r}; "
            f"choose from {', '.join(sorted(SCHEDULES))}") from None
    return factory(seed)
