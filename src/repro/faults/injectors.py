"""Fault injectors: apply a :class:`~repro.faults.plan.FaultPlan`.

Each injector adapts one fault family to the seam where it strikes a
real deployment:

- :class:`CounterInjector` mutates :class:`~repro.core.counters.
  CounterSample` objects the way perf counter multiplexing does -
  events vanish or report garbage, ``CYCLES`` always survives;
- :class:`ChaosStore` damages freshly-written persistent cache entries
  the way a crashed writer or bad disk does - after the atomic replace,
  so the store's own write path stays honest;
- :class:`LatencyInjector` installs the :func:`~repro.uarch.memory.
  set_latency_fault_hook` so slow-tier latency computations see tail
  spikes and transient stalls.

All injection sites are deterministic under the plan's seed (see
:mod:`repro.faults.plan`), so every injector doubles as a replay tool.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Union

from ..core.counters import Counter, CounterSample
from ..runtime.errors import StoreError
from ..runtime.store import ResultStore
from ..uarch import memory
from ..uarch.config import MemoryDeviceConfig
from .plan import FaultPlan, _draw


class CounterInjector:
    """Applies a plan's counter faults to raw samples.

    ``apply`` is pure in the plan's seed: the same ``(sample, context)``
    always receives the same faults.  Injection counts accumulate in
    :attr:`injected` for reporting.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.injected: Dict[str, int] = {}

    def _count(self, mode: str) -> None:
        name = f"counter_{mode}"
        self.injected[name] = self.injected.get(name, 0) + 1

    def apply(self, sample: CounterSample, context) -> CounterSample:
        """A copy of ``sample`` with this plan's counter faults applied.

        ``context`` identifies the sample site (workload name, window
        index, ...) so distinct samples draw independent faults.
        ``CYCLES`` is never dropped or zeroed - a sample cannot exist
        without it, exactly as on real hardware where the fixed cycle
        counter is not multiplexed.
        """
        values = {}
        for counter, value in sample.items():
            fault = self.plan.counter_action(context, counter.value)
            if fault is None or counter is Counter.CYCLES:
                values[counter] = value
                continue
            if fault.mode == "drop":
                self._count("drop")
                continue
            if fault.mode == "zero":
                self._count("zero")
                values[counter] = 0.0
                continue
            self._count("perturb")
            factor = self.plan.perturb_factor(context, counter.value,
                                              fault.magnitude)
            values[counter] = value * factor
        return CounterSample(values)


class ChaosStore(ResultStore):
    """A :class:`ResultStore` whose writes may be damaged afterwards.

    ``put`` completes normally (record appended and flushed), then the
    plan decides whether the record's bytes on disk are corrupted
    (payload bytes flipped - a torn sector under the CRC), truncated
    (the segment cut mid-record - a writer that died mid-append), or
    vanished (the segment cut at the record start - an external
    cleaner; the very next append reuses the space).  Reads are
    untouched: the base class's corruption-is-a-miss contract is
    exactly what the chaos suite verifies, both through this store's
    own read path and through a fresh reader's open-time segment scan.
    """

    def __init__(self, root: Union[pathlib.Path, str], plan: FaultPlan):
        super().__init__(pathlib.Path(root))
        self.plan = plan
        self.injected: Dict[str, int] = {}

    #: The modes this injector can realise: on-disk damage only.
    #: ``disconnect`` is an availability fault, not a damage fault -
    #: :class:`FlakyStore` implements it.
    DAMAGE_MODES = ("corrupt", "truncate", "vanish")

    def put(self, key: str, payload) -> None:
        super().put(key, payload)
        mode = self.plan.store_action(key)
        if mode is None or mode not in self.DAMAGE_MODES:
            return
        location = self._record_location(key)
        if location is None:   # pragma: no cover - put just indexed it
            return
        try:
            if mode == "corrupt":
                # Flip the record's last payload bytes in place: the
                # header (and its claimed lengths) stay plausible, so
                # only the CRC can unmask the damage.
                flip_at = location.offset + location.length - 4
                with open(location.path, "r+b") as handle:
                    handle.seek(flip_at)
                    tail = handle.read(4)
                    handle.seek(flip_at)
                    handle.write(bytes(b ^ 0xFF for b in tail))
                self._drop_cached(key)
            elif mode == "truncate":
                self._truncate_at(location.path, location.offset +
                                  location.length // 2)
                self._drop_cached(key)
            elif mode == "vanish":
                self._truncate_at(location.path, location.offset)
                self._drop_cached(key)
                self._drop_index(key)
        except OSError:   # pragma: no cover - damage is best-effort
            return
        name = f"store_{mode}"
        self.injected[name] = self.injected.get(name, 0) + 1

    def put_many(self, items) -> None:
        # The batched commit path must stay damageable: route every
        # entry through ``put`` so each write draws its own fault.
        for key, payload in items:
            self.put(key, payload)


class FlakyStore(ChaosStore):
    """A :class:`ChaosStore` that can also become unreachable.

    Models the availability failure the on-disk damage modes cannot: a
    remote or network-mounted store that stops answering.  Operations
    are counted; each block of :attr:`burst` consecutive operations
    draws once against the plan's ``disconnect`` faults, and a faulted
    block raises :class:`~repro.runtime.errors.StoreError` for every
    operation in it.  Whole-block outages guarantee the consecutive
    failures a circuit breaker needs to trip (a per-operation coin flip
    would make breaker chaos assertions flaky), while staying
    deterministic in the plan's seed.

    Damage modes (corrupt/truncate/vanish) still apply to writes that
    get through, via the base class.
    """

    #: Operations per outage-draw block; at least the breaker's
    #: failure threshold so one faulted block always trips it.
    DEFAULT_BURST = 6

    def __init__(self, root: Union[pathlib.Path, str], plan: FaultPlan,
                 burst: int = DEFAULT_BURST):
        super().__init__(root, plan)
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.burst = burst
        self._operations = 0

    def _gate(self, operation: str, key: str) -> None:
        disconnects = [fault for fault in self.plan.store_faults
                       if fault.mode == "disconnect"]
        if not disconnects:
            return
        index = self._operations
        self._operations += 1
        block = index // self.burst
        for fault in disconnects:
            if _draw(self.plan.seed, "store-disconnect",
                     block) < fault.probability:
                self.injected["store_disconnect"] = (
                    self.injected.get("store_disconnect", 0) + 1)
                raise StoreError(
                    f"injected store disconnect "
                    f"({operation} {key[:12]}..., block {block})")

    def get(self, key: str):
        self._gate("get", key)
        return super().get(key)

    def put(self, key: str, payload) -> None:
        self._gate("put", key)
        super().put(key, payload)


class LatencyInjector:
    """Context manager injecting tier latency faults into the substrate.

    While entered, every :func:`~repro.uarch.memory.loaded_latency_ns`
    computation passes through the plan's tier faults: ``spike``
    multiplies the latency, ``stall`` adds flat nanoseconds.  A
    per-device call counter keys the draws, so a fixed call sequence
    (serial execution) sees a fixed fault sequence.

    The hook is process-local: pool workers never inherit it, which is
    why the chaos harness runs the tier phase serially.  On exit the
    previously-installed hook (usually ``None``) is restored even if
    the body raised.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.injected: Dict[str, int] = {}
        self._calls: Dict[str, int] = {}
        self._previous: Optional[object] = None
        self._active = False

    def _hook(self, device: MemoryDeviceConfig,
              latency_ns: float) -> float:
        tier = device.name
        call_index = self._calls.get(tier, 0)
        self._calls[tier] = call_index + 1
        fault = self.plan.tier_action(tier, call_index)
        if fault is None:
            return latency_ns
        name = f"tier_{fault.mode}"
        self.injected[name] = self.injected.get(name, 0) + 1
        if fault.mode == "spike":
            return latency_ns * (1.0 + fault.magnitude)
        return latency_ns + fault.magnitude

    def __enter__(self) -> "LatencyInjector":
        if self._active:
            raise RuntimeError("LatencyInjector is not reentrant")
        self._previous = memory.set_latency_fault_hook(self._hook)
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        memory.set_latency_fault_hook(self._previous)
        self._previous = None
        self._active = False
