"""Fault injectors: apply a :class:`~repro.faults.plan.FaultPlan`.

Each injector adapts one fault family to the seam where it strikes a
real deployment:

- :class:`CounterInjector` mutates :class:`~repro.core.counters.
  CounterSample` objects the way perf counter multiplexing does -
  events vanish or report garbage, ``CYCLES`` always survives;
- :class:`ChaosStore` damages freshly-written persistent cache entries
  the way a crashed writer or bad disk does - after the atomic replace,
  so the store's own write path stays honest;
- :class:`LatencyInjector` installs the :func:`~repro.uarch.memory.
  set_latency_fault_hook` so slow-tier latency computations see tail
  spikes and transient stalls.

All injection sites are deterministic under the plan's seed (see
:mod:`repro.faults.plan`), so every injector doubles as a replay tool.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Union

from ..core.counters import Counter, CounterSample
from ..runtime.store import ResultStore
from ..uarch import memory
from ..uarch.config import MemoryDeviceConfig
from .plan import FaultPlan


class CounterInjector:
    """Applies a plan's counter faults to raw samples.

    ``apply`` is pure in the plan's seed: the same ``(sample, context)``
    always receives the same faults.  Injection counts accumulate in
    :attr:`injected` for reporting.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.injected: Dict[str, int] = {}

    def _count(self, mode: str) -> None:
        name = f"counter_{mode}"
        self.injected[name] = self.injected.get(name, 0) + 1

    def apply(self, sample: CounterSample, context) -> CounterSample:
        """A copy of ``sample`` with this plan's counter faults applied.

        ``context`` identifies the sample site (workload name, window
        index, ...) so distinct samples draw independent faults.
        ``CYCLES`` is never dropped or zeroed - a sample cannot exist
        without it, exactly as on real hardware where the fixed cycle
        counter is not multiplexed.
        """
        values = {}
        for counter, value in sample.items():
            fault = self.plan.counter_action(context, counter.value)
            if fault is None or counter is Counter.CYCLES:
                values[counter] = value
                continue
            if fault.mode == "drop":
                self._count("drop")
                continue
            if fault.mode == "zero":
                self._count("zero")
                values[counter] = 0.0
                continue
            self._count("perturb")
            factor = self.plan.perturb_factor(context, counter.value,
                                              fault.magnitude)
            values[counter] = value * factor
        return CounterSample(values)


class ChaosStore(ResultStore):
    """A :class:`ResultStore` whose writes may be damaged afterwards.

    ``put`` completes normally (atomic replace and all), then the plan
    decides whether the entry on disk is corrupted, truncated, or
    deleted - modeling a writer that died after the rename, a torn
    sector, or an external cleaner.  Reads are untouched: the base
    class's corruption-is-a-miss contract is exactly what the chaos
    suite verifies.
    """

    def __init__(self, root: Union[pathlib.Path, str], plan: FaultPlan):
        super().__init__(pathlib.Path(root))
        self.plan = plan
        self.injected: Dict[str, int] = {}

    def put(self, key: str, payload) -> None:
        super().put(key, payload)
        mode = self.plan.store_action(key)
        if mode is None:
            return
        path = self.path_for(key)
        try:
            if mode == "corrupt":
                path.write_text("{ this is not json !!")
            elif mode == "truncate":
                text = path.read_text()
                path.write_text(text[:max(1, len(text) // 2)])
            elif mode == "vanish":
                path.unlink()
        except OSError:
            return
        name = f"store_{mode}"
        self.injected[name] = self.injected.get(name, 0) + 1


class LatencyInjector:
    """Context manager injecting tier latency faults into the substrate.

    While entered, every :func:`~repro.uarch.memory.loaded_latency_ns`
    computation passes through the plan's tier faults: ``spike``
    multiplies the latency, ``stall`` adds flat nanoseconds.  A
    per-device call counter keys the draws, so a fixed call sequence
    (serial execution) sees a fixed fault sequence.

    The hook is process-local: pool workers never inherit it, which is
    why the chaos harness runs the tier phase serially.  On exit the
    previously-installed hook (usually ``None``) is restored even if
    the body raised.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.injected: Dict[str, int] = {}
        self._calls: Dict[str, int] = {}
        self._previous: Optional[object] = None
        self._active = False

    def _hook(self, device: MemoryDeviceConfig,
              latency_ns: float) -> float:
        tier = device.name
        call_index = self._calls.get(tier, 0)
        self._calls[tier] = call_index + 1
        fault = self.plan.tier_action(tier, call_index)
        if fault is None:
            return latency_ns
        name = f"tier_{fault.mode}"
        self.injected[name] = self.injected.get(name, 0) + 1
        if fault.mode == "spike":
            return latency_ns * (1.0 + fault.magnitude)
        return latency_ns + fault.magnitude

    def __enter__(self) -> "LatencyInjector":
        if self._active:
            raise RuntimeError("LatencyInjector is not reentrant")
        self._previous = memory.set_latency_fault_hook(self._hook)
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        memory.set_latency_fault_hook(self._previous)
        self._previous = None
        self._active = False
