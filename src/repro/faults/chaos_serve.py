"""Live-service chaos: ``repro chaos --target serve``.

Where :mod:`repro.faults.chaos` stresses the *batch* stack,
this module boots a real :class:`~repro.serve.server.PredictionServer`
in-process, injects the plan's faults into every seam the service has -

- **store disconnects** via :class:`~repro.faults.injectors.FlakyStore`
  (bursts of :class:`~repro.runtime.errors.StoreError` that must trip
  the circuit breaker),
- **solver crashes and hangs** via the coalescer's ``solve_hook``
  (attempt-0-only, so recovery is guaranteed by construction),
- **tier latency spikes** via :class:`~repro.faults.injectors.
  LatencyInjector` (the hook is process-local and the coalescer solves
  in an in-process thread, so the live server sees it) -

then drives open-loop constant-rate load at it and asserts the
**graceful degradation contract** (``docs/SERVE.md``): every request
gets exactly one well-formed answer from the explicit outcome
vocabulary - solved, shed, or deadline-expired - with zero internal
errors, zero transport failures, no hangs, and no silent drops; the
breaker opens under disconnect bursts instead of failing requests; and
the drain at the end leaves nothing queued.

Deterministic fault sites + an open-loop arrival schedule make runs
*statistically* stable rather than bit-reproducible: timing decides
which batch a request joins, never whether it is answered.
"""

from __future__ import annotations

import pathlib
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..runtime.errors import TransientTaskError
from ..serve.breaker import CircuitBreaker
from ..serve.loadgen import run_loadgen_sync
from ..serve.server import ServerThread
from ..serve.slo import SLOReport
from ..uarch.config import get_platform
from ..uarch.machine import Machine
from .injectors import FlakyStore, LatencyInjector
from .plan import FaultPlan, named_plan

#: Breaker cooldown for chaos runs: short enough that a run sees the
#: full open -> half-open -> closed cycle inside its duration.
CHAOS_BREAKER_COOLDOWN_S = 1.0

#: Cap on injected solver hangs: long enough to register as tail
#: latency, short enough that a default deadline survives one.
MAX_INJECTED_HANG_S = 0.4


@dataclass
class ServeChaosReport:
    """One live-service chaos run: the SLO plus the invariant verdicts."""

    schedule: str
    seed: int
    slo: SLOReport
    injected: Dict[str, int] = field(default_factory=dict)
    invariants: Dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.invariants.values())

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def render(self) -> str:
        held = sum(1 for ok in self.invariants.values() if ok)
        lines = [
            f"chaos --target serve '{self.schedule}' seed={self.seed}: "
            f"{'PASS' if self.ok else 'FAIL'} "
            f"({held}/{len(self.invariants)} invariants held)",
            f"injected faults: {self.total_injected}",
        ]
        for name in sorted(self.injected):
            lines.append(f"  {name:<18s} {self.injected[name]:6d}")
        lines.append(self.slo.render())
        lines.append("invariants:")
        for name in sorted(self.invariants):
            verdict = "pass" if self.invariants[name] else "FAIL"
            lines.append(f"  [{verdict}] {name}")
        return "\n".join(lines)


def _solve_hook(plan: FaultPlan):
    """The coalescer fault seam for the plan's worker faults.

    Crashes raise :class:`~repro.runtime.errors.TransientTaskError`
    (the coalescer retries; only attempt 0 ever faults, so recovery is
    certain).  Hangs sleep - bounded, so they show up as tail latency
    and deadline expiries rather than a wedged service.
    """
    counts: Dict[str, int] = {}

    def hook(batch_index: int, attempt: int) -> None:
        action = plan.worker_action(batch_index, attempt)
        if action is None:
            return
        if action.mode == "crash":
            counts["worker_crash"] = counts.get("worker_crash", 0) + 1
            raise TransientTaskError(
                f"injected solver crash (batch {batch_index})")
        counts["worker_hang"] = counts.get("worker_hang", 0) + 1
        time.sleep(min(action.hang_s, MAX_INJECTED_HANG_S))

    hook.counts = counts  # type: ignore[attr-defined]
    return hook


def run_serve_chaos(schedule: str = "serve", seed: int = 0, *,
                    rate_rps: float = 60.0, duration_s: float = 4.0,
                    deadline_ms: float = 2000.0,
                    platform: str = "skx2s",
                    queue_bound: Optional[int] = None,
                    loadgen_seed: int = 0) -> ServeChaosReport:
    """Boot a faulted live server, load it, assert degradation invariants.

    The store is always a throwaway temporary directory - a serve
    chaos run never touches real cached results.
    """
    plan = named_plan(schedule, seed)
    machine = Machine(get_platform(platform))
    hook = _solve_hook(plan)
    breaker = CircuitBreaker(cooldown_s=CHAOS_BREAKER_COOLDOWN_S)

    with tempfile.TemporaryDirectory(prefix="repro-serve-chaos-") as tmp:
        store = FlakyStore(pathlib.Path(tmp) / "store", plan)
        thread = ServerThread(
            machine, store=store, breaker=breaker,
            queue_bound=queue_bound, solve_hook=hook)
        with LatencyInjector(plan) as latency:
            host, port = thread.start()
            slo = run_loadgen_sync(
                host, port, rate_rps=rate_rps, duration_s=duration_s,
                deadline_ms=deadline_ms, seed=loadgen_seed)
            thread.stop()
        final_stats: Dict[str, Any] = thread.stats()

    injected: Dict[str, int] = dict(store.injected)
    for name, value in hook.counts.items():  # type: ignore[attr-defined]
        injected[name] = injected.get(name, 0) + value
    for name, value in latency.injected.items():
        injected[name] = injected.get(name, 0) + value

    outcomes = slo.outcomes
    answered = sum(outcomes.values())
    has_disconnects = any(fault.mode == "disconnect"
                          for fault in plan.store_faults)
    has_crashes = any(fault.mode == "crash"
                      for fault in plan.worker_faults)
    breaker_stats = final_stats.get("breaker", {})

    invariants: Dict[str, bool] = {
        # Every request got exactly one well-formed answer: no hangs,
        # no silent drops, no malformed frames.
        "every_request_answered": (
            answered == slo.sent
            and outcomes.get("transport_error", 0) == 0),
        # All answers came from the explicit degradation vocabulary -
        # never a 500, never a 400 (the generator sends valid bodies).
        "no_internal_errors": (
            outcomes.get("error", 0) == 0
            and outcomes.get("bad_request", 0) == 0),
        # Every internally-expired query produced exactly one explicit
        # deadline response: expiry is an answer, not a drop.
        "deadlines_explicit": (
            final_stats.get("deadline_expired", 0)
            == outcomes.get("deadline", 0)),
        # Concurrency actually coalesced: >1 query lane per solve.
        "coalesce_factor_above_one": slo.coalesce_factor > 1.0,
        # The drain flushed everything it had admitted.
        "clean_drain": (final_stats.get("queued", 1) == 0
                        and final_stats.get("draining") is True),
    }
    if has_disconnects:
        # Disconnect bursts must trip the breaker (degrade to
        # solve-without-cache), and the store faults must actually
        # have fired for that claim to mean anything.
        invariants["breaker_opened_on_disconnects"] = (
            breaker_stats.get("opens", 0) >= 1
            and injected.get("store_disconnect", 0) >= 1)
    if has_crashes:
        # Injected solver crashes are absorbed by retry, never
        # surfacing as request errors (asserted above) - and the
        # retry path must actually have run.
        invariants["solver_crashes_retried"] = (
            final_stats.get("solve_retries", 0) >= 1
            or injected.get("worker_crash", 0) == 0)

    return ServeChaosReport(
        schedule=schedule, seed=seed, slo=slo,
        injected=injected, invariants=invariants)
