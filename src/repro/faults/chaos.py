"""The chaos harness: run the stack under faults, assert recovery.

``python -m repro chaos --schedule <name>`` drives this module.  One
:func:`run_chaos` invocation exercises every fault family of the named
schedule against a small workload suite and checks the *graceful
degradation* invariants (``docs/FAULTS.md``):

1. **No crash.**  Every phase completes; injected faults surface as
   degraded results and telemetry, never as exceptions.
2. **No cache poisoning.**  Fault-perturbed results never reach the
   persistent store, and damaged store entries read as misses that are
   re-executed and rewritten.
3. **Prediction under counter loss.**  Every profiling window yields a
   prediction even with counters missing, flagged ``degraded``, and the
   degraded predictions stay within :data:`DEGRADED_MAPE_BOUND` of the
   clean ones.
4. **Result integrity.**  Runs that recover from worker crashes,
   hangs, or store damage produce byte-identical payloads to a clean
   serial run.

Everything is deterministic in ``(schedule, seed)``: a failing chaos
run replays exactly.
"""

from __future__ import annotations

import math
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.online import OnlinePredictor
from ..core.signature import signature_from_sample
from ..core.slowdown import SlowdownPredictor
from ..runtime import serde
from ..runtime.executor import Executor
from ..runtime.spec import RunSpec
from ..runtime.store import ResultStore, default_cache_dir
from ..runtime.telemetry import Telemetry
from ..uarch.config import get_platform
from ..uarch.interleave import Placement
from ..uarch.machine import Machine
from ..workloads.phases import tc_kron_phased
from ..workloads.suites import named_workloads
from .injectors import ChaosStore, CounterInjector, LatencyInjector
from .plan import FaultPlan, named_plan

#: Acceptance bound on the mean relative gap between degraded and clean
#: predictions (invariant 3).  Counter-loss fallbacks are intentionally
#: coarse - dropping P3 substitutes the wider P2 stall band, dropping
#: P13 floors MLP at 1 - so degraded totals can drift far from clean
#: ones; the invariant asserts they stay *bounded* (and finite), not
#: accurate.  The default schedule at seed 0 measures ~0.45.
DEGRADED_MAPE_BOUND = 1.5

#: Relative-error denominator floor: clean totals near zero would
#: otherwise explode the ratio.
_MAPE_FLOOR = 0.05

#: Workloads exercised per schedule (the named-suite prefix).
_DEFAULT_LIMITS = {"quick": 2}
_FALLBACK_LIMIT = 3


@dataclass
class ChaosReport:
    """Everything one chaos run observed, plus the invariant verdicts."""

    schedule: str
    seed: int
    workloads: int
    windows: int
    #: Injected-fault counts by kind (``counter_drop``, ``tier_spike``,
    #: ``worker_crash``, ``store_corrupt``, ...).
    injected: Dict[str, int] = field(default_factory=dict)
    #: Share of streamed windows whose sample lost counters.
    degraded_fraction: float = 0.0
    #: Mean relative gap between degraded and clean predictions.
    degraded_mape: float = 0.0
    invariants: Dict[str, bool] = field(default_factory=dict)
    telemetry: Optional[Telemetry] = None

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return all(self.invariants.values())

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def render(self) -> str:
        """Deterministic multi-line report (what the CLI prints)."""
        held = sum(1 for ok in self.invariants.values() if ok)
        lines = [
            f"chaos '{self.schedule}' seed={self.seed}: "
            f"{'PASS' if self.ok else 'FAIL'} "
            f"({held}/{len(self.invariants)} invariants held)",
            f"workloads: {self.workloads}; "
            f"streamed windows: {self.windows}",
            f"injected faults: {self.total_injected}",
        ]
        for name in sorted(self.injected):
            lines.append(f"  {name:<16s} {self.injected[name]:6d}")
        lines.append(
            f"degraded windows: {self.degraded_fraction:.1%} "
            f"of the stream")
        lines.append(
            f"degraded-prediction MAPE vs clean: "
            f"{self.degraded_mape:.3f} (bound {DEGRADED_MAPE_BOUND})")
        lines.append("invariants:")
        for name in sorted(self.invariants):
            verdict = "pass" if self.invariants[name] else "FAIL"
            lines.append(f"  [{verdict}] {name}")
        return "\n".join(lines)


def _payloads(results) -> List[Dict]:
    return [serde.run_result_to_dict(result) for result in results]


def _merge_counts(target: Dict[str, int],
                  source: Dict[str, int]) -> None:
    for name, value in source.items():
        target[name] = target.get(name, 0) + value


def run_chaos(schedule: str = "default", seed: int = 0,
              limit: Optional[int] = None, platform: str = "skx2s",
              device: str = "cxl-a", jobs: int = 1,
              cache_dir: Optional[pathlib.Path] = None,
              use_cache: bool = True,
              progress: bool = False) -> ChaosReport:
    """Run the chaos suite under one named fault schedule.

    The clean baseline phase may use (and safely warm) the regular
    result cache; the store-damage phase always works in a throwaway
    temporary directory, so a chaos run never hurts real cached
    results.
    """
    plan = named_plan(schedule, seed)
    machine = Machine(get_platform(platform))
    suite = list(named_workloads().values())
    count = limit if limit else _DEFAULT_LIMITS.get(schedule,
                                                    _FALLBACK_LIMIT)
    workloads = suite[:min(count, len(suite))]

    telemetry = Telemetry()
    injected: Dict[str, int] = {}
    invariants: Dict[str, bool] = {}

    # -- phase 1: clean baseline --------------------------------------------
    store = None
    if use_cache:
        root = pathlib.Path(cache_dir) if cache_dir is not None \
            else default_cache_dir()
        store = ResultStore(root)
    executor = Executor(jobs=jobs, store=store, progress=progress)
    with telemetry.stage("chaos.clean", schedule=schedule):
        calibration = executor.calibration(machine, device)
        predictor = SlowdownPredictor(calibration)

        dram_specs = [RunSpec.from_machine(machine, w,
                                           Placement.dram_only())
                      for w in workloads]
        slow_specs = [RunSpec.from_machine(machine, w,
                                           Placement.slow_only(device))
                      for w in workloads]
        all_specs = dram_specs + slow_specs
        clean_results = executor.run(all_specs, label="chaos:clean")
        clean_payloads = _payloads(clean_results)
        clean_profiles = [result.profiled()
                          for result in clean_results[:len(workloads)]]
        clean_predictions = [predictor.predict(profile)
                             for profile in clean_profiles]
    telemetry.merge(executor.telemetry)
    invariants["clean_predictions_not_degraded"] = not any(
        prediction.degraded for prediction in clean_predictions)

    # -- phase 2: counter faults --------------------------------------------
    counter_injector = CounterInjector(plan)
    flagging_consistent = True
    gaps: List[float] = []
    with telemetry.stage("chaos.counters", schedule=schedule):
        for workload, profile, clean in zip(workloads, clean_profiles,
                                            clean_predictions):
            faulted = counter_injector.apply(profile.sample,
                                             workload.name)
            sig = signature_from_sample(faulted,
                                        profile.platform_family,
                                        profile.frequency_ghz,
                                        label=workload.name)
            prediction = predictor.predict_signature(sig)
            if not math.isfinite(prediction.total):
                flagging_consistent = False
                continue
            if sig.missing:
                if not prediction.degraded or \
                        prediction.confidence >= 1.0:
                    flagging_consistent = False
                gaps.append(abs(prediction.total - clean.total) /
                            max(abs(clean.total), _MAPE_FLOOR))
            elif prediction.degraded:
                flagging_consistent = False
        degraded_mape = sum(gaps) / len(gaps) if gaps else 0.0

        # Streamed per-window predictions: every window must produce a
        # (possibly degraded) update - this is the missing-counter
        # tolerance invariant at perf-sampling granularity.
        phased_profile = machine.profile_phased(
            tc_kron_phased(cycles=2))
        online = OnlinePredictor(calibration,
                                 phased_profile.platform_family,
                                 phased_profile.frequency_ghz)
        for index, window in enumerate(phased_profile.windows):
            online.observe(counter_injector.apply(window,
                                                  ("tc-kron", index)))
        windows = len(phased_profile.windows)
    invariants["prediction_for_every_window"] = (
        len(online.history) == windows and
        all(math.isfinite(update.instant.total)
            for update in online.history))
    invariants["degraded_flagging_consistent"] = flagging_consistent
    invariants["degraded_mape_bounded"] = (
        degraded_mape <= DEGRADED_MAPE_BOUND)
    _merge_counts(injected, counter_injector.injected)

    # -- phase 3: store damage ----------------------------------------------
    with telemetry.stage("chaos.store", schedule=schedule), \
            tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        chaos_root = pathlib.Path(tmp) / "store"
        chaos_store = ChaosStore(chaos_root, plan)
        seeder = Executor(jobs=1, store=chaos_store)
        seeder.run(all_specs, label="chaos:store-seed")
        telemetry.merge(seeder.telemetry)

        reader_store = ResultStore(chaos_root)
        reader = Executor(jobs=1, store=reader_store)
        reread = reader.run(all_specs, label="chaos:store-verify")
        telemetry.merge(reader.telemetry)

        damaged = (chaos_store.injected.get("store_corrupt", 0) +
                   chaos_store.injected.get("store_truncate", 0))
        _merge_counts(injected, chaos_store.injected)
        invariants["store_corruption_is_miss"] = (
            reader_store.stats.corrupt == damaged)
        invariants["store_recovers_clean_results"] = (
            _payloads(reread) == clean_payloads)
        invariants["store_entries_rewritten"] = all(
            spec.fingerprint() in reader_store for spec in all_specs)

    # -- phase 4: tier latency faults ---------------------------------------
    baseline_entries = len(store) if store is not None else 0
    tier_executor = Executor(jobs=1, store=store, fault_plan=plan)
    with telemetry.stage("chaos.tiers", schedule=schedule), \
            LatencyInjector(plan) as latency:
        tier_results = tier_executor.run(slow_specs,
                                         label="chaos:tiers")
    telemetry.merge(tier_executor.telemetry)
    _merge_counts(injected, latency.injected)
    invariants["tier_faulted_runs_complete"] = (
        len(tier_results) == len(slow_specs) and
        all(math.isfinite(result.runtime_s) and result.runtime_s > 0
            for result in tier_results))

    # -- phase 5: worker crash/hang faults ----------------------------------
    hangs = [fault.hang_s for fault in plan.worker_faults
             if fault.mode == "hang"]
    timeout = min(hangs) / 3.0 if hangs else None
    worker_executor = Executor(jobs=max(2, jobs), store=store,
                               fault_plan=plan, task_timeout=timeout)
    with telemetry.stage("chaos.workers", schedule=schedule):
        worker_results = worker_executor.run(all_specs,
                                             label="chaos:workers")
    telemetry.merge(worker_executor.telemetry)
    invariants["worker_faults_recover_exact_results"] = (
        _payloads(worker_results) == clean_payloads)
    invariants["no_cache_poisoning"] = (
        store is None or len(store) == baseline_entries)

    # Worker-fault injections were counted by the executors under
    # ``injected_<mode>``; fold them into the report's namespace.
    for name, value in telemetry.counters.items():
        if name.startswith("injected_"):
            injected[f"worker_{name[len('injected_'):]}"] = value

    return ChaosReport(
        schedule=schedule,
        seed=seed,
        workloads=len(workloads),
        windows=windows,
        injected=injected,
        degraded_fraction=online.degraded_fraction,
        degraded_mape=degraded_mape,
        invariants=invariants,
        telemetry=telemetry,
    )
