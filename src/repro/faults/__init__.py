"""Fault injection and chaos verification (``docs/FAULTS.md``).

Three layers:

- :mod:`~repro.faults.plan` - declarative, seed-deterministic
  :class:`FaultPlan` schedules (which faults, where, how often);
- :mod:`~repro.faults.injectors` - adapters that apply a plan at each
  seam: counter samples, the persistent store, tier latencies (worker
  faults are applied by the executor itself when a plan is attached);
- :mod:`~repro.faults.chaos` - the harness behind ``python -m repro
  chaos``, which runs the stack under a named schedule and asserts the
  graceful-degradation invariants.
"""

from .chaos import DEGRADED_MAPE_BOUND, ChaosReport, run_chaos
from .injectors import ChaosStore, CounterInjector, LatencyInjector
from .plan import (SCHEDULES, CounterFault, FaultPlan, StoreFault,
                   TierFault, WorkerFault, named_plan)

__all__ = [
    "FaultPlan", "CounterFault", "TierFault", "WorkerFault",
    "StoreFault", "SCHEDULES", "named_plan",
    "CounterInjector", "ChaosStore", "LatencyInjector",
    "ChaosReport", "run_chaos", "DEGRADED_MAPE_BOUND",
]
