"""Fault injection and chaos verification (``docs/FAULTS.md``).

Three layers:

- :mod:`~repro.faults.plan` - declarative, seed-deterministic
  :class:`FaultPlan` schedules (which faults, where, how often);
- :mod:`~repro.faults.injectors` - adapters that apply a plan at each
  seam: counter samples, the persistent store, tier latencies (worker
  faults are applied by the executor itself when a plan is attached);
- :mod:`~repro.faults.chaos` - the harness behind ``python -m repro
  chaos``, which runs the stack under a named schedule and asserts the
  graceful-degradation invariants;
- :mod:`~repro.faults.chaos_serve` - the same idea against a *live*
  :mod:`repro.serve` server (``repro chaos --target serve``): store
  disconnects, solver crashes/hangs, and latency spikes injected into
  a running service under open-loop load.
"""

from .chaos import DEGRADED_MAPE_BOUND, ChaosReport, run_chaos
from .chaos_serve import ServeChaosReport, run_serve_chaos
from .injectors import (ChaosStore, CounterInjector, FlakyStore,
                        LatencyInjector)
from .plan import (SCHEDULES, CounterFault, FaultPlan, StoreFault,
                   TierFault, WorkerFault, named_plan)

__all__ = [
    "FaultPlan", "CounterFault", "TierFault", "WorkerFault",
    "StoreFault", "SCHEDULES", "named_plan",
    "CounterInjector", "ChaosStore", "FlakyStore", "LatencyInjector",
    "ChaosReport", "run_chaos", "DEGRADED_MAPE_BOUND",
    "ServeChaosReport", "run_serve_chaos",
]
