"""Content-hash result cache for whole-repo lint runs.

The v2 graph passes parse every file and run a fixed point over the
call graph; doing that from scratch on every ``repro lint`` (and every
CI push) would make the linter the slowest gate in the repo.  The
cache keys each file's findings so an unchanged tree re-lints without
parsing a single AST:

- **local key** - ``sha256(file bytes)`` plus the *rules token*: a
  digest of the lint package's own sources and the active rule ids.
  Per-file rules depend on nothing else, so a hit is exact.
- **program key** - the local key plus the *program digest*: a digest
  over every Python file's content hash and the SCHEMA01 pin file.
  Whole-program findings for a file can change when any *other* file
  changes (a new caller flips a context label), so one edited file
  invalidates every program-rule entry - but the far more common
  no-change run hits everything.

Entries not touched by a run are dropped on save, so the cache file
tracks the working set instead of growing without bound.  Any decode
problem or token mismatch degrades to an empty cache - correctness
never depends on it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Dict, List, Optional, Sequence

from .engine import Finding

_CACHE_VERSION = 1
#: Default location, inside the ignored scratch dir the runtime uses.
DEFAULT_CACHE_RELPATH = ".repro-cache/lint-cache.json"

_FINDING_FIELDS = ("rule", "path", "line", "col", "message", "snippet",
                   "severity")


def content_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def rules_token(rule_ids: Sequence[str]) -> str:
    """Digest of the lint package's sources plus the active rules.

    Editing any rule, the engine, or the graph layer invalidates every
    cached entry - the cache can never serve findings computed by old
    rule code.
    """
    digest = hashlib.sha256()
    package_dir = pathlib.Path(__file__).resolve().parent
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    digest.update(",".join(sorted(rule_ids)).encode())
    return digest.hexdigest()


class LintCache:
    """One cache file: load, query, refresh, atomically persist."""

    def __init__(self, path: pathlib.Path, token: str):
        self.path = pathlib.Path(path)
        self.token = token
        self._entries: Dict[str, List[Dict[str, object]]] = {}
        self._touched: Dict[str, List[Dict[str, object]]] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) or \
                payload.get("version") != _CACHE_VERSION or \
                payload.get("token") != self.token:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, key: str) -> Optional[List[Finding]]:
        raw = self._entries.get(key)
        if raw is None:
            self.misses += 1
            return None
        try:
            findings = [Finding(**{field: entry[field]
                                   for field in _FINDING_FIELDS})
                        for entry in raw]
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        self._touched[key] = raw
        return findings

    def put(self, key: str, findings: Sequence[Finding]) -> None:
        raw = [finding.to_dict() for finding in findings]
        self._entries[key] = raw
        self._touched[key] = raw

    def save(self) -> None:
        """Write entries touched by this run; atomic via rename."""
        payload = {"version": _CACHE_VERSION, "tool": "camp-lint",
                   "token": self.token, "entries": self._touched}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), suffix=".tmp")
            with os.fdopen(handle, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path)
        except OSError:
            pass    # a cache that cannot persist is just a cold cache


def default_cache(root: pathlib.Path,
                  rule_ids: Sequence[str]) -> LintCache:
    return LintCache(root / DEFAULT_CACHE_RELPATH,
                     rules_token(rule_ids))
