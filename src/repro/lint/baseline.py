"""The checked-in baseline: grandfathered findings with justifications.

A baseline entry acknowledges one existing violation without fixing it.
Matching is by ``(rule, path, snippet)`` - the stripped source line -
so findings survive unrelated line-number churn but die the moment the
flagged line is edited, forcing a re-justification.  Every entry must
carry a human-written ``justification``; ``--write-baseline`` stamps
new entries with a TODO placeholder that the text reporter nags about.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, Iterable, List, Sequence, Tuple

from .engine import Finding

#: Default baseline location, relative to the repo root.
BASELINE_NAME = "lint-baseline.json"
#: Placeholder ``--write-baseline`` stamps; reporters flag it.
TODO_JUSTIFICATION = "TODO: justify or fix"

_FORMAT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    snippet: str
    justification: str

    def key(self) -> str:
        return "|".join((self.rule, self.path, self.snippet))

    def to_dict(self) -> Dict[str, str]:
        return {"rule": self.rule, "path": self.path,
                "snippet": self.snippet,
                "justification": self.justification}


class BaselineError(ValueError):
    """The baseline file is malformed (bad JSON, missing fields)."""


class Baseline:
    """An ordered set of :class:`BaselineEntry`, keyed for matching."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()):
        self.entries: List[BaselineEntry] = list(entries)
        self._by_key: Dict[str, BaselineEntry] = {
            entry.key(): entry for entry in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        return finding.key() in self._by_key

    def partition(self, findings: Sequence[Finding]
                  ) -> Tuple[List[Finding], List[Finding],
                             List[BaselineEntry]]:
        """Split ``findings`` into (active, baselined, stale entries).

        Stale entries matched no finding this run - the violation was
        fixed (or the line edited) and the entry should be deleted.
        """
        active: List[Finding] = []
        baselined: List[Finding] = []
        used: set = set()
        for finding in findings:
            if self.matches(finding):
                baselined.append(finding)
                used.add(finding.key())
            else:
                active.append(finding)
        stale = [entry for entry in self.entries
                 if entry.key() not in used]
        return active, baselined, stale

    def placeholder_entries(self) -> List[BaselineEntry]:
        """Entries still carrying the TODO justification."""
        return [entry for entry in self.entries
                if entry.justification.strip() == TODO_JUSTIFICATION]

    # -- persistence -------------------------------------------------------
    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise BaselineError(f"{path}: expected an object with "
                                f"an 'entries' list")
        entries = []
        for index, raw in enumerate(data["entries"]):
            try:
                justification = str(raw["justification"]).strip()
                if not justification:
                    raise KeyError("justification")
                entries.append(BaselineEntry(
                    rule=str(raw["rule"]), path=str(raw["path"]),
                    snippet=str(raw["snippet"]),
                    justification=justification))
            except (KeyError, TypeError) as exc:
                raise BaselineError(
                    f"{path}: entry {index} needs non-empty rule/path/"
                    f"snippet/justification fields") from exc
        return cls(entries)

    def save(self, path: pathlib.Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "tool": "camp-lint",
            "entries": [entry.to_dict() for entry in sorted(
                self.entries, key=BaselineEntry.key)],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False)
                        + "\n", encoding="utf-8")

    @classmethod
    def from_findings(cls, findings: Sequence[Finding],
                      previous: "Baseline" = None) -> "Baseline":
        """Baseline the given findings, keeping prior justifications."""
        prior = previous._by_key if previous is not None else {}
        entries = []
        seen: set = set()
        for finding in findings:
            key = finding.key()
            if key in seen:
                continue
            seen.add(key)
            kept = prior.get(key)
            entries.append(BaselineEntry(
                rule=finding.rule, path=finding.path,
                snippet=finding.snippet,
                justification=(kept.justification if kept is not None
                               else TODO_JUSTIFICATION)))
        return cls(entries)
