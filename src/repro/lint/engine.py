"""camp-lint: the rule engine behind ``python -m repro lint``.

The test suite can only *sample* CAMP's credibility invariants -
determinism of simulated runs, purity of the content-addressed cache
key, the closed Table 5 counter vocabulary.  camp-lint proves them
statically on every commit instead: each :class:`Rule` walks a file's
AST (or raw lines, for markdown) and emits structured
:class:`Finding` records; the CLI renders them as text or JSON and
fails the build while any finding is neither fixed, suppressed inline,
nor grandfathered in the checked-in baseline (``lint-baseline.json``).

Suppression syntax (``docs/LINT.md``):

- ``# camp-lint: disable=RULE1,RULE2 -- reason`` on the offending line
  silences those rules for that line only;
- ``# camp-lint: disable-file=RULE1`` anywhere in a file silences the
  rule for the whole file;
- a baseline entry (rule, path, snippet, justification) silences every
  occurrence of that exact snippet in that file - line-number moves do
  not invalidate it, edits to the flagged line do.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence,
                    Set, Tuple)

#: Inline, line-scoped suppression directive.
_SUPPRESS_LINE = re.compile(r"camp-lint:\s*disable=([A-Z0-9_,\s]*[A-Z0-9])")
#: Whole-file suppression directive.
_SUPPRESS_FILE = re.compile(
    r"camp-lint:\s*disable-file=([A-Z0-9_,\s]*[A-Z0-9])")

#: Where a bare ``python -m repro lint`` looks for Python sources.
DEFAULT_PY_ROOTS: Tuple[str, ...] = ("src/repro",)
#: ... and for prose that must stay consistent with the code.
DEFAULT_DOC_ROOTS: Tuple[str, ...] = ("docs", "README.md", "DESIGN.md",
                                      "EXPERIMENTS.md")
#: Directory names never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".repro-cache", ".pytest_cache",
              "node_modules"}


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    #: Repo-relative POSIX path.
    path: str
    #: 1-based line (0 = file-level finding).
    line: int
    #: 1-based column (0 = unknown).
    col: int
    message: str
    #: The stripped source line, for reports and baseline identity.
    snippet: str = ""
    severity: str = "error"

    def key(self) -> str:
        """Line-number-free identity used for baseline matching."""
        return "|".join((self.rule, self.path, self.snippet))

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "severity": self.severity,
                "message": self.message, "snippet": self.snippet}

    def render(self) -> str:
        location = f"{self.path}:{self.line}:{self.col}"
        return f"{location}: {self.rule} [{self.severity}] {self.message}"


class FileContext:
    """One file under analysis: source, split lines, lazily-parsed AST."""

    def __init__(self, path: Optional[pathlib.Path], relpath: str,
                 source: str):
        self.path = path
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self._tree: Optional[ast.Module] = None
        self._syntax_error: Optional[SyntaxError] = None

    @property
    def is_python(self) -> bool:
        return self.relpath.endswith(".py")

    @property
    def tree(self) -> Optional[ast.Module]:
        """The parsed module, or ``None`` on a syntax error."""
        if self._tree is None and self._syntax_error is None:
            try:
                self._tree = ast.parse(self.source)
            except SyntaxError as exc:
                self._syntax_error = exc
        return self._tree

    @property
    def syntax_error(self) -> Optional[SyntaxError]:
        self.tree
        return self._syntax_error

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class for camp-lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding a :class:`Finding` per violation.  The engine handles
    scoping, suppression directives and the baseline.
    """

    id: str = "RULE00"
    severity: str = "error"
    #: One-line summary (shown in reports and ``docs/LINT.md``).
    description: str = ""
    #: Why the invariant matters (the doc catalogue's rationale column).
    rationale: str = ""
    #: Which file kind the rule reads: "python", "markdown" or "any".
    kind: str = "python"
    #: Repo-relative path prefixes the rule is limited to (empty = all
    #: files of the matching kind under the scan roots).
    scopes: Tuple[str, ...] = ()
    #: Whole-program rules see the full :class:`~repro.lint.graph.
    #: ProgramGraph`; their findings for one file can change when any
    #: *other* file changes, so the result cache keys them on the
    #: whole-tree digest instead of the single file's hash.
    whole_program: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_python:
            if self.kind == "markdown":
                return False
        elif self.kind == "python":
            return False
        if not self.scopes:
            return True
        return any(ctx.relpath == scope or
                   ctx.relpath.startswith(scope.rstrip("/") + "/")
                   for scope in self.scopes)

    def check(self, ctx: FileContext, program) -> Iterator[Finding]:
        """Yield findings for one file.

        ``program`` is the shared :class:`~repro.lint.graph.
        ProgramGraph` over every Python file in the run (a single-file
        graph under ``lint_source``).  Per-file rules are free to
        ignore it.
        """
        raise NotImplementedError

    def finding(self, ctx: FileContext, node, message: str) -> Finding:
        """Build a Finding anchored at ``node`` (AST node or line int)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", -1) + 1
        return Finding(rule=self.id, path=ctx.relpath, line=line,
                       col=max(col, 0), message=message,
                       snippet=ctx.line(line), severity=self.severity)


def _directive_ids(match: "re.Match[str]") -> Set[str]:
    return {part.strip() for part in match.group(1).split(",")
            if part.strip()}


def file_suppressions(ctx: FileContext) -> Set[str]:
    """Rule ids disabled for the whole file via ``disable-file=``."""
    disabled: Set[str] = set()
    for match in _SUPPRESS_FILE.finditer(ctx.source):
        disabled |= _directive_ids(match)
    return disabled


def line_suppressions(text: str) -> Set[str]:
    """Rule ids disabled on one source line via ``disable=``."""
    match = _SUPPRESS_LINE.search(text)
    return _directive_ids(match) if match else set()


def _suppressed(finding: Finding, ctx: FileContext,
                file_disabled: Set[str]) -> bool:
    if finding.rule in file_disabled or "ALL" in file_disabled:
        return True
    raw = (ctx.lines[finding.line - 1]
           if 1 <= finding.line <= len(ctx.lines) else "")
    disabled = line_suppressions(raw)
    return finding.rule in disabled or "ALL" in disabled


def lint_file(ctx: FileContext, rules: Sequence[Rule],
              program=None, emit_syntax: bool = True) -> List[Finding]:
    """Run every applicable rule over one file, minus suppressions.

    Without an explicit ``program``, a single-file graph is built on
    the fly - enough for every per-file rule, and exactly what the
    fixture tests want for the flow-aware rules (the fixture *is* the
    program).
    """
    findings: List[Finding] = []
    if ctx.is_python and ctx.syntax_error is not None:
        if emit_syntax:
            err = ctx.syntax_error
            findings.append(Finding(
                rule="SYNTAX", path=ctx.relpath, line=err.lineno or 0,
                col=err.offset or 0,
                message=f"cannot parse file: {err.msg}",
                snippet=ctx.line(err.lineno or 0)))
        return findings
    if program is None:
        from .graph import build_program
        program = build_program([ctx] if ctx.is_python else [])
    file_disabled = file_suppressions(ctx)
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx, program):
            if not _suppressed(finding, ctx, file_disabled):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(source: str, relpath: str,
                rules: Sequence[Rule]) -> List[Finding]:
    """Lint an in-memory source blob as if it lived at ``relpath``.

    The fixture-test entry point: scoped rules see ``relpath`` exactly
    as they would a real repo file, and the flow-aware rules see the
    blob as a complete single-module program.
    """
    return lint_file(FileContext(None, relpath, source), rules)


def default_root() -> pathlib.Path:
    """The repo root this package was imported from (src/repro/../..)."""
    root = pathlib.Path(__file__).resolve().parents[3]
    if (root / "src" / "repro").is_dir():
        return root
    return pathlib.Path.cwd()


def _want(path: pathlib.Path, kind: str) -> bool:
    if any(part in _SKIP_DIRS for part in path.parts):
        return False
    if kind == "python":
        return path.suffix == ".py"
    return path.suffix in (".md", ".rst")


def discover_files(root: pathlib.Path,
                   paths: Optional[Sequence[pathlib.Path]] = None
                   ) -> List[pathlib.Path]:
    """The files a lint run covers, sorted and de-duplicated.

    With explicit ``paths``, directories are walked for both kinds and
    files are taken verbatim.  Otherwise the defaults apply: every
    ``.py`` under :data:`DEFAULT_PY_ROOTS` plus every markdown file
    under :data:`DEFAULT_DOC_ROOTS`.
    """
    chosen: Set[pathlib.Path] = set()

    def add_tree(base: pathlib.Path, kinds: Tuple[str, ...]) -> None:
        if base.is_file():
            chosen.add(base)
            return
        if not base.is_dir():
            return
        for candidate in base.rglob("*"):
            if candidate.is_file() and any(_want(candidate, kind)
                                           for kind in kinds):
                chosen.add(candidate)

    if paths:
        for path in paths:
            add_tree(pathlib.Path(path), ("python", "markdown"))
    else:
        for rel in DEFAULT_PY_ROOTS:
            add_tree(root / rel, ("python",))
        for rel in DEFAULT_DOC_ROOTS:
            add_tree(root / rel, ("markdown",))
    return sorted(chosen)


def make_context(path: pathlib.Path, root: pathlib.Path) -> FileContext:
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return FileContext(path, relpath, path.read_text(encoding="utf-8"))


@dataclasses.dataclass
class LintRun:
    """The outcome of one engine pass (before baseline partitioning)."""

    findings: List[Finding]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings


def _worker_lint(payload: Tuple[str, str, Tuple[str, ...]]
                 ) -> List[Dict[str, object]]:
    """Process-pool worker: per-file rules over one in-memory file.

    Module-level and dict-in/dict-out so it pickles; whole-program
    rules never run here (a worker only sees one file).
    """
    relpath, source, rule_ids = payload
    from .rules import RULES_BY_ID
    rules = [RULES_BY_ID[rule_id] for rule_id in rule_ids]
    ctx = FileContext(None, relpath, source)
    return [finding.to_dict()
            for finding in lint_file(ctx, rules)]


def _run_local_rules(contexts: Sequence[FileContext],
                     rules: Sequence[Rule], program,
                     jobs: int) -> Dict[str, List[Finding]]:
    """Per-file rules over ``contexts``; fans out to processes when
    ``jobs`` > 1 and every rule is registry-known (picklable by id)."""
    from .rules import RULES_BY_ID
    parallelizable = (jobs > 1 and len(contexts) > 1 and
                      all(RULES_BY_ID.get(rule.id) is rule
                          for rule in rules))
    if parallelizable:
        import concurrent.futures
        rule_ids = tuple(rule.id for rule in rules)
        payloads = [(ctx.relpath, ctx.source, rule_ids)
                    for ctx in contexts]
        try:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=jobs) as pool:
                raw = list(pool.map(_worker_lint, payloads,
                                    chunksize=4))
            return {ctx.relpath:
                    [Finding(**entry)      # type: ignore[arg-type]
                     for entry in entries]
                    for ctx, entries in zip(contexts, raw)}
        except (OSError, ValueError, ImportError,
                concurrent.futures.process.BrokenProcessPool):
            pass    # no usable pool (sandbox, low fd limit): serial
    return {ctx.relpath: lint_file(ctx, rules, program)
            for ctx in contexts}


def run_lint(root: Optional[pathlib.Path] = None,
             paths: Optional[Sequence[pathlib.Path]] = None,
             rules: Optional[Sequence[Rule]] = None, *,
             jobs: int = 1, cache=None) -> LintRun:
    """Lint ``paths`` (default: the standard roots) under ``root``.

    ``jobs`` > 1 fans per-file rules out to worker processes; the
    whole-program passes always run in-process over the shared graph.
    ``cache`` is a :class:`repro.lint.cache.LintCache`; hits skip both
    parsing and rule execution for unchanged files (per-file rules are
    keyed on the file hash alone, whole-program rules additionally on
    a digest of every Python file in the run).
    """
    if root is None:
        root = default_root()
    if rules is None:
        from .rules import ALL_RULES
        rules = ALL_RULES
    from .graph import build_program
    files = discover_files(root, paths)
    contexts = [make_context(path, root) for path in files]
    local_rules = [rule for rule in rules if not rule.whole_program]
    program_rules = [rule for rule in rules if rule.whole_program]

    findings: List[Finding] = []
    if cache is None:
        program = build_program(
            [ctx for ctx in contexts if ctx.is_python], root=root)
        local = _run_local_rules(contexts, local_rules, program, jobs)
        for ctx in contexts:
            findings.extend(local[ctx.relpath])
            if ctx.is_python and ctx.syntax_error is None:
                findings.extend(lint_file(ctx, program_rules, program,
                                          emit_syntax=False))
    else:
        from .cache import content_hash
        hashes = {ctx.relpath: content_hash(ctx.source)
                  for ctx in contexts}
        program_digest = _program_digest(root, contexts, hashes)
        local_hit: Dict[str, List[Finding]] = {}
        program_hit: Dict[str, List[Finding]] = {}
        local_miss: List[FileContext] = []
        program_miss: List[FileContext] = []
        for ctx in contexts:
            local_key = f"{ctx.relpath}|{hashes[ctx.relpath]}|local"
            cached = cache.get(local_key)
            if cached is None:
                local_miss.append(ctx)
            else:
                local_hit[ctx.relpath] = cached
            if not ctx.is_python:
                program_hit[ctx.relpath] = []
                continue
            program_key = (f"{ctx.relpath}|{hashes[ctx.relpath]}"
                           f"|program|{program_digest}")
            cached = cache.get(program_key)
            if cached is None:
                program_miss.append(ctx)
            else:
                program_hit[ctx.relpath] = cached

        program = None
        if local_miss or program_miss:
            program = build_program(
                [ctx for ctx in contexts if ctx.is_python], root=root)
        if local_miss:
            computed = _run_local_rules(local_miss, local_rules,
                                        program, jobs)
            for ctx in local_miss:
                result = computed[ctx.relpath]
                local_hit[ctx.relpath] = result
                cache.put(
                    f"{ctx.relpath}|{hashes[ctx.relpath]}|local",
                    result)
        for ctx in program_miss:
            result = ([] if ctx.syntax_error is not None else
                      lint_file(ctx, program_rules, program,
                                emit_syntax=False))
            program_hit[ctx.relpath] = result
            cache.put(f"{ctx.relpath}|{hashes[ctx.relpath]}"
                      f"|program|{program_digest}", result)
        for ctx in contexts:
            findings.extend(local_hit[ctx.relpath])
            findings.extend(program_hit[ctx.relpath])
        cache.save()
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintRun(findings=findings, files_checked=len(files))


def _program_digest(root: pathlib.Path,
                    contexts: Sequence[FileContext],
                    hashes: Dict[str, str]) -> str:
    """Digest of everything the whole-program passes can observe."""
    import hashlib
    digest = hashlib.sha256()
    for ctx in contexts:
        if ctx.is_python:
            digest.update(ctx.relpath.encode())
            digest.update(hashes[ctx.relpath].encode())
    from .rules.schema import PIN_FILENAME
    pin = root / PIN_FILENAME
    if pin.is_file():
        digest.update(pin.read_bytes())
    return digest.hexdigest()
