"""Execution-context inference over the program graph.

Every function in the program is labelled with the set of execution
contexts it can run in:

- ``event-loop`` - an asyncio coroutine (or a sync function called
  from one without an executor hop).  Seeded by every ``async def``
  and by ``create_task``/``ensure_future``/``asyncio.run`` targets.
- ``thread`` - a dedicated thread: ``threading.Thread(target=...)``
  targets, ``loop.run_in_executor`` offloads, ``ThreadPoolExecutor``
  submissions.  This is where the coalescer's solver batches and the
  ``ServerThread`` event-loop host run.
- ``pool-worker`` - a worker *process*: ``ProcessPoolExecutor`` /
  ``repro`` Executor ``submit``/``map`` targets.  Workers share no
  memory with the parent, so RACE01 excludes this context from
  shared-state pairs (PURE01 owns worker purity instead).
- ``signal`` - ``signal.signal`` handler targets.
- ``main`` - seeded at call-graph **roots** (sync functions nothing
  in the program calls or dispatches to - the CLI ``cmd_*`` handlers,
  test-facing helpers, context managers driven from user code), which
  for a CLI tool means the main thread.

Labels propagate **forward** along plain call edges to a fixed point:
if ``f`` runs on the event loop and calls ``g`` directly, ``g`` runs
on the event loop too.  Dispatch edges instead *replace* the caller's
context with the dispatched one - ``run_in_executor(None,
self._process_batch, ...)`` gives ``_process_batch`` the ``thread``
label, not ``event-loop``.

A function carrying two or more labels is exactly the interesting
case: the coalescer's ``_count`` is called from ``submit`` (event
loop, admission) and from ``_process_batch`` (solver thread), so it
gets ``{event-loop, thread}`` - any unlocked attribute it writes is a
RACE01 candidate.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from .graph import (CTX_EVENT_LOOP, CTX_MAIN, CTX_POOL, CTX_SIGNAL,
                    CTX_THREAD, ProgramGraph)

__all__ = ["infer_contexts", "CTX_EVENT_LOOP", "CTX_MAIN", "CTX_POOL",
           "CTX_SIGNAL", "CTX_THREAD"]

#: Contexts that share the parent process's memory.  ``pool-worker``
#: is excluded: a worker is a separate process, so "shared" attribute
#: access from it is PURE01's problem, not RACE01's.
SHARED_MEMORY_CONTEXTS = frozenset(
    {CTX_EVENT_LOOP, CTX_MAIN, CTX_THREAD, CTX_SIGNAL})


def infer_contexts(program: ProgramGraph
                   ) -> Dict[str, FrozenSet[str]]:
    """Qualified function name -> execution-context label set.

    Every function in the program appears in the result; functions
    with no inferred label get ``{"main"}``.
    """
    labels: Dict[str, Set[str]] = {qname: set()
                                   for qname in program.functions}

    # Seeds: coroutines live on the event loop by construction.
    for qname, fn in program.functions.items():
        if fn.is_async:
            labels[qname].add(CTX_EVENT_LOOP)

    # Seeds: dispatch targets get the dispatched context.
    reached: Set[str] = set()
    for fn in program.functions.values():
        for site in fn.calls:
            if site.callee is not None:
                reached.add(site.callee)
            if site.dispatch is not None and site.callee is not None \
                    and site.callee in labels:
                labels[site.callee].add(site.dispatch)

    # Seeds: call-graph roots run on the main thread.  A root is a
    # sync function no resolvable edge reaches - entry points the CLI
    # or user code invokes directly.  Dunder protocol methods stay
    # unseeded: the runtime calls them wherever their object lives.
    for qname, fn in program.functions.items():
        if fn.is_async or qname in reached:
            continue
        name = fn.name
        if name.startswith("__") and name.endswith("__") and \
                name not in ("__enter__", "__exit__", "__call__"):
            continue
        labels[qname].add(CTX_MAIN)

    # Forward propagation along plain call edges to a fixed point.
    changed = True
    while changed:
        changed = False
        for fn in program.functions.values():
            src = labels[fn.qname]
            if not src:
                continue
            for site in fn.calls:
                if site.dispatch is not None or site.callee is None:
                    continue
                callee = program.functions.get(site.callee)
                if callee is None:
                    continue
                if callee.is_async:
                    # Calling an ``async def`` builds a coroutine; it
                    # runs on the event loop regardless of the caller.
                    continue
                dst = labels[site.callee]
                before = len(dst)
                dst |= src
                if len(dst) != before:
                    changed = True

    out: Dict[str, FrozenSet[str]] = {}
    for qname, found in labels.items():
        out[qname] = frozenset(found) if found else frozenset(
            {CTX_MAIN})
    return out


def contexts_for(program: ProgramGraph) -> Dict[str, FrozenSet[str]]:
    """Memoized :func:`infer_contexts` keyed on the program object."""
    cached = program.rule_cache.get("__contexts__")
    if cached is None:
        cached = infer_contexts(program)
        program.rule_cache["__contexts__"] = cached
    return cached  # type: ignore[return-value]
