"""camp-lint - static invariant checking for the CAMP reproduction.

The test suite samples behaviours; camp-lint proves structural
invariants on every commit.  Per-file rules: determinism of sim paths
(DET01), purity of the content-addressed cache key (CACHE01), the
closed Table 5 counter vocabulary (PMU01), the runtime error taxonomy
(ERR01), process-pool worker purity (PURE01) and unit-suffixed
quantity names (UNITS01).  Whole-program rules over the shared call
graph and execution-context inference (:mod:`repro.lint.graph`,
:mod:`repro.lint.contexts`): cross-context races (RACE01), blocking
calls on the event loop (ASYNC01), lock discipline and breaker
double-consultation (LOCK01), and cache-schema drift against the
pinned digest (SCHEMA01).  Rule catalogue, suppression syntax and
baseline workflow: ``docs/LINT.md``.  CLI: ``python -m repro lint
[--format json|sarif] [-j N]``.

Programmatic use::

    from repro.lint import run_lint
    run = run_lint()              # whole repo, all rules
    assert run.ok, run.findings
"""

from .baseline import (BASELINE_NAME, Baseline, BaselineEntry,
                       BaselineError, TODO_JUSTIFICATION)
from .cache import LintCache, default_cache, rules_token
from .contexts import infer_contexts
from .engine import (Finding, FileContext, LintRun, Rule, default_root,
                     discover_files, lint_file, lint_source, run_lint)
from .graph import ProgramGraph, build_program
from .report import (JSON_SCHEMA_VERSION, render_json, render_sarif,
                     render_text)
from .rules import ALL_RULES, RULES_BY_ID

__all__ = [
    "ALL_RULES", "BASELINE_NAME", "Baseline", "BaselineEntry",
    "BaselineError", "FileContext", "Finding", "JSON_SCHEMA_VERSION",
    "LintCache", "LintRun", "ProgramGraph", "Rule", "RULES_BY_ID",
    "TODO_JUSTIFICATION", "build_program", "default_cache",
    "default_root", "discover_files", "infer_contexts", "lint_file",
    "lint_source", "render_json", "render_sarif", "render_text",
    "rules_token", "run_lint",
]
