"""LOCK01: lock discipline across the call graph.

Three shapes, all drawn from real serving-stack incidents:

1. **Bare acquire** - ``lock.acquire()`` outside a ``with`` statement
   leaks the lock on any exception between acquire and release.  Every
   known lock (a ``threading.Lock``/``RLock``/``Condition`` bound to
   ``self.<attr>`` or a module global) must be held via ``with``.
2. **Lock-order inversion** - if one code path takes lock A then lock
   B (possibly through a callee) while another takes B then A, the two
   paths can deadlock.  The rule collects pairwise acquisition order
   through resolved call edges and flags any pair observed in both
   orders.
3. **Breaker double-consultation** - the PR 7 bug: checking
   ``breaker.allow()`` and then separately invoking ``breaker.call``
   consumes *two* half-open probe slots for one operation, wedging
   recovery.  ``call()`` already consults ``allow()``; a function that
   guards a ``.call(...)`` on the same receiver behind an explicit
   ``.allow()`` check is flagged.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import FileContext, Finding, Rule
from ..graph import (FunctionInfo, ModuleInfo, ProgramGraph,
                     dotted_name, shallow_walk)


class _LockScan(ast.NodeVisitor):
    """Per-function lock usage: with-acquisitions, nesting, bare calls.

    Lock identities are program-unique strings:
    ``<ClassQname>.<attr>`` for ``self.<attr>`` locks and
    ``<module>.<NAME>`` for module-global locks.
    """

    def __init__(self, fn: FunctionInfo, cls_locks: Set[str],
                 module: ModuleInfo):
        self.fn = fn
        self.cls_locks = cls_locks
        self.module = module
        self.held: List[str] = []
        #: (outer, inner, with-node) for every nested acquisition.
        self.ordered_pairs: List[Tuple[str, str, ast.AST]] = []
        #: Lock ids this function acquires directly.
        self.acquired: Set[str] = set()
        #: Call sites with the lock set held around them.
        self.calls_under_locks: List[Tuple[ast.Call,
                                           Tuple[str, ...]]] = []
        #: Bare ``.acquire()`` nodes on known locks.
        self.bare_acquires: List[ast.AST] = []
        for stmt in fn.node.body:
            self.visit(stmt)

    def _lock_id(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name) and \
                expr.value.id == "self" and self.fn.cls is not None \
                and expr.attr in self.cls_locks:
            return f"{self.fn.cls}.{expr.attr}"
        if isinstance(expr, ast.Name) and \
                expr.id in self.module.lock_globals:
            return f"{self.module.name}.{expr.id}"
        return None

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = self._lock_id(item.context_expr)
            if lock is None:
                self.visit(item.context_expr)
                continue
            self.acquired.add(lock)
            for outer in self.held + acquired:
                if outer != lock:
                    self.ordered_pairs.append((outer, lock, node))
            acquired.append(lock)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self.held[len(self.held) - len(acquired):]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                func.attr in ("acquire", "release"):
            lock = self._lock_id(func.value)
            if lock is not None and func.attr == "acquire":
                self.bare_acquires.append(node)
                self.acquired.add(lock)
        self.calls_under_locks.append((node, tuple(self.held)))
        self.generic_visit(node)

    def visit_FunctionDef(self, node) -> None:   # nested scopes
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


class LockDisciplineRule(Rule):
    id = "LOCK01"
    severity = "error"
    whole_program = True
    description = ("lock acquired outside `with`, inconsistent "
                   "pairwise lock order across the call graph, or a "
                   "breaker allow()/call() double consultation")
    rationale = ("Leaked acquires deadlock on the first exception; "
                 "inverted lock order deadlocks under load; a double-"
                 "consulted breaker burns two half-open probes per "
                 "operation and wedges recovery.")
    kind = "python"

    def check(self, ctx: FileContext,
              program: ProgramGraph) -> Iterator[Finding]:
        findings = program.rule_cache.get(self.id)
        if findings is None:
            findings = self._analyze(program)
            program.rule_cache[self.id] = findings
        for finding in findings:
            if finding.path == ctx.relpath:
                yield dataclasses.replace(
                    finding, snippet=ctx.line(finding.line))

    # -- analysis ------------------------------------------------------------
    def _analyze(self, program: ProgramGraph) -> List[Finding]:
        scans: Dict[str, _LockScan] = {}
        for qname, fn in program.functions.items():
            module = program.modules.get(fn.module)
            if module is None:
                continue
            cls_locks: Set[str] = set()
            if fn.cls is not None:
                cls = program.classes.get(fn.cls)
                if cls is not None:
                    cls_locks = cls.lock_attrs
            scans[qname] = _LockScan(fn, cls_locks, module)

        findings: List[Finding] = []
        findings.extend(self._bare_acquires(scans))
        findings.extend(self._order_inversions(program, scans))
        findings.extend(self._double_consultation(program))
        findings.sort(key=lambda f: (f.path, f.line, f.col))
        return findings

    def _bare_acquires(self, scans: Dict[str, _LockScan]
                       ) -> List[Finding]:
        findings = []
        for scan in scans.values():
            for node in scan.bare_acquires:
                findings.append(Finding(
                    rule=self.id, path=scan.fn.relpath,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", -1) + 1,
                    message=(f"{scan.fn.name} calls .acquire() "
                             f"directly; hold locks via `with` so "
                             f"exceptions cannot leak them"),
                    snippet="", severity=self.severity))
        return findings

    def _transitive_locks(self, program: ProgramGraph,
                          scans: Dict[str, _LockScan]
                          ) -> Dict[str, Set[str]]:
        """Locks each function may acquire, through resolved callees."""
        result = {qname: set(scan.acquired)
                  for qname, scan in scans.items()}
        changed = True
        while changed:
            changed = False
            for qname, fn in program.functions.items():
                mine = result.get(qname)
                if mine is None:
                    continue
                for site in fn.calls:
                    if site.dispatch is not None or \
                            site.callee not in result:
                        continue
                    extra = result[site.callee] - mine
                    if extra:
                        mine |= extra
                        changed = True
        return result

    def _order_inversions(self, program: ProgramGraph,
                          scans: Dict[str, _LockScan]
                          ) -> List[Finding]:
        transitive = self._transitive_locks(program, scans)
        #: (outer, inner) -> first site it was observed at.
        observed: Dict[Tuple[str, str],
                       Tuple[FunctionInfo, ast.AST]] = {}
        for qname, scan in scans.items():
            for outer, inner, node in scan.ordered_pairs:
                observed.setdefault((outer, inner), (scan.fn, node))
            for call, held in scan.calls_under_locks:
                if not held:
                    continue
                # A call made under lock A reaching code that takes
                # lock B orders A before B.
                site = next((s for s in scan.fn.calls
                             if s.node is call and s.callee), None)
                if site is None or site.dispatch is not None:
                    continue
                for inner in transitive.get(site.callee, ()):  # type: ignore[arg-type]
                    for outer in held:
                        if outer != inner:
                            observed.setdefault((outer, inner),
                                                (scan.fn, call))
        findings = []
        reported: Set[Tuple[str, str]] = set()
        for (outer, inner), (fn, node) in sorted(
                observed.items(),
                key=lambda kv: (kv[1][0].relpath,
                                getattr(kv[1][1], "lineno", 0))):
            if (inner, outer) not in observed:
                continue
            pair = tuple(sorted((outer, inner)))
            if pair in reported:
                continue
            reported.add(pair)   # one finding per unordered pair
            other_fn, other_node = observed[(inner, outer)]
            findings.append(Finding(
                rule=self.id, path=fn.relpath,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", -1) + 1,
                message=(
                    f"inconsistent lock order: {fn.name} takes "
                    f"{_short(outer)} then {_short(inner)}, but "
                    f"{other_fn.name} "
                    f"({other_fn.relpath}:"
                    f"{getattr(other_node, 'lineno', 0)}) takes them "
                    f"in the opposite order; pick one global order"),
                snippet="", severity=self.severity))
        return findings

    def _double_consultation(self, program: ProgramGraph
                             ) -> List[Finding]:
        findings = []
        for fn in program.functions.values():
            for node in shallow_walk(fn.node):
                if not isinstance(node, ast.If):
                    continue
                receiver = _allow_receiver(node.test)
                if receiver is None:
                    continue
                for call in shallow_walk(fn.node):
                    if isinstance(call, ast.Call) and \
                            isinstance(call.func, ast.Attribute) and \
                            call.func.attr == "call" and \
                            dotted_name(call.func.value) == receiver:
                        findings.append(Finding(
                            rule=self.id, path=fn.relpath,
                            line=getattr(node, "lineno", 0),
                            col=getattr(node, "col_offset", -1) + 1,
                            message=(
                                f"{fn.name} consults "
                                f"{receiver}.allow() and then invokes "
                                f"{receiver}.call(); call() performs "
                                f"its own admission check, so this "
                                f"burns two half-open probe slots per "
                                f"operation - drop the explicit "
                                f"allow()"),
                            snippet="", severity=self.severity))
                        break
        return findings


def _short(lock_id: str) -> str:
    parts = lock_id.rsplit(".", 2)
    return ".".join(parts[-2:])


def _allow_receiver(test: ast.AST) -> Optional[str]:
    """The dotted receiver of an ``x.allow()`` call in an if-test."""
    for node in ast.walk(test):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "allow" and not node.args:
            return dotted_name(node.func.value)
    return None
