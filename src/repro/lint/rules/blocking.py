"""ASYNC01: blocking calls reachable from the event loop.

One blocking call inside a coroutine stalls *every* in-flight request
on the loop - admission, health checks, the drain path.  The serving
stack's contract (``docs/SERVE.md``) is that anything slow crosses to
the solver thread via ``run_in_executor``; this rule proves it.

A function is "on the event loop" when context inference
(:mod:`repro.lint.contexts`) gives it the ``event-loop`` label -
every ``async def``, plus every *sync* helper such code calls without
an executor hop.  Inside those functions the rule flags direct calls
to:

- known-blocking stdlib entry points: ``time.sleep``, ``open``,
  ``subprocess.*``, ``socket`` connect/accept, ``os.system``,
  ``urllib.request.urlopen``;
- the project's own blocking surfaces: :class:`ResultStore` I/O,
  ``Machine.run``/``run_batch``, and the batch ``Executor`` - each a
  disk read, a full simulation, or a process-pool round trip.

Function references handed to ``run_in_executor``/``to_thread`` are
dispatch edges, not calls - the offload pattern is exactly what
passes.  Known false-negatives (indirection through ``functools.
partial`` or a callable argument, e.g. ``breaker.call(store.get,
...)``) are catalogued in ``docs/LINT.md``.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, List, Set

from ..contexts import CTX_EVENT_LOOP, contexts_for
from ..engine import FileContext, Finding, Rule
from ..graph import ProgramGraph, dotted_name, shallow_walk

#: Canonical stdlib names that block the calling thread.
_STDLIB_BLOCKING = {
    "time.sleep": "time.sleep() stalls the event loop",
    "os.system": "os.system() blocks on a subprocess",
    "subprocess.run": "subprocess.run() blocks on a subprocess",
    "subprocess.call": "subprocess.call() blocks on a subprocess",
    "subprocess.check_call": "subprocess.check_call() blocks",
    "subprocess.check_output": "subprocess.check_output() blocks",
    "socket.create_connection": "socket connect blocks",
    "urllib.request.urlopen": "urlopen() blocks on network I/O",
    "shutil.rmtree": "shutil.rmtree() blocks on disk I/O",
}

#: Project methods (class, method) that do disk I/O or run the
#: simulator; resolved call-graph edges are matched by qname suffix.
_PROJECT_BLOCKING = {
    ("ResultStore", "get"), ("ResultStore", "put"),
    ("ResultStore", "get_many"), ("ResultStore", "put_many"),
    ("ResultStore", "compact"), ("ResultStore", "close"),
    ("ResultStore", "flush"),
    ("Machine", "run"), ("Machine", "run_batch"),
    ("Executor", "run"), ("Executor", "map"),
    ("Executor", "run_one"), ("Executor", "calibration"),
    ("Executor", "profile"),
}


def _blocking_edge(callee: str) -> bool:
    parts = callee.rsplit(".", 2)
    if len(parts) >= 2:
        return (parts[-2], parts[-1]) in _PROJECT_BLOCKING
    return False


class BlockingInAsyncRule(Rule):
    id = "ASYNC01"
    severity = "error"
    whole_program = True
    description = ("blocking call (sleep, file/socket I/O, store or "
                   "simulator entry point) reachable from the event "
                   "loop without an executor offload")
    rationale = ("A single blocking call in a coroutine freezes every "
                 "in-flight request; slow work must hop to the solver "
                 "thread via run_in_executor.")
    kind = "python"

    def check(self, ctx: FileContext,
              program: ProgramGraph) -> Iterator[Finding]:
        findings = program.rule_cache.get(self.id)
        if findings is None:
            findings = self._analyze(program)
            program.rule_cache[self.id] = findings
        for finding in findings:
            if finding.path == ctx.relpath:
                yield dataclasses.replace(
                    finding, snippet=ctx.line(finding.line))

    def _analyze(self, program: ProgramGraph) -> List[Finding]:
        contexts = contexts_for(program)
        findings: List[Finding] = []
        for qname, fn in program.functions.items():
            if CTX_EVENT_LOOP not in contexts.get(qname, frozenset()):
                continue
            module = program.modules.get(fn.module)
            if module is None:
                continue
            flagged: Set[int] = set()

            # Project blocking surfaces via resolved call edges.
            for site in fn.calls:
                if site.dispatch is not None or site.callee is None:
                    continue
                if _blocking_edge(site.callee) and \
                        id(site.node) not in flagged:
                    flagged.add(id(site.node))
                    findings.append(self._finding(
                        fn, site.node,
                        f"{site.callee.rsplit('.', 2)[-2]}."
                        f"{site.callee.rsplit('.', 1)[-1]}() does "
                        f"blocking work"))

            # Stdlib blocking calls via canonical dotted names.
            for node in shallow_walk(fn.node):
                if not isinstance(node, ast.Call) or \
                        id(node) in flagged:
                    continue
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                canonical = module.imports.canonical(dotted)
                reason = _STDLIB_BLOCKING.get(canonical)
                if reason is None and canonical == "open":
                    reason = "open() blocks on disk I/O"
                if reason is None and \
                        canonical.startswith("subprocess.Popen"):
                    reason = "Popen() blocks on process startup"
                if reason is not None:
                    flagged.add(id(node))
                    findings.append(self._finding(fn, node, reason))
        findings.sort(key=lambda f: (f.path, f.line, f.col))
        return findings

    def _finding(self, fn, node: ast.AST, reason: str) -> Finding:
        return Finding(
            rule=self.id, path=fn.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", -1) + 1,
            message=(f"{reason} but {fn.name} runs on the event loop; "
                     f"offload with loop.run_in_executor or move it "
                     f"off the async path"),
            snippet="", severity=self.severity)
