"""RACE01: shared state crossing execution contexts without a lock.

The defect class that motivated camp-lint v2: the PR 7 review found
``QueryCoalescer`` bumping its ``counters`` dict from both the asyncio
admission path (event loop) and the solver thread with no lock - a
torn-read window every ``/stats`` scrape could hit.  The fix was a
dedicated ``_counters_lock``; this rule keeps the class of bug from
coming back.

Analysis (whole-program):

1. :mod:`repro.lint.contexts` labels every function with the
   execution contexts it can run in.
2. The rule scopes itself to **concurrency-owning classes** - classes
   with at least one ``async def`` method or a method dispatched onto
   a thread or signal handler.  An instance of such a class lives
   inside a concurrent component, so its methods' differing context
   labels really can interleave on the *same object*.  (Classes that
   are merely *called from* concurrent code - ``Machine``, the solver
   - are out of scope: the static analysis cannot tell their
   instances are never shared, so flagging them would be noise;
   ``docs/LINT.md`` records this as the rule's main false-negative.)
3. For each such class, every ``self.<attr>`` access in every method
   (outside ``__init__``) is classified read/write, tagged with the
   method's context labels and the set of class lock attributes
   lexically held (``with self._lock:``) around it.
4. Two accesses to the same attribute conflict when at least one is a
   write, their context labels allow two *different* contexts, and
   they hold no lock in common.  Module-level globals written under a
   ``global`` declaration get the same treatment with module-level
   ``threading.Lock()`` names as the lock universe.

Writes include augmented assignment, ``del``, item assignment rooted
at the attribute (``self.counters[k] += 1``) and known mutator method
calls (``self.pending.append(...)``).  Attributes holding
synchronization primitives or thread-safe containers are exempt - a
``queue.Queue`` is the fix, not the bug.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..contexts import SHARED_MEMORY_CONTEXTS, contexts_for
from ..engine import FileContext, Finding, Rule
from ..graph import (CTX_SIGNAL, CTX_THREAD, ClassInfo, FunctionInfo,
                     ModuleInfo, ProgramGraph, shallow_walk)
from .purity import _MUTATORS

#: Methods where accesses never race: the object is not yet (or no
#: longer) shared with another context.
_CONSTRUCTION_METHODS = {"__init__", "__new__", "__post_init__",
                         "__del__"}


@dataclasses.dataclass
class _Access:
    attr: str
    write: bool
    method: str                  # unqualified method/function name
    contexts: FrozenSet[str]
    locks: FrozenSet[str]
    node: ast.AST
    relpath: str


class _AccessCollector(ast.NodeVisitor):
    """Collect ``self.<attr>`` accesses with lexically-held locks."""

    def __init__(self, lock_attrs: Set[str], skip_attrs: Set[str]):
        self.lock_attrs = lock_attrs
        self.skip_attrs = skip_attrs
        self.held: List[str] = []
        self.accesses: List[Tuple[str, bool, FrozenSet[str],
                                  ast.AST]] = []

    # -- lock scopes ---------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = self._lock_name(item.context_expr)
            if lock is not None:
                acquired.append(lock)
            else:
                self.visit(item.context_expr)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    def _lock_name(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name) and \
                expr.value.id == "self" and expr.attr in self.lock_attrs:
            return expr.attr
        return None

    # -- accesses ------------------------------------------------------------
    def _record(self, attr: str, write: bool, node: ast.AST) -> None:
        if attr in self.skip_attrs or attr in self.lock_attrs:
            return
        self.accesses.append((attr, write, frozenset(self.held), node))

    def _self_attr(self, node: ast.AST) -> Optional[ast.Attribute]:
        """The ``self.<attr>`` node rooting an access chain, if any."""
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id == "self":
                return node
            node = node.value
        return None

    def _visit_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_target(element)
            return
        rooted = self._self_attr(target)
        if rooted is not None:
            self._record(rooted.attr, True, rooted)
            # An item write also *reads* the container; same access.
            return
        self.visit(target)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._visit_target(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._visit_target(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._visit_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._visit_target(target)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                func.attr in _MUTATORS:
            rooted = self._self_attr(func.value)
            if rooted is not None:
                self._record(rooted.attr, True, rooted)
                for arg in node.args:
                    self.visit(arg)
                for keyword in node.keywords:
                    self.visit(keyword.value)
                return
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            self._record(node.attr, False, node)
            return
        self.generic_visit(node)

    # Nested defs/lambdas: their bodies run in an unknowable context.
    def visit_FunctionDef(self, node) -> None:   # noqa: D102
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


class RaceRule(Rule):
    id = "RACE01"
    severity = "error"
    whole_program = True
    description = ("shared attribute/global written in one execution "
                   "context and accessed in another without a common "
                   "lock")
    rationale = ("The PR 7 coalescer counter race: state touched by "
                 "both the event loop and the solver thread corrupts "
                 "silently unless every cross-context access shares a "
                 "lock.")
    kind = "python"

    def check(self, ctx: FileContext,
              program: ProgramGraph) -> Iterator[Finding]:
        findings = program.rule_cache.get(self.id)
        if findings is None:
            findings = self._analyze(program)
            program.rule_cache[self.id] = findings
        for finding in findings:
            if finding.path == ctx.relpath:
                # Fill the baseline-identity snippet from the file
                # context (the analysis pass only has the AST).
                yield dataclasses.replace(
                    finding, snippet=ctx.line(finding.line))

    # -- whole-program analysis ----------------------------------------------
    def _analyze(self, program: ProgramGraph) -> List[Finding]:
        contexts = contexts_for(program)
        dispatched = self._dispatch_targets(program)
        findings: List[Finding] = []
        for cls in program.classes.values():
            if not self._owns_concurrency(cls, dispatched):
                continue
            findings.extend(
                self._check_class(cls, program, contexts))
        for module in program.modules.values():
            findings.extend(
                self._check_globals(module, program, contexts))
        findings.sort(key=lambda f: (f.path, f.line, f.col))
        return findings

    @staticmethod
    def _dispatch_targets(program: ProgramGraph) -> Set[str]:
        targets: Set[str] = set()
        for fn in program.functions.values():
            for site in fn.calls:
                if site.dispatch in (CTX_THREAD, CTX_SIGNAL) and \
                        site.callee is not None:
                    targets.add(site.callee)
        return targets

    @staticmethod
    def _owns_concurrency(cls: ClassInfo,
                          dispatched: Set[str]) -> bool:
        return any(fn.is_async or fn.qname in dispatched
                   for fn in cls.methods.values())

    def _check_class(self, cls: ClassInfo, program: ProgramGraph,
                     contexts) -> List[Finding]:
        accesses: List[_Access] = []
        for name, fn in cls.methods.items():
            if name in _CONSTRUCTION_METHODS:
                continue
            labels = frozenset(contexts.get(fn.qname, frozenset()) &
                               SHARED_MEMORY_CONTEXTS)
            if not labels:
                continue
            collector = _AccessCollector(
                cls.lock_attrs,
                skip_attrs=cls.threadsafe_attrs | set(cls.methods))
            for stmt in fn.node.body:
                collector.visit(stmt)
            for attr, write, locks, node in collector.accesses:
                accesses.append(_Access(
                    attr=attr, write=write, method=name,
                    contexts=labels, locks=locks, node=node,
                    relpath=cls.relpath))
        return self._conflicts(accesses, owner=cls.qname)

    def _check_globals(self, module: ModuleInfo,
                       program: ProgramGraph, contexts
                       ) -> List[Finding]:
        """Module globals written under a ``global`` declaration."""
        declared_by_fn: Dict[str, Set[str]] = {}
        mutated: Set[str] = set()
        for fn in module.functions.values():
            declared: Set[str] = set()
            for node in shallow_walk(fn.node):
                if isinstance(node, ast.Global):
                    declared.update(node.names)
            declared_by_fn[fn.qname] = declared
            for node in shallow_walk(fn.node):
                if isinstance(node, ast.Name) and node.id in declared \
                        and isinstance(node.ctx, (ast.Store, ast.Del)):
                    mutated.add(node.id)
        if not mutated:
            return []

        accesses: List[_Access] = []
        for fn in module.functions.values():
            labels = frozenset(contexts.get(fn.qname, frozenset()) &
                               SHARED_MEMORY_CONTEXTS)
            if not labels:
                continue
            declared = declared_by_fn[fn.qname]
            # Names bound locally (without a ``global``) shadow the
            # module global; their loads are not global accesses.
            shadowed: Set[str] = {
                arg.arg for group in (fn.node.args.posonlyargs,
                                      fn.node.args.args,
                                      fn.node.args.kwonlyargs)
                for arg in group}
            for node in shallow_walk(fn.node):
                if isinstance(node, ast.Name) and \
                        isinstance(node.ctx, ast.Store) and \
                        node.id not in declared:
                    shadowed.add(node.id)
            for node in shallow_walk(fn.node):
                if not isinstance(node, ast.Name) or \
                        node.id not in mutated:
                    continue
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    if node.id not in declared:
                        continue
                    write = True
                elif node.id not in shadowed:
                    write = False
                else:
                    continue
                accesses.append(_Access(
                    attr=node.id, write=write,
                    method=fn.qname.rsplit(".", 1)[1],
                    contexts=labels,
                    locks=self._held_module_locks(fn, node, module),
                    node=node, relpath=module.relpath))
        return self._conflicts(accesses, owner=module.name)

    @staticmethod
    def _held_module_locks(fn: FunctionInfo, node: ast.AST,
                           module: ModuleInfo) -> FrozenSet[str]:
        """Module-lock names held around ``node`` (lexical scan)."""
        held: Set[str] = set()
        for candidate in ast.walk(fn.node):
            if not isinstance(candidate, (ast.With, ast.AsyncWith)):
                continue
            if not any(descendant is node
                       for descendant in ast.walk(candidate)):
                continue
            for item in candidate.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and \
                        expr.id in module.lock_globals:
                    held.add(expr.id)
        return frozenset(held)

    def _conflicts(self, accesses: List[_Access],
                   owner: str) -> List[Finding]:
        findings: List[Finding] = []
        by_attr: Dict[str, List[_Access]] = {}
        for access in accesses:
            by_attr.setdefault(access.attr, []).append(access)
        for attr, group in sorted(by_attr.items()):
            conflict = self._find_conflict(group)
            if conflict is None:
                continue
            first, second = conflict
            anchor = first if first.write else second
            other = second if anchor is first else first
            message = (
                f"'{attr}' of {owner.rsplit('.', 1)[-1]} is "
                f"{'written' if anchor.write else 'read'} in "
                f"{anchor.method} (contexts: "
                f"{', '.join(sorted(anchor.contexts))}) and "
                f"{'written' if other.write else 'read'} in "
                f"{other.method} (contexts: "
                f"{', '.join(sorted(other.contexts))}) with no common "
                f"lock; guard both with one lock or confine the state "
                f"to a single context")
            findings.append(Finding(
                rule=self.id, path=anchor.relpath,
                line=getattr(anchor.node, "lineno", 0),
                col=getattr(anchor.node, "col_offset", -1) + 1,
                message=message, snippet="", severity=self.severity))
        return findings

    @staticmethod
    def _find_conflict(group: List[_Access]
                       ) -> Optional[Tuple[_Access, _Access]]:
        writes = [a for a in group if a.write]
        if not writes:
            return None
        for write in writes:
            for other in group:
                if write.locks & other.locks:
                    continue
                # Two *different* contexts must be reachable.  A
                # single multi-context access (the coalescer's
                # ``_count`` bump) conflicts with itself.
                if len(write.contexts | other.contexts) >= 2:
                    return (write, other)
        return None
