"""PURE01 - process-pool workers must not touch module-level state.

Functions handed to the :class:`Executor` pool (``executor.map(fn,
...)``, ``pool.submit(fn, ...)``) run in forked/spawned worker
processes.  A worker that mutates module globals appears to work under
``-j 1`` and silently diverges under ``-j N`` (each process mutates its
own copy), and one that *closes over* enclosing state cannot even be
pickled to a spawned worker.  The rule resolves the worker function at
each submission site and flags: lambdas and nested functions (closure
capture), ``global``/``nonlocal`` statements, and writes or mutating
method calls on names the worker does not bind locally.

The batched solver kernels (docs/SOLVER.md) extend the same discipline
to arrays: a *module-level* numpy buffer (``_SCRATCH = np.zeros(...)``)
is shared mutable state - one batch call's leftovers leak into the
next, and workers mutate private copies that diverge from the parent.
Kernels must allocate their lane arrays per call, so any module-level
assignment whose value is a numpy array allocator is flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import FileContext, Finding, Rule
from .determinism import _ImportMap, _dotted

#: Call attributes treated as in-place mutation of the receiver.
_MUTATORS = {"append", "extend", "add", "update", "insert", "pop",
             "popitem", "remove", "discard", "clear", "setdefault",
             "sort", "reverse"}
#: Submission-call attributes whose first argument is a pool worker.
_SUBMIT_ATTRS = {"map", "submit"}

#: numpy allocators whose result, bound at module level, is a shared
#: mutable scratch buffer.
_NP_ALLOCATORS = {
    f"numpy.{name}" for name in
    ("empty", "zeros", "ones", "full",
     "empty_like", "zeros_like", "ones_like", "full_like")}


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _bound_names(fn: ast.FunctionDef) -> Set[str]:
    """Every name the function binds locally (args, assignments, ...)."""
    bound: Set[str] = set()
    args = fn.args
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        bound.update(a.arg for a in group)
    for special in (args.vararg, args.kwarg):
        if special is not None:
            bound.add(special.arg)

    def collect_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect_target(element)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                collect_target(target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            collect_target(node.target)
        elif isinstance(node, ast.comprehension):
            collect_target(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    collect_target(item.optional_vars)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
    return bound


class WorkerPurityRule(Rule):
    id = "PURE01"
    description = ("process-pool workers neither close over nor mutate "
                   "module-level state")
    rationale = ("a worker mutating globals works at -j 1 and silently "
                 "diverges at -j N; closures cannot reach spawned "
                 "workers at all")
    kind = "python"
    scopes = ("src/repro",)

    def check(self, ctx: FileContext, program) -> Iterator[Finding]:
        tree = ctx.tree
        if tree is None:
            return
        yield from self._check_module_scratch(ctx, tree)
        top_level: Dict[str, ast.FunctionDef] = {
            node.name: node for node in tree.body
            if isinstance(node, ast.FunctionDef)}
        checked: Set[str] = set()
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and
                    isinstance(node.func, ast.Attribute) and
                    node.func.attr in _SUBMIT_ATTRS and node.args):
                continue
            worker = node.args[0]
            if isinstance(worker, ast.Lambda):
                yield self.finding(
                    ctx, worker,
                    "lambda submitted as a pool worker: it closes over "
                    "its defining scope and cannot be pickled to a "
                    "spawned worker; use a module-level function")
                continue
            if not isinstance(worker, ast.Name):
                continue   # bound methods etc.: out of static reach
            fn = top_level.get(worker.id)
            if fn is None:
                # Defined in a nested scope (a closure) in this module?
                nested = any(
                    isinstance(inner, ast.FunctionDef) and
                    inner.name == worker.id
                    for outer in ast.walk(tree)
                    if isinstance(outer, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                    for inner in ast.walk(outer) if inner is not outer)
                if nested:
                    yield self.finding(
                        ctx, node,
                        f"worker `{worker.id}` is a nested function: "
                        f"it closes over enclosing state and cannot be "
                        f"pickled to a spawned worker; hoist it to "
                        f"module level")
                continue
            if fn.name in checked:
                continue
            checked.add(fn.name)
            yield from self._check_worker(ctx, fn)

    def _check_module_scratch(self, ctx: FileContext,
                              tree: ast.Module) -> Iterator[Finding]:
        """Flag module-level numpy scratch-array bindings."""
        imports = _ImportMap()
        imports.visit(tree)
        for node in tree.body:
            if isinstance(node, ast.Assign):
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
            else:
                continue
            if not isinstance(value, ast.Call):
                continue
            dotted = _dotted(value.func)
            if dotted is None:
                continue
            if imports.canonical(dotted) in _NP_ALLOCATORS:
                yield self.finding(
                    ctx, node,
                    f"module-level numpy buffer `{dotted}(...)` is a "
                    f"shared scratch array: one batch call's leftovers "
                    f"leak into the next, and -j N workers mutate "
                    f"diverging copies; allocate per call instead")

    def _check_worker(self, ctx: FileContext,
                      fn: ast.FunctionDef) -> Iterator[Finding]:
        bound = _bound_names(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx, node,
                    f"pool worker `{fn.name}` declares "
                    f"`global {', '.join(node.names)}`: module state "
                    f"mutated in a worker is lost (each process has "
                    f"its own copy)")
            elif isinstance(node, ast.Nonlocal):
                yield self.finding(
                    ctx, node,
                    f"pool worker `{fn.name}` declares `nonlocal`: "
                    f"workers cannot share enclosing scopes across "
                    f"processes")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = _root_name(target)
                        if root is not None and root not in bound:
                            yield self.finding(
                                ctx, node,
                                f"pool worker `{fn.name}` writes to "
                                f"`{root}`, which it does not bind "
                                f"locally: cross-process mutation of "
                                f"shared state is a silent no-op race")
            elif (isinstance(node, ast.Call) and
                    isinstance(node.func, ast.Attribute) and
                    node.func.attr in _MUTATORS):
                root = _root_name(node.func)
                if root is not None and root not in bound:
                    yield self.finding(
                        ctx, node,
                        f"pool worker `{fn.name}` calls "
                        f"`.{node.func.attr}()` on `{root}`, which it "
                        f"does not bind locally: mutating shared state "
                        f"in a worker diverges between -j 1 and -j N")
