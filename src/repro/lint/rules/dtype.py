"""DTYPE01 - float32 arrays only inside the sanctioned fast path.

The solver's numerical contracts are written against float64: replay
mode promises bit-identity with the scalar loop, the accelerated mode
promises ``ACCELERATED_RELATIVE_TOLERANCE = 1e-7`` - a bound float32
arithmetic (epsilon ``~1.19e-7``) cannot honour on its own.  The one
place single precision is deliberate is the f32 pre-pass in
:mod:`repro.uarch.fastpath`, whose result is always polished by a full
float64 solve before anything observable is derived from it.

Anywhere else, a float32 array is silent precision loss: numpy quietly
downcasts on mixed-dtype arithmetic, so one stray ``astype(np.float32)``
(or ``dtype="float32"``) in a kernel poisons every array it touches and
the tolerance contract fails only on the workloads where it matters.
This rule flags float32 creation - ``numpy.float32`` used as a dtype or
scalar constructor, ``.astype`` to float32, and string-dtype spellings
(``"float32"``, ``"f4"``) - outside the sanctioned module.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import FileContext, Finding, Rule
from .determinism import _ImportMap, _dotted

#: The one module allowed to create single-precision arrays.
_SANCTIONED = "src/repro/uarch/fastpath.py"

#: Canonical dotted names that denote the float32 dtype (or its scalar
#: constructor).  ``numpy.single`` is the same type under another name.
_F32_NAMES = {"numpy.float32", "numpy.single"}

#: String spellings numpy accepts for the float32 dtype.
_F32_STRINGS = {"float32", "single", "f4", "<f4", ">f4", "=f4"}


def _is_float32(node: ast.AST, imports: _ImportMap) -> bool:
    """Does this expression denote the float32 dtype?"""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _F32_STRINGS
    dotted = _dotted(node)
    if dotted is None:
        return False
    return imports.canonical(dotted) in _F32_NAMES


class DtypeDisciplineRule(Rule):
    id = "DTYPE01"
    description = ("float32 arrays are created only in the sanctioned "
                   "fast-path module")
    rationale = ("single precision cannot honour the solver's 1e-7 "
                 "accelerated tolerance (or replay bit-identity); the "
                 "f32 pre-pass is quarantined in repro.uarch.fastpath "
                 "where a float64 polish always follows")
    kind = "python"
    scopes = ("src/repro",)

    def check(self, ctx: FileContext, program) -> Iterator[Finding]:
        if ctx.relpath == _SANCTIONED:
            return
        tree = ctx.tree
        if tree is None:
            return
        imports = _ImportMap()
        imports.visit(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            flagged = self._float32_use(node, imports)
            if flagged is not None:
                yield self.finding(
                    ctx, node,
                    f"float32 creation ({flagged}) outside "
                    f"{_SANCTIONED}: single precision breaks the "
                    f"solver's float64 tolerance contracts; route "
                    f"through the fastpath module (docs/SOLVER.md)")

    def _float32_use(self, node: ast.Call,
                     imports: _ImportMap) -> Optional[str]:
        """A description of the float32 use in this call, or None."""
        dotted = _dotted(node.func)
        if dotted is not None:
            name = imports.canonical(dotted)
            if name in _F32_NAMES:
                return f"`{name}(...)`"
            if dotted.endswith(".astype") and node.args and \
                    _is_float32(node.args[0], imports):
                return "`.astype` to float32"
        for keyword in node.keywords:
            if keyword.arg == "dtype" and \
                    _is_float32(keyword.value, imports):
                return "`dtype=` float32"
        for arg in node.args:
            if _is_float32(arg, imports) and not \
                    isinstance(arg, ast.Constant):
                return "float32 dtype argument"
        return None
